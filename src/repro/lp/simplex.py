"""A small, dependency-free dense simplex solver.

The paper's implementation used Gurobi; this repository primarily uses
scipy's HiGHS backend (see :mod:`repro.lp.solver`).  This module provides a
pure-Python two-phase simplex implementation that serves two purposes:

* it makes the repository runnable in environments without scipy, and
* it gives the test suite an independent oracle to cross-check LP results.

The solver handles problems of the form::

    minimize    c @ x
    subject to  A @ x <= b
                lo <= x <= hi      (bounds may be ±inf)

via conversion to standard form with slack variables and Bland's rule for
anti-cycling.  It is intentionally simple and dense; the LPs that arise in
PWL-RRPA are tiny (a handful of parameters, dozens of constraints).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SolverError

_EPS = 1e-9

try:  # pragma: no cover - numpy-version dependent import
    # The gufunc behind ``np.linalg.solve``.  Calling it directly skips
    # the wrapper's per-call array/type validation and errstate setup —
    # a measurable win for the tiny basis systems solved thousands of
    # times per optimization run — while producing the *same bits* (it
    # is the very kernel the wrapper invokes).  LAPACK reports a
    # singular system by filling that solution with NaN (emitting one
    # cosmetic RuntimeWarning under the default error state), which the
    # cheap sum-compare below converts into the wrapper's
    # ``LinAlgError``.
    from numpy.linalg import _umath_linalg

    # Probe the private gufunc contract once at import so any numpy
    # relayout (renamed gufunc, changed signature kwargs) lands in the
    # fallback below instead of crashing the first real solve.
    if (_umath_linalg.solve1(np.eye(1), np.ones(1), signature="dd->d")
            != np.ones(1)).any():  # pragma: no cover - contract probe
        raise ImportError("numpy solve1 gufunc probe failed")

    def _basis_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``np.linalg.solve`` for float64 systems, minus wrapper overhead.

        Accepts the wrapper's stacked forms too: ``(m, m) @ (m,)`` or
        ``(k, m, m) @ (k, m)`` with one right-hand side per slice.
        Raises :class:`numpy.linalg.LinAlgError` when any slice is
        singular, like the wrapper.
        """
        try:
            out = _umath_linalg.solve1(a, b, signature="dd->d")
        except RuntimeWarning as exc:
            # Under warnings-promoted-to-errors the gufunc's
            # invalid-value warning surfaces here before the NaN check
            # can run; keep the wrapper's contract.
            raise np.linalg.LinAlgError("Singular matrix") from exc
        total = out.sum()
        if total != total:  # NaN marks a singular (or poisoned) slice
            raise np.linalg.LinAlgError("Singular matrix")
        return out

    def _basis_solve_masked(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Stacked solve returning NaN-filled rows for singular slices.

        Unlike :func:`_basis_solve` this never raises: LAPACK solves
        every slice independently (good slices keep their exact
        :func:`np.linalg.solve` bits even when a sibling is singular),
        so callers can mask out the NaN rows and keep going — the
        stacked simplex kernel flags exactly those problems for its
        scalar fallback.  When warnings are promoted to errors the
        gufunc's invalid-value warning aborts the whole stack, so the
        rare singular round re-solves per slice through the public
        wrapper (identical bits) instead.
        """
        try:
            return _umath_linalg.solve1(a, b, signature="dd->d")
        except RuntimeWarning:  # warnings-as-errors consumers
            out = np.full_like(b, np.nan)
            for i in range(a.shape[0]):
                try:
                    out[i] = np.linalg.solve(a[i], b[i])
                except np.linalg.LinAlgError:
                    pass
            return out
except (ImportError, AttributeError, TypeError):  # pragma: no cover
    # Exercised on numpy relayouts (module, gufunc or kwargs gone).
    def _basis_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fallback via the public wrapper (identical bits, more overhead)."""
        if a.ndim == 2:
            return np.linalg.solve(a, b)
        return np.linalg.solve(a, b[..., None])[..., 0]

    def _basis_solve_masked(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fallback stacked solve: per-slice wrapper calls, NaN on singular."""
        out = np.full_like(b, np.nan)
        for i in range(a.shape[0]):
            try:
                out[i] = np.linalg.solve(a[i], b[i])
            except np.linalg.LinAlgError:
                pass
        return out


@dataclass(frozen=True)
class SimplexResult:
    """Outcome of a simplex solve.

    Attributes:
        status: One of ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
        x: Optimal point (``None`` unless status is ``"optimal"``).
        objective: Optimal objective value (``None`` unless optimal).
    """

    status: str
    x: np.ndarray | None
    objective: float | None

    @property
    def is_optimal(self) -> bool:
        """``True`` when an optimal solution was found."""
        return self.status == "optimal"


def _to_standard_form(c, a_ub, b_ub, bounds):
    """Convert a bounded-variable LP into equality standard form.

    Each free variable ``x`` is split into ``x+ - x-``; finite bounds become
    extra inequality rows.  Returns ``(c', A', b', recover)`` where
    ``recover`` maps a standard-form solution back to the original space.
    """
    n = len(c)
    if all(lo is None and hi is None for lo, hi in bounds):
        # Fast path for the dominant geometry workload: every variable
        # free.  Vectorizes the generic loop below for that case only —
        # same interleaved ``x+ / x-`` column layout, same arithmetic
        # (including the zero-shift subtraction), identical bits.
        c_arr = np.asarray(c, dtype=float)
        a_all = a_ub if a_ub is not None else np.zeros((0, n))
        b_all = b_ub if b_ub is not None else np.zeros(0)
        a_std = np.empty((a_all.shape[0], 2 * n))
        a_std[:, 0::2] = a_all
        a_std[:, 1::2] = -a_all
        c_std = np.empty(2 * n)
        c_std[0::2] = c_arr
        c_std[1::2] = -c_arr
        shift = np.zeros(n)
        b_shifted = b_all - a_all @ shift

        def recover(x_std: np.ndarray) -> np.ndarray:
            return (shift + x_std[0::2]) - x_std[1::2]

        return c_std, a_std, b_shifted, recover, float(c_arr @ shift)

    columns = []  # (index, sign) pairs describing original-variable parts
    shift = np.zeros(n)
    for j in range(n):
        lo, hi = bounds[j]
        if lo is not None and math.isfinite(lo):
            shift[j] = lo
        else:
            shift[j] = 0.0

    extra_rows_a = []
    extra_rows_b = []
    split = []  # True when variable j is split into two columns
    for j in range(n):
        lo, hi = bounds[j]
        lo_f = -math.inf if lo is None else lo
        hi_f = math.inf if hi is None else hi
        split.append(not math.isfinite(lo_f))
        if math.isfinite(hi_f):
            row = np.zeros(n)
            row[j] = 1.0
            extra_rows_a.append(row)
            extra_rows_b.append(hi_f)

    a_all = a_ub if a_ub is not None else np.zeros((0, n))
    b_all = b_ub if b_ub is not None else np.zeros(0)
    if extra_rows_a:
        a_all = np.vstack([a_all, np.array(extra_rows_a)])
        b_all = np.concatenate([b_all, np.array(extra_rows_b)])

    # Shift variables with finite lower bounds so every column is >= 0.
    b_shifted = b_all - a_all @ shift
    c_arr = np.asarray(c, dtype=float)

    for j in range(n):
        if split[j]:
            columns.append((j, +1.0))
            columns.append((j, -1.0))
        else:
            columns.append((j, +1.0))

    num_cols = len(columns)
    a_std = np.zeros((a_all.shape[0], num_cols))
    c_std = np.zeros(num_cols)
    for k, (j, sign) in enumerate(columns):
        a_std[:, k] = sign * a_all[:, j]
        c_std[k] = sign * c_arr[j]

    def recover(x_std: np.ndarray) -> np.ndarray:
        x = np.array(shift, dtype=float)
        for k, (j, sign) in enumerate(columns):
            x[j] += sign * x_std[k]
        return x

    objective_shift = float(c_arr @ shift)
    return c_std, a_std, b_shifted, recover, objective_shift


def _simplex_core(c, a, b):
    """Solve min c@x s.t. a@x <= b, x >= 0 with the two-phase simplex.

    Returns ``(status, x)``.
    """
    num_rows, num_cols = a.shape
    # Make right-hand sides non-negative by multiplying rows by -1 and
    # introducing artificial variables where needed.  Assembled in one
    # pass (same layout and bits as growing the tableau row by row:
    # artificial columns appear in row order after the slack block).
    rhs = b.astype(float).copy()
    negative = rhs < -_EPS
    art_rows = np.flatnonzero(negative)
    total_cols = num_cols + num_rows + art_rows.size
    tableau_a = np.zeros((num_rows, total_cols))
    tableau_a[:, :num_cols] = a
    tableau_a[:, num_cols:num_cols + num_rows] = np.eye(num_rows)
    tableau_a[negative] *= -1.0
    rhs[negative] *= -1.0
    art_cols = num_cols + num_rows + np.arange(art_rows.size)
    tableau_a[art_rows, art_cols] = 1.0
    basis = list(range(num_cols, num_cols + num_rows))
    for row, col in zip(art_rows, art_cols):
        basis[row] = int(col)
    artificial = [int(col) for col in art_cols]

    def run_phase(cost_row):
        """Run the simplex iterations in place; returns False on unbounded."""
        max_iters = 500 * (total_cols + num_rows + 10)
        for _ in range(max_iters):
            # Reduced costs.
            cb = cost_row[basis]
            basis_matrix = tableau_a[:, basis]
            try:
                y = _basis_solve(basis_matrix.T, cb)  # dual estimate
            except np.linalg.LinAlgError as exc:
                raise SolverError("singular basis in simplex") from exc
            reduced = cost_row - y @ tableau_a
            entering = -1
            for j in range(total_cols):
                if j in basis_set:
                    continue
                if reduced[j] < -_EPS:
                    entering = j  # Bland's rule: first improving column
                    break
            if entering < 0:
                return True
            try:
                basis_matrix_inv_col = _basis_solve(
                    basis_matrix, tableau_a[:, entering])
                xb = _basis_solve(basis_matrix, rhs)
            except np.linalg.LinAlgError as exc:  # pragma: no cover
                raise SolverError("singular basis in simplex") from exc
            ratios = []
            for i in range(num_rows):
                if basis_matrix_inv_col[i] > _EPS:
                    ratios.append((xb[i] / basis_matrix_inv_col[i], basis[i], i))
            if not ratios:
                return False
            ratios.sort(key=lambda t: (t[0], t[1]))
            __, __, leaving_row = ratios[0]
            basis_set.discard(basis[leaving_row])
            basis[leaving_row] = entering
            basis_set.add(entering)
        raise SolverError("simplex iteration limit exceeded")

    basis_set = set(basis)

    if artificial:
        phase1_cost = np.zeros(total_cols)
        for j in artificial:
            phase1_cost[j] = 1.0
        bounded = run_phase(phase1_cost)
        if not bounded:
            raise SolverError("phase-1 LP unbounded (should be impossible)")
        try:
            xb = _basis_solve(tableau_a[:, basis], rhs)
        except np.linalg.LinAlgError as exc:
            raise SolverError("singular basis after phase 1") from exc
        value = float(phase1_cost[basis] @ xb)
        if value > 1e-7:
            return "infeasible", None
        # Drive any remaining artificial variables out of the basis when
        # possible; rows where that fails are redundant and harmless here
        # because their basic value is zero.

    phase2_cost = np.zeros(total_cols)
    phase2_cost[: len(c)] = c
    for j in artificial:
        phase2_cost[j] = 1e7  # big-M keeps artificials at zero
    bounded = run_phase(phase2_cost)
    if not bounded:
        return "unbounded", None
    try:
        xb = _basis_solve(tableau_a[:, basis], rhs)
    except np.linalg.LinAlgError as exc:
        raise SolverError("singular final basis") from exc
    x_full = np.zeros(total_cols)
    for i, j in enumerate(basis):
        x_full[j] = xb[i]
    return "optimal", x_full[: len(c)]


def solve_simplex(c, a_ub=None, b_ub=None, bounds=None) -> SimplexResult:
    """Solve ``min c@x  s.t.  a_ub@x <= b_ub,  bounds[j][0] <= x_j <= bounds[j][1]``.

    Args:
        c: Objective coefficients, length ``n``.
        a_ub: Inequality matrix of shape ``(m, n)`` or ``None``.
        b_ub: Inequality right-hand sides of length ``m`` or ``None``.
        bounds: Sequence of ``(lo, hi)`` pairs per variable; ``None`` entries
            mean unbounded on that side.  Defaults to all variables free.

    Returns:
        A :class:`SimplexResult` with status, optimal point and objective.
    """
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    if bounds is None:
        bounds = [(None, None)] * n
    if a_ub is not None:
        a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n)
        b_ub = np.asarray(b_ub, dtype=float).reshape(-1)

    c_std, a_std, b_std, recover, obj_shift = _to_standard_form(
        c, a_ub, b_ub, list(bounds))
    status, x_std = _simplex_core(c_std, a_std, b_std)
    if status != "optimal":
        return SimplexResult(status=status, x=None, objective=None)
    x = recover(x_std)
    return SimplexResult(status="optimal", x=x,
                         objective=float(c @ x))
