"""Stacked-tableau batch simplex: pivot whole LP batches in lockstep.

The optimizer's hot path solves thousands of structurally similar tiny
LPs (region-emptiness feasibility checks, Chebyshev centers, piece
bounds).  :meth:`repro.lp.LinearProgramSolver.solve_many` already batches
the *call sites*; this module batches the *pivoting*: a group of LPs
whose standard forms share one shape is stacked into 3-D NumPy tableaus
``(batch, rows, cols)`` and the two-phase simplex of
:mod:`repro.lp.simplex` runs one lockstep pivot round at a time across
the whole stack — vectorized reduced costs, Bland's-rule entering
columns via ``argmax`` over boolean eligibility, vectorized ratio tests,
and per-problem status masks so finished problems freeze while
stragglers keep pivoting.

Bit-identity contract
---------------------

Every problem follows *exactly* the trajectory the scalar
:func:`~repro.lp.simplex.solve_simplex` would take, so results (status,
optimizer, objective) are bit-identical to today's answers:

* standard-form conversion reuses the scalar
  :func:`~repro.lp.simplex._to_standard_form` per problem;
* the per-round linear algebra uses only operations whose stacked forms
  are bitwise equal to their scalar counterparts on this substrate —
  the ``np.linalg.solve`` gufunc over ``(k, m, m)`` stacks (one
  right-hand side per slice) and batched ``matmul`` at *identical*
  per-problem shapes (verified by the equivalence test suite; column
  padding is **not** bit-stable, which is why groups are keyed on the
  artificial-column count as well);
* pivot decisions (Bland's first improving column, the
  ``(ratio, basis label)`` leaving tie-break, the phase-1 feasibility
  threshold, the per-phase iteration budget) replicate the scalar code
  decision for decision on those identical floats.

Problems the scalar path would abandon with a :class:`SolverError`
(singular basis, phase-1 unbounded, iteration overflow) — plus the
pathological non-finite ratio case — are *flagged* instead of solved:
their report slot is ``None`` and the caller re-runs them through the
per-problem scalar/scipy path, reproducing today's behaviour exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from .simplex import (_EPS, SimplexResult, _basis_solve_masked,
                      _to_standard_form)

#: Phase-1 objective threshold above which a problem is infeasible
#: (identical to the scalar ``_simplex_core``).
_PHASE1_TOL = 1e-7

#: Big-M coefficient pinning artificial variables at zero in phase 2
#: (identical to the scalar ``_simplex_core``).
_BIG_M = 1e7

#: Sentinel basis label larger than any real column index.
_NO_LABEL = np.iinfo(np.int64).max

# Problem status codes while pivoting.
_RUNNING, _OPTIMAL, _INFEASIBLE, _UNBOUNDED, _FALLBACK = range(5)


@dataclass(frozen=True)
class StandardForm:
    """One LP converted to the scalar solver's equality standard form.

    Attributes:
        c: Original objective vector (used for the final objective value).
        c_std: Standard-form objective over the split/shifted columns.
        a_std: Standard-form inequality matrix.
        b_std: Standard-form right-hand side (shifted).
        recover: Maps a standard-form solution back to original space.
        signature: Stacking key ``(rows, cols, artificials)`` — problems
            stack together only when all three match, because the batched
            reduced-cost product is bitwise equal to the scalar one only
            at identical tableau widths.
        seconds: Wall time spent on the conversion (charged to the
            problem's LP purpose by the caller).
    """

    c: np.ndarray
    c_std: np.ndarray
    a_std: np.ndarray
    b_std: np.ndarray
    recover: object
    signature: tuple[int, int, int]
    seconds: float


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one stacked-tableau solve.

    Attributes:
        results: One :class:`SimplexResult` per problem in input order;
            ``None`` marks a straggler flagged for the scalar fallback.
        rounds: Lockstep pivot rounds executed for the group.
        active_rounds: Total problem-rounds (sum over rounds of the
            number of problems still pivoting) — the numerator of the
            batch-occupancy metric.
        round_slots: ``rounds * batch`` — the occupancy denominator.
        problem_rounds: Per-problem count of rounds each was active
            (used to split the group's wall time across purposes).
        fallbacks: Number of problems flagged for the scalar path.
        seconds: Wall time of the stacked solve.
    """

    results: list[SimplexResult | None]
    rounds: int
    active_rounds: int
    round_slots: int
    problem_rounds: np.ndarray
    fallbacks: int
    seconds: float


def standard_form(c, a_ub, b_ub, bounds) -> StandardForm:
    """Convert one prepared LP to standard form and derive its signature.

    Inputs must already be normalized as by
    :meth:`repro.lp.LinearProgramSolver._prepare`.
    """
    started = time.perf_counter()
    c = np.asarray(c, dtype=float)
    c_std, a_std, b_std, recover, __ = _to_standard_form(
        c, a_ub, b_ub, list(bounds))
    n_art = int(np.sum(b_std < -_EPS))
    signature = (int(a_std.shape[0]), int(a_std.shape[1]), n_art)
    return StandardForm(c=c, c_std=c_std, a_std=a_std, b_std=b_std,
                        recover=recover, signature=signature,
                        seconds=time.perf_counter() - started)


def _stacked_solve(mats: np.ndarray, vecs: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray | None]:
    """Stacked basis solve with per-slice singularity flags.

    LAPACK solves every slice independently and fills singular ones with
    NaN (good slices keep their exact scalar bits), so a cheap
    sum-compare detects the rare bad round and the NaN rows become the
    flag mask.  Returns ``(solutions, bad_mask_or_None)``.
    """
    out = _basis_solve_masked(mats, vecs)
    total = out.sum()
    if total == total:
        return out, None
    bad = np.isnan(out).any(axis=1)
    if not bad.any():  # pragma: no cover - inf-only poisoned sum
        return out, None
    return out, bad


def solve_simplex_batch(forms: Sequence[StandardForm]) -> BatchReport:
    """Solve a group of same-signature LPs with lockstep pivot rounds.

    Args:
        forms: Standard forms sharing one ``signature`` (enforced).

    Returns:
        A :class:`BatchReport`; flagged stragglers have ``None`` results.
    """
    started = time.perf_counter()
    k = len(forms)
    rows, base_cols, n_art = forms[0].signature
    for form in forms:
        if form.signature != forms[0].signature:
            raise ValueError("mixed stacking signatures in one batch")
    m = rows
    total_cols = base_cols + m + n_art
    slack0 = base_cols
    art0 = base_cols + m

    # Stacked tableau setup — the vectorized equivalent of the scalar
    # ``_simplex_core`` preamble: [A | I] columns, rows with a negative
    # right-hand side negated in place, one artificial column per such
    # row appended in row order (so artificial column indices match the
    # scalar layout exactly).
    tableau = np.zeros((k, m, total_cols))
    tableau[:, :, :base_cols] = np.stack([form.a_std for form in forms])
    tableau[:, :, slack0:art0] = np.eye(m)
    rhs = np.stack([form.b_std for form in forms]).astype(float)
    negative = rhs < -_EPS
    art_rank = np.cumsum(negative, axis=1) - 1
    tableau[negative] *= -1.0
    rhs[negative] *= -1.0
    problem_of_art, row_of_art = np.nonzero(negative)
    art_cols = art0 + art_rank[problem_of_art, row_of_art]
    tableau[problem_of_art, row_of_art, art_cols] = 1.0
    basis = np.tile(np.arange(slack0, art0, dtype=np.int64), (k, 1))
    basis[problem_of_art, row_of_art] = art_cols
    in_basis = np.zeros((k, total_cols), dtype=bool)
    np.put_along_axis(in_basis, basis, True, axis=1)
    p2cost = np.zeros((k, total_cols))
    p2cost[:, :forms[0].c_std.shape[0]] = np.stack(
        [form.c_std for form in forms])
    p2cost[problem_of_art, art_cols] = _BIG_M
    p1cost = np.zeros((k, total_cols))
    p1cost[problem_of_art, art_cols] = 1.0
    phase = np.where(negative.any(axis=1), 1, 2).astype(np.int8)
    cost_cur = np.where((phase == 1)[:, None], p1cost, p2cost)
    # Column-major twin of the tableau: gathering basis columns (the
    # per-round basis matrices, transposed) and entering columns becomes
    # plain integer indexing on axis 1.
    tableau_t = np.ascontiguousarray(tableau.transpose(0, 2, 1))

    status = np.full(k, _RUNNING, dtype=np.int8)
    final_xb = np.zeros((k, m))
    iters = np.zeros(k, dtype=np.int64)
    problem_rounds = np.zeros(k, dtype=np.int64)
    # Identical per-phase budget to the scalar ``run_phase``.
    max_iters = 500 * (total_cols + m + 10)
    rounds = 0
    active_rounds = 0

    while True:
        act = np.flatnonzero(status == _RUNNING)
        if act.size == 0:
            break
        rounds += 1
        active_rounds += int(act.size)
        problem_rounds[act] += 1
        over = iters[act] >= max_iters
        if over.any():
            # The scalar phase loop would raise "iteration limit
            # exceeded" here — flag for the per-problem fallback.
            status[act[over]] = _FALLBACK
            act = act[~over]
            if act.size == 0:
                continue
        iters[act] += 1

        basis_act = basis[act]
        cost_act = cost_cur[act]
        # bt[i] holds problem act[i]'s basis matrix TRANSPOSED (rows of
        # tableau_t are tableau columns) — exactly the matrix the dual
        # solve wants.
        bt = tableau_t[act[:, None], basis_act]
        cb = cost_act[np.arange(act.size)[:, None], basis_act]
        y, bad = _stacked_solve(bt, cb)
        if bad is not None:
            status[act[bad]] = _FALLBACK
            keep = ~bad
            act, basis_act, cost_act = act[keep], basis_act[keep], \
                cost_act[keep]
            bt, cb, y = bt[keep], cb[keep], y[keep]
            if act.size == 0:
                continue
        reduced = cost_act - (y[:, None, :] @ tableau[act])[:, 0, :]
        eligible = ~in_basis[act] & (reduced < -_EPS)
        has_entering = eligible.any(axis=1)
        entering = np.argmax(eligible, axis=1)

        finishing = np.flatnonzero(~has_entering)
        if finishing.size:
            rows_f = act[finishing]
            xb, bad = _stacked_solve(
                bt[finishing].transpose(0, 2, 1), rhs[rows_f])
            if bad is not None:
                status[rows_f[bad]] = _FALLBACK
                rows_f, finishing = rows_f[~bad], finishing[~bad]
                xb = xb[~bad]
            if rows_f.size:
                in_phase1 = phase[rows_f] == 1
                if in_phase1.any():
                    p1_rows = rows_f[in_phase1]
                    cb1 = cb[finishing[in_phase1]]
                    value = (cb1[:, None, :] @ xb[in_phase1][:, :, None]
                             )[:, 0, 0]
                    infeasible = value > _PHASE1_TOL
                    status[p1_rows[infeasible]] = _INFEASIBLE
                    promote = p1_rows[~infeasible]
                    phase[promote] = 2
                    cost_cur[promote] = p2cost[promote]
                    iters[promote] = 0  # fresh scalar run_phase budget
                done2 = rows_f[~in_phase1]
                final_xb[done2] = xb[~in_phase1]
                status[done2] = _OPTIMAL

        pivoting = np.flatnonzero(has_entering)
        if pivoting.size == 0:
            continue
        rows_p = act[pivoting]
        ent_p = entering[pivoting]
        bmat_p = bt[pivoting].transpose(0, 2, 1)
        ecol = tableau_t[rows_p, ent_p]
        # One gufunc call solves both basis systems of every pivoting
        # problem (bitwise equal per slice to separate solves: every
        # slice still carries a single right-hand side).
        col_and_xb, bad = _stacked_solve(
            np.concatenate((bmat_p, bmat_p)),
            np.concatenate((ecol, rhs[rows_p])))
        half = rows_p.size
        col, xb = col_and_xb[:half], col_and_xb[half:]
        if bad is not None:
            bad = bad[:half] | bad[half:]
            status[rows_p[bad]] = _FALLBACK
            keep = ~bad
            rows_p, ent_p, col, xb = rows_p[keep], ent_p[keep], \
                col[keep], xb[keep]
            if rows_p.size == 0:
                continue
        pos = col > _EPS
        no_pivot = ~pos.any(axis=1)
        if no_pivot.any():
            # Unbounded phase: phase 2 is a genuine unbounded verdict;
            # phase 1 is the scalar path's "should be impossible" raise.
            unbounded_rows = rows_p[no_pivot]
            in_phase2 = phase[unbounded_rows] == 2
            status[unbounded_rows[in_phase2]] = _UNBOUNDED
            status[unbounded_rows[~in_phase2]] = _FALLBACK
            keep = ~no_pivot
            rows_p, ent_p, col, xb, pos = rows_p[keep], ent_p[keep], \
                col[keep], xb[keep], pos[keep]
            if rows_p.size == 0:
                continue
        ratios = np.divide(xb, col, out=np.full_like(xb, np.inf),
                           where=pos)
        nan_rows = np.isnan(ratios).any(axis=1)
        if nan_rows.any():
            status[rows_p[nan_rows]] = _FALLBACK
            keep = ~nan_rows
            rows_p, ent_p, ratios, pos = rows_p[keep], ent_p[keep], \
                ratios[keep], pos[keep]
            if rows_p.size == 0:
                continue
        # Scalar tie-break: minimal ratio, then minimal basis label
        # (exact float comparison, matching the scalar sort key; only
        # rows with a positive pivot entry compete).
        basis_p = basis[rows_p]
        min_ratio = ratios.min(axis=1)
        tie = (ratios == min_ratio[:, None]) & pos
        labels = np.where(tie, basis_p, _NO_LABEL)
        min_label = labels.min(axis=1)
        leaving = np.argmax(labels == min_label[:, None], axis=1)
        old_label = basis[rows_p, leaving]
        in_basis[rows_p, old_label] = False
        basis[rows_p, leaving] = ent_p
        in_basis[rows_p, ent_p] = True

    results: list[SimplexResult | None] = []
    for i, form in enumerate(forms):
        if status[i] == _OPTIMAL:
            x_full = np.zeros(total_cols)
            x_full[basis[i]] = final_xb[i]
            x = form.recover(x_full[:len(form.c_std)])
            results.append(SimplexResult(
                status="optimal", x=x, objective=float(form.c @ x)))
        elif status[i] == _INFEASIBLE:
            results.append(SimplexResult("infeasible", None, None))
        elif status[i] == _UNBOUNDED:
            results.append(SimplexResult("unbounded", None, None))
        else:
            results.append(None)
    return BatchReport(
        results=results, rounds=rounds, active_rounds=active_rounds,
        round_slots=rounds * k, problem_rounds=problem_rounds,
        fallbacks=int(np.sum(status == _FALLBACK)),
        seconds=time.perf_counter() - started)


def is_stackable(signature: tuple[int, int, int]) -> bool:
    """Whether a signature describes a tableau the kernel can pivot.

    Degenerate constraint-free problems (zero standard-form rows) keep
    using the scalar path — they are trivial anyway and the stacked
    setup assumes at least one row.
    """
    rows, cols, __ = signature
    return rows > 0 and cols > 0


__all__ = [
    "BatchReport",
    "StandardForm",
    "is_stackable",
    "solve_simplex_batch",
    "standard_form",
]
