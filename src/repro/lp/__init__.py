"""Linear-programming substrate: solvers and LP accounting.

Public API:

* :class:`LinearProgramSolver` / :func:`make_solver` — LP facade with
  pluggable backends (scipy HiGHS or the built-in simplex); its
  :meth:`~LinearProgramSolver.solve_many` solves a batch of independent
  LPs with memo-backed in-batch deduplication (the entry point of the
  batched geometry kernels).
* :class:`LPResult` — solve outcome.
* :class:`LPResultCache` — bounded LRU memo over canonicalized LP inputs.
* :func:`install_shared_lp_cache` / :func:`shared_lp_cache` — process-wide
  session memo injection (used by :class:`repro.api.OptimizerSession` so
  LP results are shared across runs and shipped to pool workers).
* :class:`LPStats` / :func:`default_stats` — counters used to reproduce the
  "#solved linear programs" measurements of Figure 12.
* :func:`solve_simplex` — the dependency-free simplex used as fallback and
  as a testing oracle.
"""

from .counters import LPStats, default_stats
from .simplex import SimplexResult, solve_simplex
from .solver import (LinearProgramSolver, LPResult, LPResultCache,
                     install_shared_lp_cache, make_solver, shared_lp_cache)

__all__ = [
    "LPResult",
    "LPResultCache",
    "LPStats",
    "LinearProgramSolver",
    "SimplexResult",
    "default_stats",
    "install_shared_lp_cache",
    "make_solver",
    "shared_lp_cache",
    "solve_simplex",
]
