"""Linear-programming substrate: solvers and LP accounting.

Public API:

* :class:`LinearProgramSolver` / :func:`make_solver` — LP facade with
  pluggable backends (scipy HiGHS or the built-in simplex); its
  :meth:`~LinearProgramSolver.solve_many` solves a batch of independent
  LPs with memo-backed in-batch deduplication and routes same-shape
  groups through the stacked-tableau batch simplex (the entry point of
  the batched geometry kernels).
* :func:`solve_simplex_batch` / :func:`standard_form` — the stacked
  kernel itself: same-shape LPs pivoted in lockstep 3-D NumPy tableaus,
  bit-identical to the scalar simplex (see :mod:`repro.lp.batch_simplex`).
* :class:`DeferredLPQueue` / :class:`LPFuture` / :class:`LazyValue` — the
  deferred-flush futures queue: call sites enqueue LPs instead of solving
  eagerly, and the queue flushes whole stacking groups through
  ``solve_many`` so the stacked kernel sees real batches (see
  :mod:`repro.lp.futures` and ``docs/lp-substrate.md``).
* :func:`stack_prekey` — the conversion-free grouping key shared by
  ``solve_many``'s miss grouping and the queue's accumulation buckets.
* :class:`LPResult` — solve outcome.
* :class:`LPResultCache` — bounded LRU memo over canonicalized LP inputs.
* :func:`install_shared_lp_cache` / :func:`shared_lp_cache` — process-wide
  session memo injection (used by :class:`repro.api.OptimizerSession` so
  LP results are shared across runs and shipped to pool workers).
* :class:`LPStats` / :func:`default_stats` — counters used to reproduce the
  "#solved linear programs" measurements of Figure 12.
* :func:`solve_simplex` — the dependency-free simplex used as fallback and
  as a testing oracle.
"""

from .batch_simplex import (BatchReport, StandardForm, solve_simplex_batch,
                            standard_form)
from .counters import LPStats, default_stats
from .futures import QUEUE_FLUSH_SIZE, DeferredLPQueue, LazyValue, LPFuture
from .simplex import SimplexResult, solve_simplex
from .solver import (LinearProgramSolver, LPResult, LPResultCache,
                     install_shared_lp_cache, make_solver, shared_lp_cache,
                     stack_prekey)

__all__ = [
    "BatchReport",
    "DeferredLPQueue",
    "LPFuture",
    "LPResult",
    "LPResultCache",
    "LPStats",
    "LazyValue",
    "LinearProgramSolver",
    "QUEUE_FLUSH_SIZE",
    "SimplexResult",
    "StandardForm",
    "default_stats",
    "install_shared_lp_cache",
    "make_solver",
    "shared_lp_cache",
    "solve_simplex",
    "solve_simplex_batch",
    "stack_prekey",
    "standard_form",
]
