"""Linear-programming substrate: solvers and LP accounting.

Public API:

* :class:`LinearProgramSolver` / :func:`make_solver` — LP facade with
  pluggable backends (scipy HiGHS or the built-in simplex); its
  :meth:`~LinearProgramSolver.solve_many` solves a batch of independent
  LPs with memo-backed in-batch deduplication and routes same-shape
  groups through the stacked-tableau batch simplex (the entry point of
  the batched geometry kernels).
* :func:`solve_simplex_batch` / :func:`standard_form` — the stacked
  kernel itself: same-shape LPs pivoted in lockstep 3-D NumPy tableaus,
  bit-identical to the scalar simplex (see :mod:`repro.lp.batch_simplex`).
* :class:`LPResult` — solve outcome.
* :class:`LPResultCache` — bounded LRU memo over canonicalized LP inputs.
* :func:`install_shared_lp_cache` / :func:`shared_lp_cache` — process-wide
  session memo injection (used by :class:`repro.api.OptimizerSession` so
  LP results are shared across runs and shipped to pool workers).
* :class:`LPStats` / :func:`default_stats` — counters used to reproduce the
  "#solved linear programs" measurements of Figure 12.
* :func:`solve_simplex` — the dependency-free simplex used as fallback and
  as a testing oracle.
"""

from .batch_simplex import (BatchReport, StandardForm, solve_simplex_batch,
                            standard_form)
from .counters import LPStats, default_stats
from .simplex import SimplexResult, solve_simplex
from .solver import (LinearProgramSolver, LPResult, LPResultCache,
                     install_shared_lp_cache, make_solver, shared_lp_cache)

__all__ = [
    "BatchReport",
    "LPResult",
    "LPResultCache",
    "LPStats",
    "LinearProgramSolver",
    "SimplexResult",
    "StandardForm",
    "default_stats",
    "install_shared_lp_cache",
    "make_solver",
    "shared_lp_cache",
    "solve_simplex",
    "solve_simplex_batch",
    "standard_form",
]
