"""Linear-program solving with pluggable backends and LP accounting.

All geometric predicates in :mod:`repro.geometry` (emptiness, containment,
redundancy, Chebyshev centers) reduce to linear programs.  They route every
solve through :class:`LinearProgramSolver` so the number of solved LPs can
be reported per optimization run — one of the three quantities plotted in
Figure 12 of the paper.

Two backends are available:

* ``"scipy"`` — :func:`scipy.optimize.linprog` with the HiGHS method
  (default when scipy is importable).
* ``"simplex"`` — the pure-Python two-phase simplex from
  :mod:`repro.lp.simplex`, used as fallback and as testing oracle.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..errors import SolverError
from ..faults import failpoint
from ..util import BoundedLRU, scalar_kernels_enabled
from .batch_simplex import is_stackable, solve_simplex_batch, standard_form
from .counters import LPStats, default_stats
from .simplex import solve_simplex

try:  # pragma: no cover - exercised implicitly on import
    from scipy.optimize import linprog as _scipy_linprog
    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _scipy_linprog = None
    _HAVE_SCIPY = False

#: Smallest same-shape miss group routed through the stacked simplex.
#: Below this size the lockstep kernel's per-round NumPy dispatch
#: overhead outweighs what it amortizes over the batch (measured
#: crossover ~8 on this workload's tiny LPs; see
#: ``benchmarks/bench_lp_kernels.py``), so smaller groups keep the
#: per-problem scalar path.
MIN_STACK_GROUP = 8


def stack_prekey(c: np.ndarray, a_ub: np.ndarray | None, bounds) -> tuple:
    """Conversion-free stacking pre-key of one prepared LP.

    Groups problems by ``(n_vars, n_constraints, bounds finiteness
    pattern)`` — a cheap over-approximation of the exact stacking
    signature (which additionally splits by artificial-column count and
    requires a standard-form conversion to compute).  Two LPs with equal
    pre-keys *may* stack; two with different pre-keys never do.  Shared
    by :meth:`LinearProgramSolver.solve_many`'s miss grouping and the
    deferred futures queue's accumulation buckets
    (:class:`repro.lp.futures.DeferredLPQueue`).
    """
    pattern = tuple(
        (lo is not None and math.isfinite(lo),
         hi is not None and math.isfinite(hi))
        for lo, hi in bounds)
    return (c.shape[0], a_ub.shape[0] if a_ub is not None else 0, pattern)


@dataclass(frozen=True)
class LPResult:
    """Outcome of one linear program.

    Attributes:
        status: ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
        x: Optimizing point (``None`` unless optimal).
        objective: Objective value at ``x`` (``None`` unless optimal).
    """

    status: str
    x: np.ndarray | None
    objective: float | None

    @property
    def is_optimal(self) -> bool:
        """``True`` when the LP was solved to optimality."""
        return self.status == "optimal"

    @property
    def is_infeasible(self) -> bool:
        """``True`` when the LP was infeasible."""
        return self.status == "infeasible"


class LPResultCache:
    """Bounded LRU memo of :class:`LPResult` keyed by canonicalized inputs.

    The pruning loops of RRPA solve the *same* tiny LPs over and over:
    identical dominance polytopes arise whenever the same pair of cost
    functions is compared while pruning different table sets.  Keys
    canonicalize the constraint set by sorting rows of ``[A_ub | b_ub]``,
    so two constraint orderings describing the same feasible set share one
    entry.  This is sound for every predicate built on top of the solver
    (feasibility, objective optima and minimizers do not depend on
    constraint order).

    Access is lock-protected: an optimizer session merges worker memo
    deltas from its pool's collector thread while the main thread keeps
    solving (serial runs) or exporting (pool spawns).

    Args:
        maxsize: Maximum number of cached results (LRU eviction).
        track_delta: Record the keys of fresh inserts so
            :meth:`drain_delta` can ship *only what this process learned*
            back to a parent session (pool workers enable this; see
            :mod:`repro.service.session`).
    """

    def __init__(self, maxsize: int = 4096,
                 track_delta: bool = False) -> None:
        self.maxsize = maxsize
        self._data = BoundedLRU(maxsize)
        self._lock = threading.Lock()
        #: Ordered set of keys inserted since the last drain (insertion
        #: order == recency for fresh keys); ``None`` disables tracking.
        self._delta: dict | None = {} if track_delta else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @staticmethod
    def make_key(c: np.ndarray, a_ub: np.ndarray | None,
                 b_ub: np.ndarray | None, bounds) -> tuple:
        """Canonical hashable key for one LP instance."""
        if a_ub is None:
            rows_key = b""
        else:
            rows = np.hstack([a_ub, b_ub[:, None]])
            order = np.lexsort(rows.T[::-1])
            rows_key = rows[order].tobytes()
        return (c.shape[0], c.tobytes(), rows_key, tuple(map(tuple, bounds)))

    def get(self, key: tuple) -> LPResult | None:
        """Look up a cached result, refreshing its LRU position.

        Hit accounting lives in :class:`LPStats` (``cache_hits``), the
        single source the optimizer statistics report.
        """
        with self._lock:
            return self._data.get(key)

    def put(self, key: tuple, result: LPResult) -> None:
        """Store a result, evicting the least recently used on overflow."""
        with self._lock:
            if self._delta is not None and key not in self._data:
                self._delta[key] = None
            self._data.put(key, result)

    def export(self, limit: int | None = None) -> list[tuple]:
        """Snapshot of ``(key, result)`` pairs for shipping across processes.

        Most recently used entries are kept when ``limit`` truncates the
        snapshot.  Keys are tuples of primitives and results hold plain
        numpy arrays, so the export pickles cheaply (the optimizer-session
        pool seeds its workers with one at spawn time).
        """
        with self._lock:
            entries = self._data.items()
        if limit is not None and len(entries) > limit:
            entries = entries[-limit:]
        return entries

    def merge(self, entries) -> int:
        """Adopt exported ``(key, result)`` pairs into this cache.

        Merged entries are *not* recorded as deltas — they are somebody
        else's learning (the spawn seed in a worker, a worker delta in
        the parent), and re-shipping them would echo entries back and
        forth.  Returns the number of entries that were new to this
        cache.
        """
        fresh = 0
        with self._lock:
            for key, result in entries:
                if key not in self._data:
                    fresh += 1
                self._data.put(key, result)
        return fresh

    def drain_delta(self, limit: int | None = None) -> list[tuple]:
        """Return (and forget) the entries inserted since the last drain.

        Only caches constructed with ``track_delta=True`` record deltas;
        others return an empty list.  Entries evicted between insert and
        drain are skipped.  ``limit`` keeps the most recent inserts.
        """
        if self._delta is None:
            return []
        with self._lock:
            keys = list(self._delta)
            self._delta.clear()
            if limit is not None and len(keys) > limit:
                keys = keys[-limit:]
            return [(key, self._data.get(key)) for key in keys
                    if key in self._data]


#: Process-wide session LP memo; see :func:`install_shared_lp_cache`.
_SHARED_CACHE: LPResultCache | None = None


def install_shared_lp_cache(cache: LPResultCache | None
                            ) -> LPResultCache | None:
    """Install (or clear, with ``None``) the process-wide session LP memo.

    While a shared cache is installed, every
    :class:`LinearProgramSolver` created with a positive ``cache_size``
    memoizes into it instead of a private per-run cache, so identical LPs
    arising in *different* optimization runs hit.  :class:`repro.api
    .OptimizerSession` installs its session memo around serial runs and
    inside pool workers; solvers created with ``cache_size=0`` (the
    paper-faithful configuration) stay unmemoized either way.

    Returns:
        The previously installed cache, so callers can restore it.
    """
    global _SHARED_CACHE
    previous = _SHARED_CACHE
    _SHARED_CACHE = cache
    return previous


def shared_lp_cache() -> LPResultCache | None:
    """The currently installed process-wide session LP memo, if any."""
    return _SHARED_CACHE


class LinearProgramSolver:
    """Facade over LP backends that records every solve in an :class:`LPStats`.

    Args:
        stats: Counter object to charge solves against.  Defaults to the
            process-wide counter from :func:`repro.lp.counters.default_stats`.
        backend: ``"scipy"``, ``"simplex"`` or ``"auto"`` (scipy when
            available, simplex otherwise).
        cache_size: Size of the LP-result memo cache; ``0`` (the default)
            disables memoization so counters reflect every solve.
        cache: Explicit memo cache to use, overriding both ``cache_size``
            and any installed shared cache (see
            :func:`install_shared_lp_cache`).
    """

    def __init__(self, stats: LPStats | None = None,
                 backend: str = "auto", cache_size: int = 0,
                 cache: LPResultCache | None = None) -> None:
        if backend == "auto":
            # The LPs arising in PWL-RRPA are tiny (a handful of variables,
            # dozens of constraints); the dependency-free simplex beats
            # scipy's per-call overhead by ~6x there.  scipy remains the
            # fallback for anything the simplex cannot handle.
            backend = "hybrid" if _HAVE_SCIPY else "simplex"
        if backend not in ("scipy", "simplex", "hybrid"):
            raise ValueError(f"unknown LP backend: {backend!r}")
        if backend in ("scipy", "hybrid") and not _HAVE_SCIPY:
            raise SolverError("scipy backend requested but scipy is missing")
        self.backend = backend
        self.stats = stats if stats is not None else default_stats()
        if cache is not None:
            self.cache = cache
        elif cache_size > 0:
            # Memoization requested: prefer the session-scoped shared memo
            # when one is installed so hits survive across runs.
            self.cache = (_SHARED_CACHE if _SHARED_CACHE is not None
                          else LPResultCache(cache_size))
        else:
            self.cache = None
        #: Lazily created per-solver deferred futures queue; see
        #: :meth:`deferred_queue`.
        self._deferred_queue = None

    def deferred_queue(self):
        """The per-solver :class:`repro.lp.futures.DeferredLPQueue`.

        Created on first use so solvers that never defer pay nothing.
        All deferred call sites of one solver share this queue — that is
        what lets LPs born in different regions and call sites co-flush
        into one stacked group.
        """
        if self._deferred_queue is None:
            from .futures import DeferredLPQueue
            self._deferred_queue = DeferredLPQueue(self)
        return self._deferred_queue

    def solve(self, c, a_ub=None, b_ub=None, bounds=None, *,
              purpose: str = "generic") -> LPResult:
        """Solve ``min c@x  s.t.  a_ub@x <= b_ub`` with optional variable bounds.

        Args:
            c: Objective coefficient vector.
            a_ub: Inequality constraint matrix (may be ``None`` / empty).
            b_ub: Inequality right-hand side vector.
            bounds: Per-variable ``(lo, hi)`` bounds; defaults to free
                variables, matching the geometry layer's convention (the
                parameter-space box is expressed as explicit constraints).
            purpose: Tag recorded in the LP statistics.

        Returns:
            An :class:`LPResult`.

        Raises:
            SolverError: If the backend fails in an unexpected way.
        """
        failpoint("lp.solver.fail")  # inert without a REPRO_FAULTS schedule
        c, a_ub, b_ub, bounds = self._prepare(c, a_ub, b_ub, bounds)

        key = None
        if self.cache is not None:
            key = LPResultCache.make_key(c, a_ub, b_ub, bounds)
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.record_cache_hit()
                return cached

        result = self._solve_prepared(c, a_ub, b_ub, bounds,
                                      purpose=purpose)
        if key is not None:
            self.cache.put(key, result)
        return result

    def solve_many(self, problems: Sequence[tuple], *,
                   purpose: str | Sequence[str] = "generic"
                   ) -> list[LPResult]:
        """Solve a batch of independent LPs.

        The batched entry point of the geometry kernels.  Semantically
        (results *and* accounting) it equals calling :meth:`solve` per
        problem: every backend solve is recorded, every memoized answer
        is a cache hit, and answers are bit-identical to the per-problem
        path.  The batch form buys two things: memo-backed deduplication
        (results solved earlier in the same batch answer later
        duplicates) and — for the ``simplex``/``hybrid`` backends — the
        stacked-tableau kernel of :mod:`repro.lp.batch_simplex`, which
        groups the post-dedupe miss set by canonical standard-form shape
        and pivots each group in lockstep NumPy rounds instead of one LP
        at a time.  Stragglers the kernel flags (singular bases,
        iteration overflow) fall back to the per-problem path, so
        results match today's answers exactly.  ``REPRO_SCALAR_KERNELS=1``
        disables the stacked kernel entirely.

        Args:
            problems: Sequence of ``(c, a_ub, b_ub, bounds)`` tuples, each
                accepted exactly as by :meth:`solve`.
            purpose: Tag recorded in the LP statistics — one string for
                the whole batch, or one per problem.  Per-problem tags
                keep the per-purpose wall-time attribution exact when one
                stacked shape group spans several purposes: each member
                is charged its own share of the group's wall clock.

        Returns:
            One :class:`LPResult` per problem, in input order.
        """
        count = len(problems)
        if isinstance(purpose, str):
            purposes = [purpose] * count
        else:
            purposes = [str(tag) for tag in purpose]
            if len(purposes) != count:
                raise SolverError(
                    "one purpose per problem required "
                    f"({len(purposes)} purposes for {count} problems)")
        results: list[LPResult | None] = [None] * count
        prepared: list[tuple] = [None] * count
        keys: list[tuple | None] = [None] * count
        misses: list[int] = []
        pending: dict[tuple, int] = {}
        duplicates: list[int] = []
        for index, problem in enumerate(problems):
            prepared[index] = self._prepare(*problem)
            if self.cache is not None:
                key = LPResultCache.make_key(*prepared[index])
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    self.stats.record_cache_hit()
                    results[index] = cached
                    continue
                if key in pending:
                    # The sequential path would have solved the earlier
                    # twin before reaching this lookup, making this a
                    # memo hit — preserve that accounting exactly.
                    duplicates.append(index)
                    continue
                pending[key] = index
            misses.append(index)
        pregroups: dict[tuple, list[int]] = {}
        for index in misses:
            c, a_ub, __, bounds = prepared[index]
            pregroups.setdefault(stack_prekey(c, a_ub, bounds),
                                 []).append(index)
        for premembers in pregroups.values():
            # The group-size histogram behind the "median stacked-group
            # size" metric: how wide the stacking-eligible groups of this
            # batch actually are (recorded whether or not they stack).
            self.stats.record_group_size(len(premembers))
        remaining = misses
        if (len(misses) >= MIN_STACK_GROUP
                and self.backend in ("simplex", "hybrid")
                and not scalar_kernels_enabled()):
            remaining = self._solve_misses_stacked(
                pregroups, prepared, keys, purposes, results)
        for index in remaining:
            result = self._solve_prepared(*prepared[index],
                                          purpose=purposes[index])
            if keys[index] is not None:
                self.cache.put(keys[index], result)
            results[index] = result
        for index in duplicates:
            cached = self.cache.get(keys[index])
            if cached is None:  # pragma: no cover - evicted in between
                cached = self._solve_prepared(*prepared[index],
                                              purpose=purposes[index])
                self.cache.put(keys[index], cached)
            else:
                self.stats.record_cache_hit()
            results[index] = cached
        return results

    def _solve_misses_stacked(self, pregroups: dict[tuple, list[int]],
                              prepared: list, keys: list,
                              purposes: list[str],
                              results: list) -> list[int]:
        """Route same-shape miss groups through the stacked kernel.

        Takes the miss set already grouped by conversion-free stacking
        pre-key (see :func:`stack_prekey`) and runs every group of
        :data:`MIN_STACK_GROUP` or more through
        :func:`repro.lp.batch_simplex.solve_simplex_batch`, recording
        each answered problem exactly as the per-problem path would
        (same ``solved``/purpose counters; the group's wall clock is
        split over members proportionally to the pivot rounds each was
        active, attributed to each member's own purpose).  Returns the
        indices still unsolved — members of too-small groups,
        unstackable shapes and flagged stragglers — for the per-problem
        path.  Grouping happens in two stages so small groups never pay
        a standard-form conversion they cannot use: the pre-key first,
        then the exact stacking signature (which additionally splits by
        artificial-column count) within large-enough pre-groups; the
        conversion time of members that still end up unstacked is
        charged to their purpose as plain wall time.
        """
        leftover: list[int] = []
        forms: dict[int, object] = {}
        groups: dict[tuple, list[int]] = {}
        for premembers in pregroups.values():
            if len(premembers) < MIN_STACK_GROUP:
                leftover.extend(premembers)
                continue
            for index in premembers:
                form = standard_form(*prepared[index])
                if not is_stackable(form.signature):
                    self.stats.add_seconds(purposes[index], form.seconds)
                    leftover.append(index)
                    continue
                forms[index] = form
                groups.setdefault(form.signature, []).append(index)
        for members in groups.values():
            if len(members) < MIN_STACK_GROUP:
                for index in members:
                    # The conversion could not be used; its wall time
                    # was still spent on this purpose.
                    self.stats.add_seconds(purposes[index],
                                           forms[index].seconds)
                leftover.extend(members)
                continue
            report = solve_simplex_batch([forms[i] for i in members])
            solved = [(i, res) for i, res in zip(members, report.results)
                      if res is not None]
            fallbacks = [i for i, res in zip(members, report.results)
                         if res is None]
            self.stats.record_batch(
                group_size=len(members), solved=len(solved),
                rounds=report.rounds,
                active_rounds=report.active_rounds,
                fallbacks=len(fallbacks))
            total_rounds = max(int(report.problem_rounds.sum()), 1)
            for position, index in enumerate(members):
                share = (report.seconds * int(report.problem_rounds[
                    position]) / total_rounds) + forms[index].seconds
                res = report.results[position]
                if res is None:
                    # The straggler's solve is recorded by the scalar
                    # re-solve; charge only its share of the group time.
                    self.stats.add_seconds(purposes[index], share)
                    continue
                c = prepared[index][0]
                self.stats.record(
                    purpose=purposes[index],
                    feasible=res.status != "infeasible",
                    bounded=res.status != "unbounded",
                    objective=bool(np.any(c != 0.0)),
                    seconds=share)
                result = LPResult(res.status, res.x, res.objective)
                if keys[index] is not None:
                    self.cache.put(keys[index], result)
                results[index] = result
            leftover.extend(fallbacks)
        leftover.sort()
        return leftover

    def _prepare(self, c, a_ub, b_ub, bounds) -> tuple:
        """Normalize one LP's inputs to canonical arrays (shared by
        :meth:`solve` and :meth:`solve_many`)."""
        c = np.asarray(c, dtype=float)
        n = c.shape[0]
        if bounds is None:
            bounds = [(None, None)] * n
        if a_ub is not None and len(a_ub) > 0:
            a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n)
            b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
            if a_ub.shape[0] != b_ub.shape[0]:
                raise SolverError("A_ub and b_ub row counts differ")
        else:
            a_ub, b_ub = None, None
        return c, a_ub, b_ub, bounds

    def _solve_prepared(self, c, a_ub, b_ub, bounds, *,
                        purpose: str) -> LPResult:
        """Run the backend on prepared inputs and record the solve."""
        started = time.perf_counter()
        if self.backend == "scipy":
            result = self._solve_scipy(c, a_ub, b_ub, bounds)
        elif self.backend == "simplex":
            result = self._solve_simplex(c, a_ub, b_ub, bounds)
        else:  # hybrid: fast simplex first, scipy on failure
            try:
                result = self._solve_simplex(c, a_ub, b_ub, bounds)
            except SolverError:
                result = self._solve_scipy(c, a_ub, b_ub, bounds)
        self.stats.record(purpose=purpose,
                          feasible=not result.is_infeasible,
                          bounded=result.status != "unbounded",
                          objective=bool(np.any(c != 0.0)),
                          seconds=time.perf_counter() - started)
        return result

    def feasible(self, a_ub, b_ub, bounds=None, *,
                 purpose: str = "feasibility") -> bool:
        """Return whether ``{x : a_ub@x <= b_ub}`` (within bounds) is non-empty."""
        n = np.asarray(a_ub, dtype=float).reshape(
            -1, len(a_ub[0]) if len(a_ub) else 0).shape[1] if len(a_ub) else 0
        if n == 0:
            return True
        result = self.solve(np.zeros(n), a_ub, b_ub, bounds, purpose=purpose)
        return result.is_optimal

    def _solve_scipy(self, c, a_ub, b_ub, bounds) -> LPResult:
        res = _scipy_linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds,
                             method="highs")
        if res.status == 0:
            return LPResult("optimal", np.asarray(res.x, dtype=float),
                            float(res.fun))
        if res.status == 2:
            return LPResult("infeasible", None, None)
        if res.status == 3:
            return LPResult("unbounded", None, None)
        raise SolverError(f"scipy linprog failed: {res.message}")

    def _solve_simplex(self, c, a_ub, b_ub, bounds) -> LPResult:
        res = solve_simplex(c, a_ub, b_ub, bounds)
        return LPResult(res.status, res.x, res.objective)


def make_solver(stats: LPStats | None = None,
                backend: str = "auto",
                cache_size: int = 0) -> LinearProgramSolver:
    """Convenience constructor mirroring :class:`LinearProgramSolver`."""
    return LinearProgramSolver(stats=stats, backend=backend,
                               cache_size=cache_size)
