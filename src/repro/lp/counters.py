"""Counters for linear-program solving activity.

The third panel of Figure 12 in the paper reports the *number of solved
linear programs*.  To reproduce that measurement faithfully, every LP that
is solved anywhere inside the geometry layer is recorded against an
:class:`LPStats` instance.  Optimizers create one instance per optimization
run and pass it down; code that does not care uses the module-level default
obtained via :func:`default_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LPStats:
    """Mutable record of LP-solver activity.

    Attributes:
        solved: Total number of linear programs handed to a solver.
        infeasible: How many of those were reported infeasible.
        unbounded: How many were reported unbounded.
        feasibility_checks: LPs solved purely to test feasibility.
        optimizations: LPs solved with a non-trivial objective.
        cache_hits: Solves answered from an LP-result memo cache instead of
            a backend (not counted in ``solved`` — the paper's "#solved
            linear programs" metric reports actual solver work).
        seconds: Total wall-clock time spent inside LP backends.
        batch_groups: Same-shape LP groups executed by the stacked
            simplex kernel (:mod:`repro.lp.batch_simplex`).
        batch_solves: LPs answered by the stacked kernel (each is also
            counted in ``solved`` — batching changes *how* an LP is
            pivoted, never whether it counts).
        batch_rounds: Lockstep pivot rounds executed across all groups.
        batch_active_rounds: Total problem-rounds — per round, how many
            problems were still pivoting (occupancy numerator).
        batch_round_slots: ``rounds * group size`` summed over groups
            (occupancy denominator).
        batch_fallbacks: Problems the stacked kernel flagged back to the
            per-problem scalar/scipy path (numerically nasty stragglers).
        queue_enqueued: LPs enqueued into a deferred futures queue
            (:mod:`repro.lp.futures`) instead of being solved eagerly.
        queue_flush_size: Queue flushes triggered by a stacking group
            reaching the crossover size (the productive kind: the group
            is wide enough for the stacked kernel).
        queue_flush_demand: Flushes triggered by a future's ``result()``
            being demanded before its group filled up.
        queue_flush_explicit: Flushes requested via an explicit
            ``flush()`` call (end-of-scope drains).
    """

    solved: int = 0
    infeasible: int = 0
    unbounded: int = 0
    feasibility_checks: int = 0
    optimizations: int = 0
    cache_hits: int = 0
    seconds: float = 0.0
    batch_groups: int = 0
    batch_solves: int = 0
    batch_rounds: int = 0
    batch_active_rounds: int = 0
    batch_round_slots: int = 0
    batch_fallbacks: int = 0
    queue_enqueued: int = 0
    queue_flush_size: int = 0
    queue_flush_demand: int = 0
    queue_flush_explicit: int = 0
    #: Histogram of stacking-group sizes — for every ``solve_many`` call,
    #: the post-dedupe miss set is grouped by conversion-free stacking
    #: pre-key and each group's size is recorded here (size -> count).
    #: This is the quantity the deferred queue exists to push up: groups
    #: below ``MIN_STACK_GROUP`` never reach the stacked kernel.
    _group_sizes: dict[int, int] = field(default_factory=dict)
    #: Histogram of the groups the stacked kernel actually executed
    #: (size -> count), maintained by :meth:`record_batch`.  Zero entries
    #: mean the kernel never engaged; the median over this histogram is
    #: the headline "median stacked-group size" metric.
    _stacked_group_sizes: dict[int, int] = field(default_factory=dict)
    _by_purpose: dict[str, int] = field(default_factory=dict)
    _seconds_by_purpose: dict[str, float] = field(default_factory=dict)

    def record(self, *, purpose: str = "generic", feasible: bool = True,
               bounded: bool = True, objective: bool = True,
               seconds: float = 0.0) -> None:
        """Record a solved LP.

        Args:
            purpose: Free-form tag describing why the LP was solved (e.g.
                ``"emptiness"``, ``"redundancy"``, ``"containment"``).
            feasible: Whether the LP was feasible.
            bounded: Whether the LP was bounded in the objective direction.
            objective: ``True`` when a real objective was optimized,
                ``False`` for pure feasibility checks.
            seconds: Wall-clock time the backend spent on this LP.
        """
        self.solved += 1
        if not feasible:
            self.infeasible += 1
        if not bounded:
            self.unbounded += 1
        if objective:
            self.optimizations += 1
        else:
            self.feasibility_checks += 1
        self.seconds += seconds
        self._by_purpose[purpose] = self._by_purpose.get(purpose, 0) + 1
        self._seconds_by_purpose[purpose] = (
            self._seconds_by_purpose.get(purpose, 0.0) + seconds)

    def record_cache_hit(self) -> None:
        """Record a solve answered from the memo cache (no solver work)."""
        self.cache_hits += 1

    def record_batch(self, *, group_size: int, solved: int, rounds: int,
                     active_rounds: int, fallbacks: int) -> None:
        """Record one stacked-simplex group execution.

        Args:
            group_size: Problems stacked into the group.
            solved: Problems the kernel answered (the rest fell back).
            rounds: Lockstep pivot rounds the group executed.
            active_rounds: Problem-rounds actually pivoted (frozen
                problems stop counting once they finish).
            fallbacks: Problems flagged for the scalar fallback.
        """
        self.batch_groups += 1
        self.batch_solves += solved
        self.batch_rounds += rounds
        self.batch_active_rounds += active_rounds
        self.batch_round_slots += rounds * group_size
        self.batch_fallbacks += fallbacks
        self._stacked_group_sizes[group_size] = (
            self._stacked_group_sizes.get(group_size, 0) + 1)

    def record_queue_enqueued(self, count: int = 1) -> None:
        """Record LPs handed to a deferred futures queue."""
        self.queue_enqueued += count

    def record_queue_flush(self, cause: str) -> None:
        """Record one deferred-queue flush event by its trigger.

        Args:
            cause: ``"size"`` (a stacking group reached the crossover),
                ``"demand"`` (a future's result was demanded) or
                ``"explicit"`` (a direct ``flush()`` call).
        """
        if cause == "size":
            self.queue_flush_size += 1
        elif cause == "demand":
            self.queue_flush_demand += 1
        elif cause == "explicit":
            self.queue_flush_explicit += 1
        else:
            raise ValueError(f"unknown queue flush cause: {cause!r}")

    def record_group_size(self, size: int) -> None:
        """Record the size of one stacking pre-key group of a miss set."""
        self._group_sizes[size] = self._group_sizes.get(size, 0) + 1

    def group_size_histogram(self) -> dict[int, int]:
        """Return a copy of the stacking-group-size histogram.

        Covers *every* miss group, including the sub-crossover fragments
        solved per problem; compare with
        :meth:`stacked_group_size_histogram` to see how much of the LP
        mass travels in stacked batches.
        """
        return dict(self._group_sizes)

    def stacked_group_size_histogram(self) -> dict[int, int]:
        """Return a copy of the stacked-kernel group-size histogram."""
        return dict(self._stacked_group_sizes)

    @staticmethod
    def _weighted_median(histogram: dict[int, int]) -> float:
        """LP-weighted median of a ``size -> group count`` histogram.

        The median is taken over *LPs*, not over groups: a group of size
        ``s`` contributes ``s`` observations of value ``s``.  This makes
        the metric answer the question that matters for the stacked
        kernel — "how big is the group the typical LP travels in?" —
        instead of letting a swarm of stragglers outvote one wide batch
        that carries most of the actual work.  0.0 when the histogram is
        empty.
        """
        if not histogram:
            return 0.0
        total = sum(size * count for size, count in histogram.items())
        half = total / 2.0
        seen = 0
        sizes = sorted(histogram)
        for position, size in enumerate(sizes):
            seen += size * histogram[size]
            if seen > half:
                return float(size)
            if seen == half and position + 1 < len(sizes):
                return (size + sizes[position + 1]) / 2.0
        return float(sizes[-1])

    def median_group_size(self) -> float:
        """LP-weighted median size over *all* miss groups.

        Dominated by the sub-crossover fragments that control-flow
        decision points force out of the queue (a chain that needs an
        answer *now* cannot wait for its group to fill), so this stays
        low even when the stacked kernel carries most of the heavy LPs;
        see :meth:`median_stacked_group_size` for the headline metric.
        """
        return self._weighted_median(self._group_sizes)

    def median_stacked_group_size(self) -> float:
        """LP-weighted median size of the groups the stacked kernel ran.

        0.0 when the kernel never engaged — the bench gate on this
        metric therefore fails loudly if the deferred queue stops
        feeding the kernel groups at or above the stacking crossover.
        """
        return self._weighted_median(self._stacked_group_sizes)

    def add_seconds(self, purpose: str, seconds: float) -> None:
        """Charge backend wall time to a purpose without counting a solve.

        Used to attribute a stacked group's shared wall clock to each
        member's own purpose (the per-group attribution fix): members
        that fall back get their share of the group time here and their
        solve is recorded by the scalar re-solve.
        """
        self.seconds += seconds
        self._seconds_by_purpose[purpose] = (
            self._seconds_by_purpose.get(purpose, 0.0) + seconds)

    def batch_occupancy(self) -> float:
        """Mean fraction of each stacked group still pivoting per round.

        1.0 means every problem pivoted in every round of its group;
        lower values mean finished problems froze while stragglers kept
        going.  0.0 when no stacked group ran.
        """
        if self.batch_round_slots == 0:
            return 0.0
        return self.batch_active_rounds / self.batch_round_slots

    def by_purpose(self) -> dict[str, int]:
        """Return a copy of the per-purpose LP counts."""
        return dict(self._by_purpose)

    def seconds_by_purpose(self) -> dict[str, float]:
        """Return a copy of the per-purpose backend wall-time totals."""
        return dict(self._seconds_by_purpose)

    def reset(self) -> None:
        """Reset all counters to zero."""
        self.solved = 0
        self.infeasible = 0
        self.unbounded = 0
        self.feasibility_checks = 0
        self.optimizations = 0
        self.cache_hits = 0
        self.seconds = 0.0
        self.batch_groups = 0
        self.batch_solves = 0
        self.batch_rounds = 0
        self.batch_active_rounds = 0
        self.batch_round_slots = 0
        self.batch_fallbacks = 0
        self.queue_enqueued = 0
        self.queue_flush_size = 0
        self.queue_flush_demand = 0
        self.queue_flush_explicit = 0
        self._group_sizes.clear()
        self._stacked_group_sizes.clear()
        self._by_purpose.clear()
        self._seconds_by_purpose.clear()

    def merge(self, other: LPStats) -> None:
        """Add the counts of ``other`` into this instance."""
        self.solved += other.solved
        self.infeasible += other.infeasible
        self.unbounded += other.unbounded
        self.feasibility_checks += other.feasibility_checks
        self.optimizations += other.optimizations
        self.cache_hits += other.cache_hits
        self.seconds += other.seconds
        self.batch_groups += other.batch_groups
        self.batch_solves += other.batch_solves
        self.batch_rounds += other.batch_rounds
        self.batch_active_rounds += other.batch_active_rounds
        self.batch_round_slots += other.batch_round_slots
        self.batch_fallbacks += other.batch_fallbacks
        self.queue_enqueued += other.queue_enqueued
        self.queue_flush_size += other.queue_flush_size
        self.queue_flush_demand += other.queue_flush_demand
        self.queue_flush_explicit += other.queue_flush_explicit
        for key, value in other._group_sizes.items():
            self._group_sizes[key] = self._group_sizes.get(key, 0) + value
        for key, value in other._stacked_group_sizes.items():
            self._stacked_group_sizes[key] = (
                self._stacked_group_sizes.get(key, 0) + value)
        for key, value in other._by_purpose.items():
            self._by_purpose[key] = self._by_purpose.get(key, 0) + value
        for key, value in other._seconds_by_purpose.items():
            self._seconds_by_purpose[key] = (
                self._seconds_by_purpose.get(key, 0.0) + value)


_DEFAULT = LPStats()


def default_stats() -> LPStats:
    """Return the process-wide default :class:`LPStats` instance."""
    return _DEFAULT
