"""Deferred-flush LP futures: accumulate LPs, flush them in stacked batches.

PR 5's stacked-tableau simplex (:mod:`repro.lp.batch_simplex`) pivots a
same-shape group of LPs in lockstep NumPy rounds and is ~4x faster per LP
at batch 64 — but it only engages on miss groups of
:data:`repro.lp.solver.MIN_STACK_GROUP` or more, and the eager call sites
mostly hand it groups of one or two because region maintenance issues its
emptiness checks cut-by-cut.  This module closes that gap: call sites
*enqueue* LPs into a per-solver :class:`DeferredLPQueue` and receive an
:class:`LPFuture` instead of a result.  The queue buckets pending LPs by
conversion-free stacking pre-key (:func:`repro.lp.solver.stack_prekey`)
and flushes

* a single bucket, when it reaches :data:`QUEUE_FLUSH_SIZE` — several
  stacking crossovers wide — (``"size"``): the productive case, a group
  the stacked kernel amortizes well over;
* everything pending, when any future's :meth:`LPFuture.result` is
  demanded (``"demand"``) — control flow needs an answer *now*, and
  holding the rest back would only shrink the very next flush;
* everything pending, on an explicit :meth:`DeferredLPQueue.flush`
  (``"explicit"``) — end-of-scope drains.

Every flush is one :meth:`LinearProgramSolver.solve_many` call in enqueue
order, so memo/dedupe accounting, per-purpose wall-time attribution and
bit-identity to the eager path all come for free — the queue changes
*when* LPs reach the solver, never *how* they are solved or counted.

Results propagate two ways: :meth:`LPFuture.result` for callers that
demand, and per-future ``on_resolve`` callbacks fired at flush time for
side effects that must not wait for a demand (the geometry helpers use
these to fill polytope emptiness/Chebyshev caches the moment the answer
exists, so an unrelated eager ``is_empty`` later sees the cache exactly
as it would have under eager dispatch).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from typing import Any

from ..errors import SolverError
from .solver import MIN_STACK_GROUP, LinearProgramSolver, LPResult, \
    stack_prekey

#: Bucket size at which the queue flushes a stacking group on its own
#: (the ``"size"`` cause).  Several crossovers wide on purpose: a demand
#: can interrupt a bucket at any moment, and a bucket interrupted
#: anywhere above :data:`~repro.lp.solver.MIN_STACK_GROUP` still stacks —
#: so waiting costs nothing (flushing is pure reordering) while every
#: extra member widens the lockstep batch the kernel amortizes over.
QUEUE_FLUSH_SIZE = 4 * MIN_STACK_GROUP


class LPFuture:
    """Handle for one enqueued LP, resolved when its queue flushes.

    Attributes:
        purpose: The LP-statistics tag the solve will be recorded under.
        prekey: The stacking pre-key bucketing this LP in its queue.
    """

    __slots__ = ("purpose", "prekey", "_queue", "_result", "_resolved",
                 "_callback")

    def __init__(self, queue: DeferredLPQueue, purpose: str,
                 prekey: tuple,
                 callback: Callable[[LPResult], None] | None) -> None:
        self.purpose = purpose
        self.prekey = prekey
        self._queue = queue
        self._result: LPResult | None = None
        self._resolved = False
        self._callback = callback

    def done(self) -> bool:
        """Whether the LP has been solved (no flush is triggered)."""
        return self._resolved

    def result(self) -> LPResult:
        """The LP's result, flushing its stacking group if necessary.

        Demanding an unresolved future flushes the future's *whole
        pre-key group* — everything that could have stacked with it —
        but leaves other groups pending so they keep accumulating
        toward the crossover instead of being drained early at whatever
        size they happen to have.
        """
        if not self._resolved:
            self._queue.flush_group(self.prekey, cause="demand")
        if not self._resolved:  # pragma: no cover - internal invariant
            raise SolverError("LP future unresolved after queue flush")
        return self._result

    def _resolve(self, result: LPResult) -> None:
        """Install the result and fire the ``on_resolve`` callback."""
        self._result = result
        self._resolved = True
        if self._callback is not None:
            callback, self._callback = self._callback, None
            callback(result)


class LazyValue:
    """A value that is either already known or derived from an LP future.

    The deferred geometry helpers answer some inputs without any LP
    (trivially infeasible polytopes, cached answers, constraint-free
    spaces); wrapping both those constants and the genuinely deferred
    answers in one type lets callers treat a whole batch uniformly:
    enqueue everything, then ``get()`` at the decision point.
    """

    __slots__ = ("_value", "_future", "_reader")

    def __init__(self, value: Any = None, *, future: LPFuture | None = None,
                 reader: Callable[[LPResult], Any] | None = None) -> None:
        if future is None:
            self._value = value
            self._future = None
            self._reader = None
        else:
            self._value = None
            self._future = future
            self._reader = reader

    @classmethod
    def resolved(cls, value: Any) -> LazyValue:
        """A lazy value already holding its answer (no LP behind it)."""
        return cls(value)

    @classmethod
    def deferred(cls, future: LPFuture,
                 reader: Callable[[LPResult], Any]) -> LazyValue:
        """A lazy value computed by ``reader`` from ``future``'s result."""
        return cls(future=future, reader=reader)

    def ready(self) -> bool:
        """Whether :meth:`get` will return without triggering a flush."""
        return self._future is None or self._future.done()

    def get(self) -> Any:
        """The value, demanding (and caching) the LP result if needed."""
        if self._future is not None:
            self._value = self._reader(self._future.result())
            self._future = None
            self._reader = None
        return self._value

    def map(self, fn: Callable[[Any], Any]) -> LazyValue:
        """A lazy value applying ``fn`` to this one's eventual value.

        Shares the underlying future (no extra LP); a resolved input
        maps immediately.
        """
        if self._future is None:
            return LazyValue.resolved(fn(self._value))
        reader = self._reader
        return LazyValue.deferred(self._future,
                                  lambda result: fn(reader(result)))


class DeferredLPQueue:
    """Accumulates LPs for one solver and flushes them in stacked batches.

    Obtained via :meth:`LinearProgramSolver.deferred_queue` — one queue
    per solver, shared by every deferred call site, so LPs born in
    different regions and helpers accumulate into common stacking
    buckets.

    The queue also keeps a ``notes`` side table for call sites that need
    cross-call instance deduplication (the geometry helpers key it by
    ``("empty", id(polytope))`` and the like): when the same polytope is
    enqueued again while its first LP is still pending, the helper finds
    the earlier future in the notes and reuses it — zero extra LPs and
    zero extra cache hits, exactly matching the eager path where the
    first call would already have filled the polytope's own cache.
    Resolved entries are purged at flush so the table only ever holds
    pending work.

    Args:
        solver: The solver flushes are dispatched to (its stats instance
            also receives the queue counters).
    """

    def __init__(self, solver: LinearProgramSolver) -> None:
        self.solver = solver
        #: Pending entries in enqueue order:
        #: ``(prekey, prepared problem, future)``.
        self._pending: list[tuple] = []
        #: Pending count per stacking pre-key (size-trigger bookkeeping).
        self._bucket_counts: dict[tuple, int] = {}
        #: Cross-call instance-dedupe side table; see class docstring.
        self.notes: dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def enqueue(self, c, a_ub=None, b_ub=None, bounds=None, *,
                purpose: str = "generic",
                on_resolve: Callable[[LPResult], None] | None = None
                ) -> LPFuture:
        """Enqueue ``min c@x  s.t.  a_ub@x <= b_ub`` for a later flush.

        Accepts exactly what :meth:`LinearProgramSolver.solve` accepts.
        When this LP's stacking bucket reaches :data:`QUEUE_FLUSH_SIZE`,
        that bucket (only) is flushed immediately with cause ``"size"``
        — wide enough that the stacked kernel's per-round dispatch
        overhead is well amortized, while demands interrupting earlier
        still find a stackable group most of the time.

        Args:
            c: Objective coefficient vector.
            a_ub: Inequality constraint matrix (may be ``None`` / empty).
            b_ub: Inequality right-hand side vector.
            bounds: Per-variable ``(lo, hi)`` bounds; ``None`` means free.
            purpose: Tag recorded in the LP statistics at flush time.
            on_resolve: Callback fired with the :class:`LPResult` when
                the LP is solved (at flush, not at demand).

        Returns:
            An :class:`LPFuture` for the eventual result.
        """
        prepared = self.solver._prepare(c, a_ub, b_ub, bounds)
        prekey = stack_prekey(prepared[0], prepared[1], prepared[3])
        future = LPFuture(self, purpose, prekey, on_resolve)
        self._pending.append((prekey, prepared, future))
        self._bucket_counts[prekey] = self._bucket_counts.get(prekey, 0) + 1
        self.solver.stats.record_queue_enqueued()
        if self._bucket_counts[prekey] >= QUEUE_FLUSH_SIZE:
            self.flush_group(prekey, cause="size")
        return future

    def flush(self, cause: str = "explicit") -> None:
        """Flush every pending LP as one ``solve_many`` batch.

        A no-op (recording nothing) when the queue is empty, so demand
        loops over already-resolved futures stay silent in the counters.

        Args:
            cause: ``"demand"`` or ``"explicit"`` — recorded in the
                queue-flush counters.
        """
        if not self._pending:
            return
        entries = self._pending
        self._pending = []
        self._bucket_counts.clear()
        self.solver.stats.record_queue_flush(cause)
        self._dispatch(entries)

    def flush_group(self, prekey: tuple, cause: str) -> None:
        """Flush only the LPs of one stacking pre-key group.

        Used by the size trigger (the group can already fill a stacked
        batch) and by :meth:`LPFuture.result` demands (control flow
        needs this group's answers *now*; other groups stay pending and
        keep accumulating toward the crossover).  A no-op when the group
        has nothing pending.
        """
        entries = [entry for entry in self._pending if entry[0] == prekey]
        if not entries:
            return
        self._pending = [entry for entry in self._pending
                         if entry[0] != prekey]
        self._bucket_counts.pop(prekey, None)
        self.solver.stats.record_queue_flush(cause)
        self._dispatch(entries)

    def _dispatch(self, entries: list[tuple]) -> None:
        """Solve a flushed entry list and resolve its futures in order."""
        problems = [prepared for __, prepared, __f in entries]
        purposes = [future.purpose for __, __p, future in entries]
        results = self.solver.solve_many(problems, purpose=purposes)
        for (__, __p, future), result in zip(entries, results):
            future._resolve(result)
        if self.notes:
            self._purge_notes()

    def _purge_notes(self) -> None:
        """Drop notes whose futures have resolved.

        Notes exist to let a *pending* LP be found again; once resolved,
        the answer lives in the owning object's cache (the callbacks ran
        at flush) and keeping the note would pin the keyed object — for
        ``id()``-keyed notes, dangerously so, since a dead id can be
        recycled by a new object.
        """
        self.notes = {key: value for key, value in self.notes.items()
                      if not value[1].done()}
