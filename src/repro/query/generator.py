"""Random query generation following Steinbrunn et al.

Section 7 of the paper: "We evaluate the performance of PWL-RRPA on
randomly generated queries, using the generation method proposed by
Steinbrunn [29] ... to choose table cardinalities and join predicates; we
assume that unique values occupy up to 10% of a table column.  We
separately evaluate the performance for star queries and for chain queries
as the structure of the join graph is known to have significant impact on
optimizer performance."

This module generates catalogs and queries accordingly:

* table cardinalities drawn log-uniformly from ``[min_card, max_card]``;
* distinct values of join/predicate columns drawn uniformly from
  ``[1, ceil(0.1 * cardinality)]`` (the 10% rule);
* join predicates arranged as a chain, star, cycle or clique;
* the first ``num_params`` tables (chosen at random) carry a parametric
  equality predicate each, with an index on the filtered column ("Indices
  are available for each column with a predicate").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..catalog import Catalog, Column, Index, Table
from .predicates import JoinPredicate, ParametricPredicate
from .query import Query

#: Join graph shapes supported by the generator.
SHAPES = ("chain", "star", "cycle", "clique")


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunables of the random query generator.

    Attributes:
        min_cardinality / max_cardinality: Log-uniform table size range.
        unique_fraction: Upper bound on distinct values as a fraction of
            the table cardinality (the paper's 10% rule).
    """

    min_cardinality: int = 100
    max_cardinality: int = 100_000
    unique_fraction: float = 0.1


class QueryGenerator:
    """Deterministic random generator for catalogs and queries.

    Args:
        seed: Seed for the internal :mod:`random` instance; runs with equal
            seeds produce identical workloads.
        config: Size tunables (defaults follow the paper).
    """

    def __init__(self, seed: int = 0,
                 config: GeneratorConfig | None = None) -> None:
        self._rng = random.Random(seed)
        self.config = config or GeneratorConfig()

    # ------------------------------------------------------------------
    # Low-level draws
    # ------------------------------------------------------------------

    def _table_cardinality(self) -> int:
        lo = math.log(self.config.min_cardinality)
        hi = math.log(self.config.max_cardinality)
        return int(round(math.exp(self._rng.uniform(lo, hi))))

    def _distinct_values(self, cardinality: int) -> int:
        cap = max(1, math.ceil(self.config.unique_fraction * cardinality))
        return self._rng.randint(1, cap)

    @staticmethod
    def _edges(shape: str, names: list[str]) -> list[tuple[str, str]]:
        n = len(names)
        if shape == "chain":
            return [(names[i], names[i + 1]) for i in range(n - 1)]
        if shape == "star":
            return [(names[0], names[i]) for i in range(1, n)]
        if shape == "cycle":
            edges = [(names[i], names[i + 1]) for i in range(n - 1)]
            if n > 2:
                edges.append((names[-1], names[0]))
            return edges
        if shape == "clique":
            return [(names[i], names[j])
                    for i in range(n) for j in range(i + 1, n)]
        raise ValueError(f"unknown join graph shape {shape!r}; "
                         f"expected one of {SHAPES}")

    # ------------------------------------------------------------------
    # Query generation
    # ------------------------------------------------------------------

    def generate(self, num_tables: int, shape: str = "chain",
                 num_params: int = 1) -> Query:
        """Generate a random query with its own catalog.

        Args:
            num_tables: Number of tables to join (>= 1).
            shape: Join graph shape (one of :data:`SHAPES`).
            num_params: Number of parameterized predicates; must not
                exceed ``num_tables``.

        Returns:
            A :class:`repro.query.Query` whose catalog contains exactly the
            generated tables and indexes.
        """
        if num_tables < 1:
            raise ValueError("queries need at least one table")
        if num_params > num_tables:
            raise ValueError("cannot have more parameters than tables")
        names = [f"t{i}" for i in range(num_tables)]
        edges = self._edges(shape, names) if num_tables > 1 else []

        cardinalities = {name: self._table_cardinality() for name in names}

        # One join column per incident edge, one predicate column per
        # parameterized table.
        columns: dict[str, list[Column]] = {name: [] for name in names}
        join_predicates = []
        for k, (left, right) in enumerate(edges):
            left_col = f"j{k}"
            right_col = f"j{k}"
            left_distinct = self._distinct_values(cardinalities[left])
            right_distinct = self._distinct_values(cardinalities[right])
            columns[left].append(Column(left_col, left_distinct))
            columns[right].append(Column(right_col, right_distinct))
            selectivity = 1.0 / max(left_distinct, right_distinct)
            join_predicates.append(JoinPredicate(
                left_table=left, left_column=left_col,
                right_table=right, right_column=right_col,
                selectivity=selectivity))

        param_tables = self._rng.sample(names, num_params)
        parametric = []
        indexes = []
        for param_index, table in enumerate(sorted(param_tables)):
            col_name = "p"
            columns[table].append(
                Column(col_name,
                       self._distinct_values(cardinalities[table])))
            parametric.append(ParametricPredicate(
                table=table, column=col_name, parameter_index=param_index))
            indexes.append(Index(table_name=table, column_name=col_name))

        tables = [Table(name=name, cardinality=cardinalities[name],
                        columns=tuple(columns[name]))
                  for name in names]
        catalog = Catalog.from_tables(tables, indexes)
        return Query(catalog=catalog, tables=tuple(names),
                     join_predicates=tuple(join_predicates),
                     parametric_predicates=tuple(parametric))

    def generate_batch(self, count: int, num_tables: int,
                       shape: str = "chain",
                       num_params: int = 1) -> list[Query]:
        """Generate ``count`` independent random queries."""
        return [self.generate(num_tables, shape, num_params)
                for _ in range(count)]
