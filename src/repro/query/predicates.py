"""Predicate model: join predicates and parameterized selection predicates.

Two predicate kinds appear in the paper's setting:

* **Join predicates** — ``R.a = S.b`` with a selectivity known at
  optimization time (estimated from catalog statistics).
* **Parametric predicates** — equality predicates on base tables whose
  selectivity is *unknown* at optimization time and modeled as one
  parameter each ("one parameter is required for each table with a
  predicate", Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class JoinPredicate:
    """An equality join predicate between two tables.

    Attributes:
        left_table / left_column: One side of the equality.
        right_table / right_column: The other side.
        selectivity: Estimated selectivity at optimization time.
    """

    left_table: str
    left_column: str
    right_table: str
    right_column: str
    selectivity: float

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError(
                f"join selectivity {self.selectivity} outside (0, 1]")
        if self.left_table == self.right_table:
            raise ValueError("self-joins are not modeled")

    @property
    def tables(self) -> frozenset[str]:
        """The pair of joined tables."""
        return frozenset((self.left_table, self.right_table))

    def connects(self, left_set: frozenset[str],
                 right_set: frozenset[str]) -> bool:
        """Return whether the predicate crosses between two table sets."""
        return ((self.left_table in left_set
                 and self.right_table in right_set)
                or (self.left_table in right_set
                    and self.right_table in left_set))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{self.left_table}.{self.left_column} = "
                f"{self.right_table}.{self.right_column} "
                f"[sel={self.selectivity:.2e}]")


@dataclass(frozen=True)
class ParametricPredicate:
    """An equality predicate with optimization-time-unknown selectivity.

    Attributes:
        table: The filtered base table.
        column: The filtered column (indexed per the paper's setup).
        parameter_index: Index of the selectivity parameter in the
            parameter vector ``x``; the predicate's selectivity at run time
            is ``x[parameter_index]``.
    """

    table: str
    column: str
    parameter_index: int

    def __post_init__(self) -> None:
        if self.parameter_index < 0:
            raise ValueError("parameter index must be non-negative")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{self.table}.{self.column} = ? "
                f"[sel=x{self.parameter_index}]")
