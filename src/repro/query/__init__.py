"""Query model: predicates, join graphs, queries, random generation."""

from .generator import SHAPES, GeneratorConfig, QueryGenerator
from .joingraph import JoinGraph
from .predicates import JoinPredicate, ParametricPredicate
from .query import Query

__all__ = [
    "SHAPES",
    "GeneratorConfig",
    "JoinGraph",
    "JoinPredicate",
    "ParametricPredicate",
    "Query",
    "QueryGenerator",
]
