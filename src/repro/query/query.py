"""The query model: table sets, join predicates, parametric predicates.

Section 2 of the paper represents a query as a set ``Q`` of tables to be
joined.  A :class:`Query` bundles that table set with its join predicates
(known selectivities) and its parametric predicates (selectivity unknown at
optimization time, one parameter each), plus cardinality computation for
arbitrary sub-sets of tables as exact polynomials in the parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce

from ..catalog import Catalog
from ..cost.multilinear import ParamPolynomial
from ..errors import QueryError
from .joingraph import JoinGraph
from .predicates import JoinPredicate, ParametricPredicate


@dataclass
class Query:
    """A select-project-join query over a catalog.

    Args:
        catalog: Catalog providing table statistics.
        tables: Names of the tables to join (``Q`` in the paper).
        join_predicates: Equality join predicates with known selectivity.
        parametric_predicates: Per-table predicates whose selectivities are
            the optimization parameters.
    """

    catalog: Catalog
    tables: tuple[str, ...]
    join_predicates: tuple[JoinPredicate, ...] = ()
    parametric_predicates: tuple[ParametricPredicate, ...] = field(
        default_factory=tuple)

    def __post_init__(self) -> None:
        self.tables = tuple(self.tables)
        self.join_predicates = tuple(self.join_predicates)
        self.parametric_predicates = tuple(self.parametric_predicates)
        if len(set(self.tables)) != len(self.tables):
            raise QueryError("duplicate tables in query")
        for name in self.tables:
            self.catalog.table(name)  # raises CatalogError when missing
        table_set = set(self.tables)
        for pred in self.join_predicates:
            if not pred.tables <= table_set:
                raise QueryError(f"join predicate {pred!r} outside query")
        seen_params = set()
        seen_tables = set()
        for pred in self.parametric_predicates:
            if pred.table not in table_set:
                raise QueryError(f"parametric predicate on unknown table "
                                 f"{pred.table!r}")
            if pred.parameter_index in seen_params:
                raise QueryError(
                    f"parameter {pred.parameter_index} used twice")
            if pred.table in seen_tables:
                raise QueryError(
                    f"table {pred.table!r} has two parametric predicates")
            seen_params.add(pred.parameter_index)
            seen_tables.add(pred.table)
        expected = set(range(len(self.parametric_predicates)))
        if seen_params and seen_params != expected:
            raise QueryError(
                f"parameter indices must be 0..k-1, got {sorted(seen_params)}")
        self._graph = JoinGraph(self.tables, self.join_predicates)
        self._param_of_table = {p.table: p.parameter_index
                                for p in self.parametric_predicates}
        self._cardinality_cache: dict[frozenset[str], ParamPolynomial] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def num_tables(self) -> int:
        """Number of tables (``|Q|``)."""
        return len(self.tables)

    @property
    def num_params(self) -> int:
        """Number of optimization parameters (``nX``)."""
        return len(self.parametric_predicates)

    @property
    def table_set(self) -> frozenset[str]:
        """The full table set as a frozenset."""
        return frozenset(self.tables)

    @property
    def join_graph(self) -> JoinGraph:
        """The join graph of the query."""
        return self._graph

    def parameter_of(self, table: str) -> int | None:
        """Parameter index of a table's parametric predicate, or ``None``."""
        return self._param_of_table.get(table)

    def parametric_predicate_of(self, table: str) -> ParametricPredicate | None:
        """The parametric predicate attached to ``table``, if any."""
        for pred in self.parametric_predicates:
            if pred.table == table:
                return pred
        return None

    # ------------------------------------------------------------------
    # Cardinality estimation
    # ------------------------------------------------------------------

    def base_cardinality(self, table: str) -> ParamPolynomial:
        """Rows of one base table after its optional parametric filter."""
        card = float(self.catalog.table(table).cardinality)
        poly = ParamPolynomial.constant(self.num_params, card)
        param = self.parameter_of(table)
        if param is not None:
            poly = poly * ParamPolynomial.variable(self.num_params, param)
        return poly

    def cardinality(self, subset: frozenset[str]) -> ParamPolynomial:
        """Result cardinality of joining ``subset`` (exact polynomial).

        The standard uniformity model: product of filtered base-table
        cardinalities times the selectivities of all join predicates whose
        tables both lie in ``subset``.  Because each parameter belongs to
        exactly one base table, the result is multilinear in the
        parameters.  Results are memoized per subset.
        """
        subset = frozenset(subset)
        if not subset <= self.table_set:
            raise QueryError(f"{sorted(subset)} is not a sub-set of the query")
        if not subset:
            raise QueryError("cardinality of the empty table set")
        cached = self._cardinality_cache.get(subset)
        if cached is not None:
            return cached
        poly = reduce(lambda acc, t: acc * self.base_cardinality(t),
                      sorted(subset),
                      ParamPolynomial.constant(self.num_params, 1.0))
        for pred in self._graph.predicates_within(subset):
            poly = poly * pred.selectivity
        self._cardinality_cache[subset] = poly
        return poly

    def join_selectivity_between(self, left: frozenset[str],
                                 right: frozenset[str]) -> float:
        """Combined selectivity of all predicates crossing a split."""
        sel = 1.0
        for pred in self._graph.predicates_between(left, right):
            sel *= pred.selectivity
        return sel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Query(tables={len(self.tables)}, "
                f"joins={len(self.join_predicates)}, "
                f"params={self.num_params})")
