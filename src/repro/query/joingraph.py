"""Join graphs and connectivity queries.

The structure of the join graph (chain vs. star) "is known to have
significant impact on optimizer performance" (Section 7, citing Steinbrunn
et al.); the paper evaluates both shapes separately.  This module provides
the graph abstraction used for

* Cartesian-product postponement: a split of a table set is *connected*
  when at least one join predicate crosses it, and the plan enumerator
  prefers connected splits (Section 7: "postpones Cartesian product joins
  as much as possible ... commonly applied in state-of-the-art optimizers
  such as the Postgres optimizer");
* enumerating connected sub-sets for tests and analysis.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .predicates import JoinPredicate


class JoinGraph:
    """Undirected graph with tables as nodes and join predicates as edges.

    Args:
        tables: All table names of the query.
        predicates: The join predicates (edges).
    """

    def __init__(self, tables: Sequence[str],
                 predicates: Iterable[JoinPredicate]) -> None:
        self.tables = tuple(tables)
        self.predicates = tuple(predicates)
        self._adjacent: dict[str, set[str]] = {t: set() for t in self.tables}
        for pred in self.predicates:
            if (pred.left_table not in self._adjacent
                    or pred.right_table not in self._adjacent):
                raise ValueError(
                    f"predicate {pred!r} references a table outside "
                    f"the query")
            self._adjacent[pred.left_table].add(pred.right_table)
            self._adjacent[pred.right_table].add(pred.left_table)

    def neighbors(self, table: str) -> frozenset[str]:
        """Tables directly joined with ``table``."""
        return frozenset(self._adjacent[table])

    def is_connected(self, subset: frozenset[str] | None = None) -> bool:
        """Return whether ``subset`` (default: all tables) is connected."""
        nodes = set(subset) if subset is not None else set(self.tables)
        if not nodes:
            return True
        start = next(iter(nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in self._adjacent[node]:
                if nxt in nodes and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen == nodes

    def split_is_connected(self, left: frozenset[str],
                           right: frozenset[str]) -> bool:
        """Return whether some predicate crosses between ``left`` and ``right``."""
        return any(p.connects(left, right) for p in self.predicates)

    def predicates_between(self, left: frozenset[str],
                           right: frozenset[str]) -> list[JoinPredicate]:
        """All predicates crossing between two disjoint table sets."""
        return [p for p in self.predicates if p.connects(left, right)]

    def predicates_within(self, subset: frozenset[str]
                          ) -> list[JoinPredicate]:
        """All predicates with both tables inside ``subset``."""
        return [p for p in self.predicates if p.tables <= subset]

    def connected_subsets(self, max_size: int | None = None
                          ) -> list[frozenset[str]]:
        """Enumerate all connected non-empty subsets (small queries only)."""
        from itertools import combinations
        limit = max_size if max_size is not None else len(self.tables)
        out = []
        for k in range(1, limit + 1):
            for combo in combinations(self.tables, k):
                subset = frozenset(combo)
                if self.is_connected(subset):
                    out.append(subset)
        return out

    def degree_histogram(self) -> dict[int, int]:
        """Map node degree -> count; star graphs show one high-degree hub."""
        hist: dict[int, int] = {}
        for table in self.tables:
            d = len(self._adjacent[table])
            hist[d] = hist.get(d, 0) + 1
        return hist
