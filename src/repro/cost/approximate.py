"""PWL approximation of nonlinear cost functions.

Operator cost formulas in the Cloud scenario are polynomials in the
selectivity parameters (see :mod:`repro.cost.multilinear`).  PWL-MPQ
requires PWL cost functions; following the paper ("PWL functions can
approximate arbitrary cost functions up to an arbitrary degree of detail",
Sections 1.2 and 6.1), nonlinear functions are interpolated on a simplicial
grid of the parameter box:

* Affine polynomials are converted exactly (single piece covering the box).
* Nonlinear functions are interpolated at the vertices of a Kuhn
  triangulation with ``resolution`` cells per axis; the interpolant is
  continuous across pieces and exact at all grid vertices.

A :class:`SharedPartition` caches the simplices/polytopes of a given
``(box, resolution)`` so every cost function produced by one cost model
lives on the *same* region list — enabling the LP-free aligned fast paths
in :mod:`repro.cost.pwl` and :mod:`repro.cost.vector`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from ..geometry import ConvexPolytope, Simplex, box_simplices
from .linear import LinearPiece
from .multilinear import ParamPolynomial
from .pwl import PiecewiseLinearFunction
from .vector import MultiObjectivePWL


class SharedPartition:
    """A reusable simplicial partition of an axis-aligned parameter box.

    Args:
        lows: Per-axis lower bounds of the parameter box.
        highs: Per-axis upper bounds.
        resolution: Grid cells per axis (>= 1).
    """

    def __init__(self, lows, highs, resolution: int) -> None:
        self.lows = tuple(float(v) for v in lows)
        self.highs = tuple(float(v) for v in highs)
        self.resolution = int(resolution)
        self.dim = len(self.lows)
        if self.dim == 0:
            raise ValueError("parameter space must have >= 1 dimension")
        self.simplices: list[Simplex] = box_simplices(
            self.lows, self.highs, self.resolution)
        self.regions: list[ConvexPolytope] = [s.to_polytope()
                                              for s in self.simplices]
        #: Hashable identity used as PWL partition token (set before the
        #: cell tags so they can reference it).
        self.token = ("partition", self.lows, self.highs, self.resolution)
        for index, region in enumerate(self.regions):
            region.cell_tag = (self.token, index)
        self.space: ConvexPolytope = ConvexPolytope.box(self.lows,
                                                        self.highs)

    def interpolate(self, func: Callable[[np.ndarray], float]
                    ) -> PiecewiseLinearFunction:
        """Interpolate an arbitrary scalar function onto the partition."""
        pieces = []
        for simplex, region in zip(self.simplices, self.regions):
            values = [float(func(v)) for v in simplex.vertices]
            w, b = simplex.affine_interpolant(values)
            pieces.append(LinearPiece(region=region, w=w, b=b))
        return PiecewiseLinearFunction(self.dim, pieces, self.token)

    def from_polynomial(self, poly: ParamPolynomial
                        ) -> PiecewiseLinearFunction:
        """Convert a polynomial: exact when affine, interpolated otherwise.

        Even the exact affine case is emitted on the shared partition (same
        linear function on every simplex) so downstream operations stay on
        the aligned fast path.
        """
        if poly.num_params != self.dim:
            raise ValueError("polynomial parameter count mismatch")
        if poly.is_affine():
            w, b = poly.affine_parts()
            pieces = [LinearPiece(region=r, w=w, b=b) for r in self.regions]
            return PiecewiseLinearFunction(self.dim, pieces, self.token)
        return self.interpolate(poly.evaluate)

    def vector_from_polynomials(self, polys: Mapping[str, ParamPolynomial]
                                ) -> MultiObjectivePWL:
        """Convert one polynomial per metric into a multi-objective PWL."""
        return MultiObjectivePWL({name: self.from_polynomial(p)
                                  for name, p in polys.items()})

    def zero(self) -> PiecewiseLinearFunction:
        """The zero function on the partition."""
        return self.from_polynomial(
            ParamPolynomial.constant(self.dim, 0.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SharedPartition(dim={self.dim}, "
                f"resolution={self.resolution}, "
                f"regions={len(self.regions)})")


def pwl_approximation_error(poly: ParamPolynomial,
                            approx: PiecewiseLinearFunction,
                            samples_per_axis: int = 7) -> float:
    """Max absolute error of a PWL approximation on a sampling grid.

    Useful for choosing partition resolutions and asserted on in tests:
    the interpolation error of a multilinear function shrinks quadratically
    with the grid resolution.
    """
    dim = poly.num_params
    axes = [np.linspace(lo, hi, samples_per_axis)
            for lo, hi in zip([0.0] * dim, [1.0] * dim)]
    mesh = np.meshgrid(*axes, indexing="ij")
    points = np.stack([m.reshape(-1) for m in mesh], axis=1)
    worst = 0.0
    for x in points:
        worst = max(worst, abs(poly.evaluate(x) - approx.evaluate(x)))
    return worst
