"""Multi-objective PWL cost functions and the ``Dom`` operation.

The ``Multi-Obj. PWL Cost Func.`` entity of Figure 9 composes one
single-objective PWL function per cost metric.  This module implements it
together with the second elementary operation of Algorithm 3: ``Dom(p1,
p2)`` — the set of convex polytopes covering the parameter-space region in
which one plan dominates another (better-or-equal according to *every*
metric).

Two execution paths exist, as for addition:

* **Aligned path** — both functions carry the same partition token, so the
  linear regions coincide piece-by-piece.  Within each shared region the
  per-metric dominance condition is one halfspace; the dominance region in
  that cell is the cell intersected with all ``nM`` halfspaces (one
  polytope per cell).
* **General path** — the paper's pseudo-code verbatim: per metric, iterate
  over all piece pairs, intersect their regions and add the halfspace where
  the first function is no larger; finally build all cross-metric
  intersections and keep the non-empty ones.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..errors import DimensionMismatchError
from ..geometry import (GEOMETRY_EPS, ConvexPolytope, LinearConstraint,
                        emptiness_many, emptiness_many_deferred)
from ..lp import LinearProgramSolver
from ..util import scalar_kernels_enabled
from .linear import LinearPiece
from .pwl import PiecewiseLinearFunction


class MultiObjectivePWL:
    """A vector-valued PWL cost function ``c : X -> R^{nM}``.

    Args:
        components: Mapping from metric name to the single-objective PWL
            function for that metric (the ``comps`` relationship of
            Figure 9).  All components must share the parameter-space
            dimensionality.
    """

    __slots__ = ("components", "dim", "_stack_cache")

    def __init__(self, components: Mapping[str, PiecewiseLinearFunction]
                 ) -> None:
        if not components:
            raise ValueError("need at least one cost metric")
        self.components: dict[str, PiecewiseLinearFunction] = dict(components)
        dims = {f.dim for f in self.components.values()}
        if len(dims) != 1:
            raise DimensionMismatchError(
                f"components live in different dims: {dims}")
        self.dim = dims.pop()
        self._stack_cache: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def constant(space: ConvexPolytope,
                 values: Mapping[str, float]) -> MultiObjectivePWL:
        """Constant cost vector on ``space``."""
        return MultiObjectivePWL({
            name: PiecewiseLinearFunction.constant(space, value)
            for name, value in values.items()})

    @staticmethod
    def affine(space: ConvexPolytope,
               weights: Mapping[str, Sequence[float]],
               bases: Mapping[str, float]) -> MultiObjectivePWL:
        """Affine cost vector ``w_m @ x + b_m`` per metric on ``space``."""
        if set(weights) != set(bases):
            raise ValueError("weights and bases must cover the same metrics")
        return MultiObjectivePWL({
            name: PiecewiseLinearFunction.affine(space, weights[name],
                                                 bases[name])
            for name in weights})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def metric_names(self) -> tuple[str, ...]:
        """Metric names in deterministic (sorted) order."""
        return tuple(sorted(self.components))

    def component(self, metric: str) -> PiecewiseLinearFunction:
        """Return the single-objective function for ``metric``."""
        return self.components[metric]

    def evaluate(self, x) -> dict[str, float]:
        """Evaluate all metrics at ``x``."""
        return {name: f.evaluate(x) for name, f in self.components.items()}

    def evaluate_vector(self, x) -> np.ndarray:
        """Evaluate as an array ordered by :attr:`metric_names`."""
        return np.array([self.components[m].evaluate(x)
                         for m in self.metric_names])

    def total_pieces(self) -> int:
        """Total number of linear pieces across all components."""
        return sum(f.num_pieces for f in self.components.values())

    def aligned_stack(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-metric piece coefficients as stacked arrays (cached).

        Returns ``(W, B)`` with ``W`` of shape ``(nM, nP, dim)`` and ``B``
        of shape ``(nM, nP)``, metrics ordered by :attr:`metric_names`.
        Only meaningful for functions whose components share one partition
        (equal piece counts); raises ``ValueError`` otherwise.
        """
        if self._stack_cache is not None:
            return self._stack_cache
        names = self.metric_names
        counts = {self.components[m].num_pieces for m in names}
        if len(counts) != 1:
            raise ValueError("components have differing piece counts")
        w = np.array([[np.asarray(p.w, dtype=float)
                       for p in self.components[m].pieces] for m in names])
        b = np.array([[p.b for p in self.components[m].pieces]
                      for m in names], dtype=float)
        self._stack_cache = (w, b)
        return self._stack_cache

    def same_partition(self, other: MultiObjectivePWL) -> bool:
        """``True`` when every pair of matching components is aligned."""
        if set(self.components) != set(other.components):
            return False
        for name, mine in self.components.items():
            theirs = other.components[name]
            if (mine.partition_token is None
                    or mine.partition_token != theirs.partition_token
                    or len(mine.pieces) != len(theirs.pieces)):
                return False
        return True

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def add(self, other: MultiObjectivePWL,
            solver: LinearProgramSolver | None = None,
            accumulators: Mapping[str, str] | None = None
            ) -> MultiObjectivePWL:
        """Combine with another cost function metric by metric.

        Args:
            other: Cost function with the same metric set.
            solver: Needed for unaligned partitions or max-accumulation.
            accumulators: Per-metric ``"sum"`` or ``"max"``; defaults to
                sum for every metric.
        """
        if set(self.components) != set(other.components):
            raise ValueError("metric sets differ")
        result = {}
        for name, mine in self.components.items():
            how = (accumulators or {}).get(name, "sum")
            if how == "sum":
                result[name] = mine.add(other.components[name], solver)
            elif how == "max":
                if solver is None:
                    raise ValueError("solver required for max accumulation")
                result[name] = mine.maximum(other.components[name], solver)
            else:
                raise ValueError(f"unknown accumulator {how!r}")
        return MultiObjectivePWL(result)

    # ------------------------------------------------------------------
    # Dominance (Algorithm 3, function Dom)
    # ------------------------------------------------------------------

    def dominance_polytopes(self, other: MultiObjectivePWL,
                            solver: LinearProgramSolver,
                            relax: float = 0.0) -> list[ConvexPolytope]:
        """Return convex polytopes covering ``Dom(self, other)``.

        ``Dom(p1, p2)`` is the parameter-space region where ``p1`` has
        better-or-equal cost than ``p2`` according to *every* metric
        (Section 2).  Theorem 2 guarantees the region is a convex polytope
        within each linear region; the returned list is the union over the
        linear-region partition.

        Args:
            other: The plan cost function to compare against.
            solver: LP solver (each emptiness filter counts one LP, as in
                the paper's implementation).
            relax: Approximation factor ``alpha >= 0``: computes the
                *alpha-dominance* region where
                ``c(self) <= (1 + alpha) * c(other)`` per metric.  With
                ``alpha > 0`` pruning becomes more aggressive and the
                plan set shrinks at the price of a bounded cost regret —
                the approximation-scheme idea of the paper's companion
                work (citation [31], Trummer & Koch SIGMOD 2014).
                Requires non-negative cost functions (true for all cost
                metrics in this library).
        """
        if set(self.components) != set(other.components):
            raise ValueError("metric sets differ")
        if relax < 0:
            raise ValueError("approximation factor must be >= 0")
        if self.same_partition(other):
            return self._dominance_aligned(other, solver, relax=relax)
        if scalar_kernels_enabled():
            return self._dominance_general(other, solver, relax=relax)
        return self._dominance_general_vectorized(other, solver,
                                                  relax=relax)

    def _dominance_aligned(self, other: MultiObjectivePWL,
                           solver: LinearProgramSolver,
                           relax: float = 0.0) -> list[ConvexPolytope]:
        """Aligned fast path: one candidate polytope per shared region.

        When a region carries a vertex hint (simplicial grid cells do),
        dominance is first decided at the vertices: a linear inequality
        that holds at every vertex holds on the whole cell, and one that
        fails at every vertex fails on the whole cell.  Only genuinely
        mixed cells fall back to an emptiness LP.
        """
        names = self.metric_names
        factor = 1.0 + relax
        first = self.components[names[0]]
        batch_lps = not scalar_kernels_enabled()
        polys: list[ConvexPolytope | None] = []
        undecided: list[ConvexPolytope] = []
        for idx in range(len(first.pieces)):
            region = first.pieces[idx].region
            verts = region.vertex_hint
            candidate = region
            feasible = True
            whole_cell = True
            for name in names:
                p1: LinearPiece = self.components[name].pieces[idx]
                p2: LinearPiece = other.components[name].pieces[idx]
                diff_w = np.asarray(p1.w) - factor * np.asarray(p2.w)
                diff_b = factor * p2.b - p1.b
                constraint = LinearConstraint.make(diff_w, diff_b)
                if constraint.is_infeasible_trivial():
                    feasible = False
                    break
                if constraint.is_trivial():
                    continue
                if verts is not None:
                    slack = verts @ constraint.a - constraint.b
                    if np.all(slack > 1e-10):
                        # Violated at every vertex => empty on the cell.
                        feasible = False
                        break
                    if np.all(slack <= 1e-10):
                        # Satisfied at every vertex => holds everywhere.
                        continue
                whole_cell = False
                candidate = candidate.with_constraint(constraint)
            if not feasible:
                continue
            if whole_cell:
                polys.append(region)
            elif verts is not None and candidate.contains_point(
                    verts.mean(axis=0)):
                # The cell centroid satisfies all constraints: non-empty
                # without an LP.
                polys.append(candidate)
            elif batch_lps:
                # Genuinely mixed cell: hold its slot, decide all the
                # mixed cells' emptiness LPs in one deferred pass below.
                polys.append(None)
                undecided.append(candidate)
            elif not candidate.is_empty(solver):
                polys.append(candidate)
        if undecided:
            empty = [lazy.get() for lazy in
                     emptiness_many_deferred(undecided, solver)]
            decided = iter(zip(undecided, empty))
            resolved: list[ConvexPolytope] = []
            for entry in polys:
                if entry is not None:
                    resolved.append(entry)
                    continue
                candidate, is_empty = next(decided)
                if not is_empty:
                    resolved.append(candidate)
            return resolved
        return polys

    def _dominance_general(self, other: MultiObjectivePWL,
                           solver: LinearProgramSolver,
                           relax: float = 0.0) -> list[ConvexPolytope]:
        """The paper's general ``Dom``: per-metric polytopes, then products."""
        factor = 1.0 + relax
        per_metric: list[list[ConvexPolytope]] = []
        for name in self.metric_names:
            f1 = self.components[name]
            f2 = other.components[name]
            polys_m: list[ConvexPolytope] = []
            for p1 in f1.pieces:
                for p2 in f2.pieces:
                    region = p1.region.intersect(p2.region)
                    if region.is_empty(solver):
                        continue
                    diff_w = np.asarray(p1.w) - factor * np.asarray(p2.w)
                    diff_b = factor * p2.b - p1.b
                    constraint = LinearConstraint.make(diff_w, diff_b)
                    if constraint.is_infeasible_trivial():
                        continue
                    dom = (region if constraint.is_trivial()
                           else region.with_constraint(constraint))
                    if not dom.is_empty(solver):
                        polys_m.append(dom)
            if not polys_m:
                return []  # dominated nowhere according to this metric
            per_metric.append(polys_m)
        # Combine results from different metrics (cross intersections).
        combined = per_metric[0]
        for polys_m in per_metric[1:]:
            next_combined = []
            for left in combined:
                for right in polys_m:
                    candidate = left.intersect(right)
                    if not candidate.is_empty(solver):
                        next_combined.append(candidate)
            combined = next_combined
            if not combined:
                return []
        return combined

    def _dominance_general_vectorized(self, other: MultiObjectivePWL,
                                      solver: LinearProgramSolver,
                                      relax: float = 0.0
                                      ) -> list[ConvexPolytope]:
        """NumPy form of the general ``Dom`` with batched emptiness LPs.

        Mirrors :meth:`_dominance_general` decision for decision (the
        scalar path stays available via ``REPRO_SCALAR_KERNELS=1`` and is
        what the equivalence suite compares against):

        * the per-metric dominance-constraint coefficients of all
          ``n1 * n2`` piece pairs come out of one broadcast subtraction,
          and their trivial / trivially-infeasible classification is one
          vectorized norm test instead of a :class:`LinearConstraint`
          construction per pair;
        * the piece-pair intersection emptiness checks, the dominance
          polytope emptiness checks, and each cross-metric combination
          round run as single batched LP passes.

        Constraints attached to surviving polytopes are built with
        :meth:`LinearConstraint.make` from the same difference vectors
        the scalar path uses, so the produced polytopes are identical.
        """
        factor = 1.0 + relax
        per_metric: list[list[ConvexPolytope]] = []
        for name in self.metric_names:
            f1 = self.components[name]
            f2 = other.components[name]
            n2 = len(f2.pieces)
            w1 = np.array([p.w for p in f1.pieces], dtype=float)
            b1 = np.array([p.b for p in f1.pieces], dtype=float)
            w2 = np.array([p.w for p in f2.pieces], dtype=float)
            b2 = np.array([p.b for p in f2.pieces], dtype=float)
            diff_w = w1[:, None, :] - factor * w2[None, :, :]  # (n1, n2, d)
            diff_b = factor * b2[None, :] - b1[:, None]        # (n1, n2)
            # Degenerate zero-coefficient constraints, classified exactly
            # as LinearConstraint.make + is_trivial/is_infeasible_trivial
            # would (near-zero rows keep their unnormalized rhs).
            nontrivial = np.linalg.norm(diff_w, axis=-1) > GEOMETRY_EPS
            trivial = ~nontrivial & (diff_b >= -GEOMETRY_EPS)
            infeasible_triv = ~nontrivial & (diff_b < -GEOMETRY_EPS)

            regions = [p1.region.intersect(p2.region)
                       for p1 in f1.pieces for p2 in f2.pieces]
            region_empty = emptiness_many(regions, solver)
            candidates: list[ConvexPolytope] = []
            for idx, region in enumerate(regions):
                if region_empty[idx]:
                    continue
                i, j = divmod(idx, n2)
                if infeasible_triv[i, j]:
                    continue
                if trivial[i, j]:
                    candidates.append(region)
                else:
                    candidates.append(region.with_constraint(
                        LinearConstraint.make(diff_w[i, j], diff_b[i, j])))
            dom_empty = emptiness_many(candidates, solver)
            polys_m = [dom for dom, empty in zip(candidates, dom_empty)
                       if not empty]
            if not polys_m:
                return []  # dominated nowhere according to this metric
            per_metric.append(polys_m)
        # Combine results from different metrics (cross intersections),
        # one batched emptiness pass per combination round.
        combined = per_metric[0]
        for polys_m in per_metric[1:]:
            crossed = [left.intersect(right)
                       for left in combined for right in polys_m]
            empty = emptiness_many(crossed, solver)
            combined = [poly for poly, is_empty in zip(crossed, empty)
                        if not is_empty]
            if not combined:
                return []
        return combined

    def dominates_at(self, other: MultiObjectivePWL, x,
                     tol: float = 1e-9) -> bool:
        """Pointwise dominance test at parameter vector ``x``."""
        mine = self.evaluate(x)
        theirs = other.evaluate(x)
        return all(mine[m] <= theirs[m] + tol for m in self.components)

    def strictly_dominates_at(self, other: MultiObjectivePWL, x,
                              tol: float = 1e-9) -> bool:
        """Pointwise strict dominance (dominates and differs) at ``x``."""
        mine = self.evaluate(x)
        theirs = other.evaluate(x)
        if not all(mine[m] <= theirs[m] + tol for m in self.components):
            return False
        return any(mine[m] < theirs[m] - tol for m in self.components)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{name}:{f.num_pieces}p"
                          for name, f in sorted(self.components.items()))
        return f"MultiObjectivePWL({parts})"


# ----------------------------------------------------------------------
# Vectorized batch dominance (aligned partitions)
# ----------------------------------------------------------------------

def _shared_pieces(many: Sequence[MultiObjectivePWL],
                   one: MultiObjectivePWL):
    """Validate that all functions share piece regions with vertex hints.

    Returns ``(pieces, verts)`` — the shared piece list (of the first
    metric) and the stacked vertex array of shape ``(nP, nV, dim)`` — or
    ``None`` when any precondition for the vectorized path fails.
    """
    names = one.metric_names
    first = one.components[names[0]]
    pieces = first.pieces
    verts_list = []
    for piece in pieces:
        hint = piece.region.vertex_hint
        if hint is None or (verts_list
                            and hint.shape != verts_list[0].shape):
            return None
        verts_list.append(hint)
    for cost in many:
        if not one.same_partition(cost):
            return None
        theirs = cost.components[names[0]].pieces
        for idx, piece in enumerate(pieces):
            # The aligned path only ever reads regions of the first
            # metric's pieces; identity guarantees identical output
            # polytopes (including vertex hints and cell tags).
            if theirs[idx].region is not piece.region:
                return None
    return pieces, np.stack(verts_list)


def batch_dominance_aligned(many: Sequence[MultiObjectivePWL],
                            one: MultiObjectivePWL,
                            solver: LinearProgramSolver,
                            relax: float = 0.0,
                            many_first: bool = True
                            ) -> list[list[ConvexPolytope]] | None:
    """Vectorized ``Dom`` between a batch of aligned costs and one cost.

    Computes ``Dom(many[k], one)`` for every ``k`` when ``many_first`` is
    true, else ``Dom(one, many[k])`` — the two directions RRPA's pruning
    procedure needs when inserting one new plan against all incumbents.
    The per-cell, per-metric dominance constraints of the aligned path are
    classified for the *whole batch* in one array pass over the shared
    partition's vertex hints; only genuinely mixed cells fall back to
    polytope assembly (and, rarely, an emptiness LP), exactly mirroring
    :meth:`MultiObjectivePWL._dominance_aligned` decision by decision so
    the produced polytope lists are identical to the scalar path's.

    Returns ``None`` when the batch does not satisfy the aligned-path
    preconditions (callers then fall back to pairwise ``Dom``).

    Args:
        many: Batch of cost functions, all aligned with ``one``.
        one: The single cost function compared against the whole batch.
        solver: LP solver for mixed-cell emptiness checks.
        relax: Alpha-dominance approximation factor (``>= 0``).
        many_first: Direction of the comparison (see above).
    """
    if relax < 0:
        raise ValueError("approximation factor must be >= 0")
    if not many:
        return []
    for cost in many:
        if set(cost.components) != set(one.components):
            raise ValueError("metric sets differ")
    shared = _shared_pieces(many, one)
    if shared is None:
        return None
    pieces, verts = shared
    factor = 1.0 + relax

    w_one, b_one = one.aligned_stack()                    # (m, p, d) / (m, p)
    w_many = np.stack([c.aligned_stack()[0] for c in many])  # (k, m, p, d)
    b_many = np.stack([c.aligned_stack()[1] for c in many])  # (k, m, p)
    if many_first:
        diff_w = w_many - factor * w_one[None]
        diff_b = factor * b_one[None] - b_many
    else:
        diff_w = w_one[None] - factor * w_many
        diff_b = factor * b_many - b_one[None]

    # Normalize exactly as LinearConstraint.make does.
    norms = np.linalg.norm(diff_w, axis=-1)               # (k, m, p)
    nontrivial_norm = norms > GEOMETRY_EPS
    safe = np.where(nontrivial_norm, norms, 1.0)
    a_n = diff_w / safe[..., None]
    b_n = diff_b / safe
    # Degenerate zero-coefficient constraints: full space or empty set.
    trivial = ~nontrivial_norm & (b_n >= -GEOMETRY_EPS)
    infeasible_triv = ~nontrivial_norm & (b_n < -GEOMETRY_EPS)

    # Vertex slacks of every constraint on its cell: (k, m, p, v).
    slack = np.matmul(verts, a_n[..., None])[..., 0] - b_n[..., None]
    violated_all = np.all(slack > 1e-10, axis=-1)
    holds_all = np.all(slack <= 1e-10, axis=-1)

    metric_infeasible = infeasible_triv | (nontrivial_norm & violated_all)
    metric_holds = trivial | (nontrivial_norm & ~violated_all & holds_all)
    cell_infeasible = np.any(metric_infeasible, axis=1)   # (k, p)
    cell_whole = ~cell_infeasible & np.all(
        metric_holds | metric_infeasible, axis=1)
    needs_work = ~cell_infeasible & ~cell_whole

    names = one.metric_names
    results: list[list[ConvexPolytope | None]] = []
    undecided: list[ConvexPolytope] = []
    for k in range(len(many)):
        polys: list[ConvexPolytope | None] = []
        for idx in range(len(pieces)):
            if cell_infeasible[k, idx]:
                continue
            # Identity-checked above: p1's region IS the shared region.
            region = pieces[idx].region
            if cell_whole[k, idx]:
                polys.append(region)
                continue
            if needs_work[k, idx]:
                candidate = region
                for m in range(len(names)):
                    if metric_holds[k, m, idx]:
                        continue
                    candidate = candidate.with_constraint(
                        LinearConstraint.make(diff_w[k, m, idx],
                                              diff_b[k, m, idx]))
                if candidate.contains_point(verts[idx].mean(axis=0)):
                    polys.append(candidate)
                else:
                    # Rare mixed cell: hold its slot and decide every
                    # batch member's leftover emptiness LPs in one
                    # deferred pass below.
                    polys.append(None)
                    undecided.append(candidate)
        results.append(polys)
    if undecided:
        empty = [lazy.get() for lazy in
                 emptiness_many_deferred(undecided, solver)]
        decided = iter(zip(undecided, empty))
        resolved_results: list[list[ConvexPolytope]] = []
        for polys in results:
            resolved: list[ConvexPolytope] = []
            for entry in polys:
                if entry is not None:
                    resolved.append(entry)
                    continue
                candidate, is_empty = next(decided)
                if not is_empty:
                    resolved.append(candidate)
            resolved_results.append(resolved)
        return resolved_results
    return results
