"""Cost-function substrate: linear pieces, PWL functions, metrics.

Public API:

* :class:`CostMetric` and the predefined metric sets (:data:`CLOUD_METRICS`
  for Scenario 1, :data:`APPROX_METRICS` for Scenario 2).
* :class:`LinearPiece` — one linear cost piece (Figure 9's attributes
  ``reg``/``w``/``b``).
* :class:`PiecewiseLinearFunction` — single-objective PWL cost function.
* :class:`MultiObjectivePWL` — vector-valued PWL cost function with the
  ``Dom`` dominance-region computation (Algorithm 3).
* :class:`ParamPolynomial` — exact symbolic cardinality/cost expressions.
* :class:`SharedPartition` — simplicial grid for PWL approximation with
  aligned-partition fast paths.
* :func:`accumulate_cost` — ``AccumulateCost`` of Algorithm 3.
* :func:`batch_dominance_aligned` — vectorized ``Dom`` of one cost against
  a whole batch of aligned costs (RRPA pruning hot path).
"""

from .accumulate import accumulate_cost, accumulator_map
from .approximate import SharedPartition, pwl_approximation_error
from .linear import LinearPiece
from .metrics import (APPROX_METRICS, CLOUD_METRICS, FEES, PRECISION_LOSS,
                      TIME, CostMetric, metric_names)
from .multilinear import ParamPolynomial, poly_sum
from .pwl import PiecewiseLinearFunction, pwl_sum
from .vector import MultiObjectivePWL, batch_dominance_aligned

__all__ = [
    "APPROX_METRICS",
    "CLOUD_METRICS",
    "FEES",
    "PRECISION_LOSS",
    "TIME",
    "CostMetric",
    "LinearPiece",
    "MultiObjectivePWL",
    "ParamPolynomial",
    "PiecewiseLinearFunction",
    "SharedPartition",
    "accumulate_cost",
    "accumulator_map",
    "batch_dominance_aligned",
    "metric_names",
    "poly_sum",
    "pwl_approximation_error",
    "pwl_sum",
]
