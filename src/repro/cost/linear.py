"""Linear cost-function pieces.

Figure 9 of the paper represents a single-objective PWL cost function as a
set of linear functions, each characterized by the parameter-space region
it applies to (``reg``), a weight vector (``w``) and a scalar base cost
(``b``).  :class:`LinearPiece` is exactly that record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import ConvexPolytope


@dataclass(frozen=True)
class LinearPiece:
    """One linear piece ``x -> w @ x + b`` valid on ``region``.

    Attributes:
        region: Convex polytope in parameter space where the piece applies.
        w: Weight vector (one weight per parameter; Figure 9's ``w``).
        b: Scalar base cost (Figure 9's ``b``).
    """

    region: ConvexPolytope
    w: np.ndarray
    b: float

    def __post_init__(self) -> None:
        w = np.asarray(self.w, dtype=float).reshape(-1)
        if w.shape[0] != self.region.dim:
            raise ValueError(
                f"weight dim {w.shape[0]} != region dim {self.region.dim}")
        w = w.copy()
        w.setflags(write=False)
        object.__setattr__(self, "w", w)
        object.__setattr__(self, "b", float(self.b))

    @property
    def dim(self) -> int:
        """Parameter-space dimensionality."""
        return self.region.dim

    def evaluate(self, x) -> float:
        """Evaluate ``w @ x + b`` (does not check region membership)."""
        x = np.asarray(x, dtype=float).reshape(-1)
        return float(self.w @ x + self.b)

    def applies_to(self, x) -> bool:
        """Return whether ``x`` lies in this piece's region."""
        return self.region.contains_point(x)

    def shifted(self, delta_w, delta_b: float) -> LinearPiece:
        """Return a piece on the same region with ``w + delta_w, b + delta_b``."""
        return LinearPiece(region=self.region,
                           w=np.asarray(self.w) + np.asarray(delta_w),
                           b=self.b + float(delta_b))

    def scaled(self, factor: float) -> LinearPiece:
        """Return a piece on the same region with cost multiplied by ``factor``."""
        return LinearPiece(region=self.region, w=np.asarray(self.w) * factor,
                           b=self.b * factor)

    def restricted(self, region: ConvexPolytope) -> LinearPiece:
        """Return the same linear function on a (smaller) region."""
        return LinearPiece(region=region, w=self.w, b=self.b)
