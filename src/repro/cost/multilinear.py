"""Exact polynomial expressions over the optimization parameters.

Intermediate-result cardinalities in the Cloud scenario are products of
base-table cardinalities, join selectivities, and *parameterized* predicate
selectivities.  Because every parameter models the selectivity of one
predicate attached to one base table, a cardinality is an exact
*multilinear* polynomial in the parameters (each parameter has degree at
most one).  Operator cost formulas are affine combinations of input/output
cardinalities, so plan cost functions are polynomials too.

Keeping cardinalities symbolic has two benefits over approximating early:

* PWL approximation error is paid exactly once, when the final cost
  function of an operator is interpolated onto the simplicial grid
  (:mod:`repro.cost.approximate`);
* tests can compare the PWL approximation against exact polynomial values.

The representation is a sparse monomial map ``exponents -> coefficient``
where ``exponents`` is an integer tuple of length ``num_params``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np


class ParamPolynomial:
    """A polynomial over the parameter vector ``x``.

    Args:
        num_params: Dimensionality of the parameter space.
        monomials: Mapping from exponent tuples (length ``num_params``) to
            coefficients.  Zero coefficients are dropped.
    """

    __slots__ = ("num_params", "monomials")

    def __init__(self, num_params: int,
                 monomials: Mapping[tuple[int, ...], float] | None = None
                 ) -> None:
        self.num_params = int(num_params)
        clean: dict[tuple[int, ...], float] = {}
        for exps, coeff in (monomials or {}).items():
            exps = tuple(int(e) for e in exps)
            if len(exps) != self.num_params:
                raise ValueError(
                    f"exponent tuple {exps} has wrong length "
                    f"(expected {self.num_params})")
            if any(e < 0 for e in exps):
                raise ValueError(f"negative exponent in {exps}")
            if abs(coeff) > 0.0:
                clean[exps] = clean.get(exps, 0.0) + float(coeff)
        self.monomials = {e: c for e, c in clean.items() if abs(c) > 0.0}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def constant(num_params: int, value: float) -> ParamPolynomial:
        """The constant polynomial ``value``."""
        if value == 0.0:
            return ParamPolynomial(num_params)
        return ParamPolynomial(num_params,
                               {(0,) * num_params: float(value)})

    @staticmethod
    def variable(num_params: int, index: int) -> ParamPolynomial:
        """The polynomial ``x[index]``."""
        if not 0 <= index < num_params:
            raise IndexError(f"parameter index {index} out of range")
        exps = [0] * num_params
        exps[index] = 1
        return ParamPolynomial(num_params, {tuple(exps): 1.0})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def degree(self) -> int:
        """Total degree (0 for constants and the zero polynomial)."""
        if not self.monomials:
            return 0
        return max(sum(exps) for exps in self.monomials)

    def is_affine(self) -> bool:
        """``True`` when total degree is at most one."""
        return self.degree() <= 1

    def is_multilinear(self) -> bool:
        """``True`` when every parameter has degree at most one."""
        return all(max(exps, default=0) <= 1 for exps in self.monomials)

    def affine_parts(self) -> tuple[np.ndarray, float]:
        """Return ``(w, b)`` with ``self(x) = w @ x + b``.

        Raises:
            ValueError: If the polynomial is not affine.
        """
        if not self.is_affine():
            raise ValueError("polynomial is not affine")
        w = np.zeros(self.num_params)
        b = 0.0
        for exps, coeff in self.monomials.items():
            total = sum(exps)
            if total == 0:
                b = coeff
            else:
                w[exps.index(1)] = coeff
        return w, b

    def lifted(self, num_params: int) -> ParamPolynomial:
        """Re-express the polynomial over a larger parameter vector.

        The added trailing parameters have exponent zero in every
        monomial, so values are unchanged; used to embed parameter-free
        (or lower-dimensional) cost expressions into the optimizer's
        parameter space.

        Raises:
            ValueError: When ``num_params`` is smaller than the current
                parameter count.
        """
        if num_params < self.num_params:
            raise ValueError("cannot lift to fewer parameters")
        if num_params == self.num_params:
            return self
        pad = (0,) * (num_params - self.num_params)
        return ParamPolynomial(num_params,
                               {exps + pad: coeff
                                for exps, coeff in self.monomials.items()})

    def evaluate(self, x) -> float:
        """Evaluate the polynomial at parameter vector ``x``."""
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape[0] != self.num_params:
            raise ValueError(
                f"point has dim {x.shape[0]}, expected {self.num_params}")
        total = 0.0
        for exps, coeff in self.monomials.items():
            term = coeff
            for xi, e in zip(x, exps):
                if e:
                    term *= xi ** e
            total += term
        return total

    __call__ = evaluate

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _check(self, other: ParamPolynomial) -> None:
        if self.num_params != other.num_params:
            raise ValueError("mixing polynomials over different parameters")

    def __add__(self, other) -> ParamPolynomial:
        if isinstance(other, (int, float)):
            other = ParamPolynomial.constant(self.num_params, float(other))
        self._check(other)
        result = dict(self.monomials)
        for exps, coeff in other.monomials.items():
            result[exps] = result.get(exps, 0.0) + coeff
        return ParamPolynomial(self.num_params, result)

    __radd__ = __add__

    def __neg__(self) -> ParamPolynomial:
        return ParamPolynomial(
            self.num_params, {e: -c for e, c in self.monomials.items()})

    def __sub__(self, other) -> ParamPolynomial:
        if isinstance(other, (int, float)):
            other = ParamPolynomial.constant(self.num_params, float(other))
        return self + (-other)

    def __rsub__(self, other) -> ParamPolynomial:
        return (-self) + other

    def __mul__(self, other) -> ParamPolynomial:
        if isinstance(other, (int, float)):
            return ParamPolynomial(
                self.num_params,
                {e: c * float(other) for e, c in self.monomials.items()})
        self._check(other)
        result: dict[tuple[int, ...], float] = {}
        for e1, c1 in self.monomials.items():
            for e2, c2 in other.monomials.items():
                exps = tuple(a + b for a, b in zip(e1, e2))
                result[exps] = result.get(exps, 0.0) + c1 * c2
        return ParamPolynomial(self.num_params, result)

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        if not isinstance(other, ParamPolynomial):
            return NotImplemented
        return (self.num_params == other.num_params
                and self.monomials == other.monomials)

    def __hash__(self) -> int:
        return hash((self.num_params,
                     tuple(sorted(self.monomials.items()))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.monomials:
            return "Poly(0)"
        terms = []
        for exps, coeff in sorted(self.monomials.items()):
            factors = [f"{coeff:.4g}"]
            factors.extend(f"x{i}^{e}" if e > 1 else f"x{i}"
                           for i, e in enumerate(exps) if e)
            terms.append("*".join(factors))
        return "Poly(" + " + ".join(terms) + ")"


def poly_sum(polys: Iterable[ParamPolynomial],
             num_params: int) -> ParamPolynomial:
    """Sum an iterable of polynomials (zero polynomial for empty input)."""
    total = ParamPolynomial.constant(num_params, 0.0)
    for p in polys:
        total = total + p
    return total
