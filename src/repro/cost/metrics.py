"""Cost metrics for multi-objective optimization.

A cost metric is anything a query plan can be charged for: execution time,
monetary fees, result-precision loss, energy, ...  The paper only requires
that (a) lower values are better and (b) the Principle of Optimality holds
for each metric (Section 5.2).  Quality metrics where higher is better are
modeled by their loss (e.g. ``precision loss = 1 - precision``), exactly as
prescribed in Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostMetric:
    """A single cost metric.

    Attributes:
        name: Unique identifier, e.g. ``"time"``.
        unit: Human-readable unit, e.g. ``"hours"`` or ``"USD"``.
        description: One-line explanation.
        accumulator: How a plan's metric value combines its sub-plans'
            values: ``"sum"`` (sequential execution / additive fees) or
            ``"max"`` (parallel branches).  Section 6.2 notes the
            accumulation functions minimum/maximum/weighted-sum keep PWL
            functions PWL.
    """

    name: str
    unit: str = ""
    description: str = ""
    accumulator: str = "sum"

    def __post_init__(self) -> None:
        if self.accumulator not in ("sum", "max"):
            raise ValueError(
                f"unsupported accumulator: {self.accumulator!r}")


#: Scenario 1 metrics — Cloud execution time and monetary fees.
TIME = CostMetric(name="time", unit="hours",
                  description="wall-clock query execution time")
FEES = CostMetric(name="fees", unit="USD",
                  description="monetary execution fees (proportional to "
                              "total work across cluster nodes)")

#: Scenario 2 metric — result precision loss in approximate processing.
PRECISION_LOSS = CostMetric(
    name="precision_loss", unit="",
    description="1 - result precision for approximate query processing",
    accumulator="max")

#: The metric set used throughout the paper's evaluation (Section 7).
CLOUD_METRICS = (TIME, FEES)

#: The metric set of Scenario 2 (embedded approximate processing).
APPROX_METRICS = (TIME, PRECISION_LOSS)


def metric_names(metrics) -> tuple[str, ...]:
    """Return the names of a metric sequence, validating uniqueness."""
    names = tuple(m.name for m in metrics)
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate metric names in {names}")
    return names
