"""Single-objective piecewise-linear cost functions.

A :class:`PiecewiseLinearFunction` is a set of :class:`LinearPiece` objects
whose regions partition (a superset of) the parameter space — the
``Single-Obj. PWL Cost Func.`` entity of Figure 9.  The elementary
operations of Algorithm 3 are implemented here:

* **Addition** (used by ``AccumulateCost``): pairwise intersection of the
  operand pieces' regions; weight vectors and base costs add within each
  non-empty intersection (Figure 11).
* **Maximum / minimum** (the other accumulation functions mentioned in
  Section 6.1): region intersections are further split along the hyperplane
  where the two linear functions cross.
* **Dominance-region computation** is in :mod:`repro.cost.vector` because
  it involves all metrics at once.

Functions built from the same *shared partition* (cost models emit all
operator costs on one simplicial grid) carry a ``partition_token``; adding
two functions with the same token skips the quadratic region-intersection
work and all its LPs.  This fast path changes nothing semantically — it is
the special case where all intersections are exact region matches.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

import numpy as np

from ..errors import DimensionMismatchError, EmptyRegionError
from ..geometry import (ConvexPolytope, LinearConstraint,
                        emptiness_many_deferred)
from ..lp import LinearProgramSolver
from ..util import deferred_lp_enabled, scalar_kernels_enabled
from .linear import LinearPiece


class PiecewiseLinearFunction:
    """A PWL function represented by linear pieces on convex regions.

    Args:
        dim: Parameter-space dimensionality.
        pieces: The linear pieces.  Their regions are expected to have
            pairwise disjoint interiors and jointly cover the domain of
            interest; this is guaranteed by the constructors used in the
            library and checked (probabilistically) by the test suite.
        partition_token: Hashable identity of the region partition the
            pieces live on, or ``None``.  Two functions with equal tokens
            are guaranteed to have identical region lists (same order).
    """

    __slots__ = ("dim", "pieces", "partition_token")

    def __init__(self, dim: int, pieces: Sequence[LinearPiece],
                 partition_token=None) -> None:
        self.dim = int(dim)
        pieces = tuple(pieces)
        for piece in pieces:
            if piece.dim != self.dim:
                raise DimensionMismatchError(
                    f"piece dim {piece.dim} != function dim {self.dim}")
        if not pieces:
            raise ValueError("a PWL function needs at least one piece")
        self.pieces = pieces
        self.partition_token = partition_token

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def constant(space: ConvexPolytope, value: float,
                 partition_token=None) -> PiecewiseLinearFunction:
        """The constant function ``value`` on ``space``."""
        piece = LinearPiece(region=space, w=np.zeros(space.dim), b=value)
        return PiecewiseLinearFunction(space.dim, [piece], partition_token)

    @staticmethod
    def affine(space: ConvexPolytope, w, b: float,
               partition_token=None) -> PiecewiseLinearFunction:
        """The affine function ``w @ x + b`` on ``space``."""
        piece = LinearPiece(region=space, w=np.asarray(w, dtype=float), b=b)
        return PiecewiseLinearFunction(space.dim, [piece], partition_token)

    @staticmethod
    def from_values_on_partition(regions: Sequence[ConvexPolytope],
                                 weights: Sequence[np.ndarray],
                                 bases: Sequence[float],
                                 partition_token=None
                                 ) -> PiecewiseLinearFunction:
        """Assemble a PWL function from parallel region/weight/base lists."""
        if not (len(regions) == len(weights) == len(bases)):
            raise ValueError("regions, weights and bases lengths differ")
        pieces = [LinearPiece(region=r, w=w, b=b)
                  for r, w, b in zip(regions, weights, bases)]
        return PiecewiseLinearFunction(regions[0].dim, pieces,
                                       partition_token)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    @property
    def num_pieces(self) -> int:
        """Number of linear pieces."""
        return len(self.pieces)

    def piece_at(self, x) -> LinearPiece:
        """Return the first piece whose region contains ``x``.

        Raises:
            EmptyRegionError: If no piece region contains ``x``.
        """
        for piece in self.pieces:
            if piece.applies_to(x):
                return piece
        raise EmptyRegionError(
            f"point {np.asarray(x)} is outside the function's domain")

    def evaluate(self, x) -> float:
        """Evaluate the PWL function at ``x``."""
        return self.piece_at(x).evaluate(x)

    __call__ = evaluate

    # ------------------------------------------------------------------
    # Arithmetic (Algorithm 3 building blocks)
    # ------------------------------------------------------------------

    def _same_partition(self, other: PiecewiseLinearFunction) -> bool:
        return (self.partition_token is not None
                and self.partition_token == other.partition_token
                and len(self.pieces) == len(other.pieces))

    def add(self, other: PiecewiseLinearFunction,
            solver: LinearProgramSolver | None = None
            ) -> PiecewiseLinearFunction:
        """Pointwise sum (the core of ``AccumulateCost``, Algorithm 3).

        On the shared-partition fast path no LP is solved; otherwise each
        pair of piece regions is intersected and pairs with empty
        intersections are dropped (one emptiness LP each, mirroring the
        "check if intersection is empty" step in the pseudo-code).  The
        general path sums the coefficient arrays of all piece pairs in
        one NumPy pass and decides the pairwise emptiness LPs in one
        batch (``REPRO_SCALAR_KERNELS=1`` selects the equivalent
        per-piece-pair loop instead; the results are bit-identical).

        Args:
            other: The function to add.
            solver: Required for the general path; unused on the fast path.
        """
        if other.dim != self.dim:
            raise DimensionMismatchError("adding functions of mixed dims")
        if self._same_partition(other):
            pieces = [p1.shifted(p2.w, p2.b)
                      for p1, p2 in zip(self.pieces, other.pieces)]
            return PiecewiseLinearFunction(self.dim, pieces,
                                           self.partition_token)
        if solver is None:
            raise ValueError("solver required for unaligned PWL addition")
        if not scalar_kernels_enabled():
            return self._add_general_vectorized(other, solver)
        pieces = []
        for p1 in self.pieces:
            for p2 in other.pieces:
                region = p1.region.intersect(p2.region)
                if region.is_empty(solver):
                    continue
                pieces.append(LinearPiece(region=region,
                                          w=np.asarray(p1.w) + p2.w,
                                          b=p1.b + p2.b))
        if not pieces:
            raise EmptyRegionError("sum has no non-empty piece region")
        return PiecewiseLinearFunction(self.dim, pieces)

    def _add_general_vectorized(self, other: PiecewiseLinearFunction,
                                solver: LinearProgramSolver
                                ) -> PiecewiseLinearFunction:
        """Unaligned addition with NumPy coefficient sums and batched LPs.

        Mirrors the scalar general path of :meth:`add` pair for pair: the
        summed weight vectors and base costs of all ``n1 * n2`` piece
        pairs come out of one broadcast addition (bit-identical to the
        per-pair float additions), and the pairwise intersection
        emptiness checks are decided by one batched LP pass instead of
        ``n1 * n2`` sequential solver calls.
        """
        n2 = len(other.pieces)
        w_sum = (np.array([p.w for p in self.pieces])[:, None, :]
                 + np.array([p.w for p in other.pieces])[None, :, :])
        b_sum = (np.array([p.b for p in self.pieces])[:, None]
                 + np.array([p.b for p in other.pieces])[None, :])
        regions = [p1.region.intersect(p2.region)
                   for p1 in self.pieces for p2 in other.pieces]
        # One deferred pass: the whole pair grid enqueues before the
        # first answer is demanded, so these LPs co-flush with anything
        # already pending in the queue (eager dispatch degrades to the
        # plain batched helper).
        empty = [lazy.get()
                 for lazy in emptiness_many_deferred(regions, solver)]
        pieces = []
        for idx, region in enumerate(regions):
            if empty[idx]:
                continue
            i, j = divmod(idx, n2)
            pieces.append(LinearPiece(region=region, w=w_sum[i, j],
                                      b=b_sum[i, j]))
        if not pieces:
            raise EmptyRegionError("sum has no non-empty piece region")
        return PiecewiseLinearFunction(self.dim, pieces)

    def add_constant(self, value: float) -> PiecewiseLinearFunction:
        """Return this function shifted by a constant."""
        zero = np.zeros(self.dim)
        pieces = [p.shifted(zero, value) for p in self.pieces]
        return PiecewiseLinearFunction(self.dim, pieces,
                                       self.partition_token)

    def scale(self, factor: float) -> PiecewiseLinearFunction:
        """Return this function multiplied by a non-negative constant.

        Raises:
            ValueError: For negative factors (would flip the dominance
                direction and break cost-metric semantics).
        """
        if factor < 0:
            raise ValueError("cost functions cannot be scaled negatively")
        pieces = [p.scaled(factor) for p in self.pieces]
        return PiecewiseLinearFunction(self.dim, pieces,
                                       self.partition_token)

    def _aligned_extremum(self, other: PiecewiseLinearFunction,
                          take_max: bool
                          ) -> "PiecewiseLinearFunction | None":
        """Try the aligned fast path for max/min.

        On a shared partition, a piece pair whose difference has a uniform
        sign across the piece (decidable at the simplex vertices, since a
        linear function attains its extrema there) resolves to one of the
        two pieces without splitting.  Returns ``None`` when any piece
        pair genuinely crosses inside its region, in which case the
        caller falls back to the general splitting path.
        """
        if not self._same_partition(other):
            return None
        pieces: list[LinearPiece] = []
        for p1, p2 in zip(self.pieces, other.pieces):
            verts = p1.region.vertex_hint
            if verts is None:
                return None
            diff = verts @ (np.asarray(p1.w) - np.asarray(p2.w)) + (
                p1.b - p2.b)
            if np.all(diff >= -1e-12):
                pieces.append(p1 if take_max else p2)
            elif np.all(diff <= 1e-12):
                pieces.append(p2 if take_max else p1)
            else:
                return None  # genuine crossing inside this piece
        return PiecewiseLinearFunction(self.dim, pieces,
                                       self.partition_token)

    def _combine_extremum(self, other: PiecewiseLinearFunction,
                          solver: LinearProgramSolver,
                          take_max: bool) -> PiecewiseLinearFunction:
        """Piecewise max/min: split each region overlap at the crossing plane.

        The general path decides its emptiness LPs (overlap feasibility
        and the two crossing-split halves) in batched
        :func:`~repro.geometry.emptiness_many` passes rather than one
        Python solver call per piece pair; ``REPRO_SCALAR_KERNELS=1``
        selects the equivalent per-pair loop (bit-identical results).
        """
        if other.dim != self.dim:
            raise DimensionMismatchError("combining functions of mixed dims")
        aligned = self._aligned_extremum(other, take_max)
        if aligned is not None:
            return aligned
        if not scalar_kernels_enabled():
            return self._combine_extremum_vectorized(other, solver,
                                                     take_max)
        pieces: list[LinearPiece] = []
        for p1 in self.pieces:
            for p2 in other.pieces:
                overlap = p1.region.intersect(p2.region)
                if overlap.is_empty(solver):
                    continue
                diff_w = np.asarray(p1.w) - np.asarray(p2.w)
                diff_b = p2.b - p1.b
                # Region where p1 <= p2: diff_w @ x <= diff_b.
                p1_le = overlap.with_constraint(
                    LinearConstraint.make(diff_w, diff_b))
                p2_le = overlap.with_constraint(
                    LinearConstraint.make(-diff_w, -diff_b))
                winner_on_p1le = p2 if take_max else p1
                winner_on_p2le = p1 if take_max else p2
                if not p1_le.is_empty(solver):
                    pieces.append(winner_on_p1le.restricted(p1_le))
                if not p2_le.is_empty(solver):
                    pieces.append(winner_on_p2le.restricted(p2_le))
        if not pieces:
            raise EmptyRegionError("extremum has no non-empty piece region")
        return PiecewiseLinearFunction(self.dim, pieces)

    def _combine_extremum_vectorized(
            self, other: PiecewiseLinearFunction,
            solver: LinearProgramSolver,
            take_max: bool) -> PiecewiseLinearFunction:
        """Batched general-path max/min, mirroring the scalar loop.

        Round 1 batches the overlap-emptiness LPs of all piece pairs;
        round 2 batches the emptiness LPs of the two crossing-split
        halves of every surviving overlap.  Pieces are appended in the
        scalar loop's order (pair for pair, ``p1 <= p2`` half first), so
        the resulting function is bit-identical.
        """
        pairs = [(p1, p2) for p1 in self.pieces for p2 in other.pieces]
        overlaps = [p1.region.intersect(p2.region) for p1, p2 in pairs]
        overlap_empty = [lazy.get() for lazy in
                         emptiness_many_deferred(overlaps, solver)]
        halves: list[ConvexPolytope] = []
        survivors: list[tuple[LinearPiece, LinearPiece]] = []
        for (p1, p2), overlap, empty in zip(pairs, overlaps,
                                            overlap_empty):
            if empty:
                continue
            diff_w = np.asarray(p1.w) - np.asarray(p2.w)
            diff_b = p2.b - p1.b
            # Region where p1 <= p2: diff_w @ x <= diff_b.
            halves.append(overlap.with_constraint(
                LinearConstraint.make(diff_w, diff_b)))
            halves.append(overlap.with_constraint(
                LinearConstraint.make(-diff_w, -diff_b)))
            survivors.append((p1, p2))
        half_empty = [lazy.get() for lazy in
                      emptiness_many_deferred(halves, solver)]
        pieces: list[LinearPiece] = []
        for pair_index, (p1, p2) in enumerate(survivors):
            p1_le, p2_le = halves[2 * pair_index:2 * pair_index + 2]
            winner_on_p1le = p2 if take_max else p1
            winner_on_p2le = p1 if take_max else p2
            if not half_empty[2 * pair_index]:
                pieces.append(winner_on_p1le.restricted(p1_le))
            if not half_empty[2 * pair_index + 1]:
                pieces.append(winner_on_p2le.restricted(p2_le))
        if not pieces:
            raise EmptyRegionError("extremum has no non-empty piece region")
        return PiecewiseLinearFunction(self.dim, pieces)

    def maximum(self, other: PiecewiseLinearFunction,
                solver: LinearProgramSolver) -> PiecewiseLinearFunction:
        """Pointwise maximum (accumulation for parallel branches)."""
        return self._combine_extremum(other, solver, take_max=True)

    def minimum(self, other: PiecewiseLinearFunction,
                solver: LinearProgramSolver) -> PiecewiseLinearFunction:
        """Pointwise minimum."""
        return self._combine_extremum(other, solver, take_max=False)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def bounds_on(self, region: ConvexPolytope,
                  solver: LinearProgramSolver) -> tuple[float, float]:
        """Return ``(min, max)`` of the function over ``region``.

        Only pieces whose region intersects ``region`` contribute.  The
        per-piece overlap emptiness checks and min/max objective LPs run
        as two batched :meth:`~repro.lp.LinearProgramSolver.solve_many`
        passes; ``REPRO_SCALAR_KERNELS=1`` selects the equivalent
        per-piece loop (bit-identical results).

        Raises:
            EmptyRegionError: When no piece region intersects ``region``.
        """
        overlaps = [piece.region.intersect(region)
                    for piece in self.pieces]
        if scalar_kernels_enabled():
            empty = [overlap.is_empty(solver) for overlap in overlaps]
        else:
            empty = [lazy.get() for lazy in
                     emptiness_many_deferred(overlaps, solver)]
        live = [(piece, overlap)
                for piece, overlap, is_empty in zip(self.pieces, overlaps,
                                                    empty)
                if not is_empty]
        if not live:
            raise EmptyRegionError("function has no piece on the region")
        if scalar_kernels_enabled():
            results = []
            for piece, overlap in live:
                results.append(solver.solve(piece.w, overlap._a,
                                            overlap._b, purpose="bounds"))
                results.append(solver.solve(-np.asarray(piece.w),
                                            overlap._a, overlap._b,
                                            purpose="bounds"))
        else:
            problems = []
            for piece, overlap in live:
                problems.append((np.asarray(piece.w, dtype=float),
                                 overlap._a, overlap._b, None))
                problems.append((-np.asarray(piece.w, dtype=float),
                                 overlap._a, overlap._b, None))
            if deferred_lp_enabled():
                queue = solver.deferred_queue()
                futures = [queue.enqueue(*problem, purpose="bounds")
                           for problem in problems]
                results = [future.result() for future in futures]
            else:
                results = solver.solve_many(problems, purpose="bounds")
        lo, hi = np.inf, -np.inf
        bounded = False
        for index, (piece, __) in enumerate(live):
            res_min, res_max = results[2 * index:2 * index + 2]
            if res_min.is_optimal:
                lo = min(lo, res_min.objective + piece.b)
                bounded = True
            if res_max.is_optimal:
                hi = max(hi, -res_max.objective + piece.b)
                bounded = True
        if not bounded:
            # Overlaps exist but no LP was optimal (e.g. an unbounded
            # region in both objective directions): (inf, -inf) is not a
            # usable interval.
            raise EmptyRegionError(
                "function has no bounded piece on the region")
        return float(lo), float(hi)

    def map_pieces(self, fn: Callable[[LinearPiece], LinearPiece]
                   ) -> PiecewiseLinearFunction:
        """Apply ``fn`` to every piece, keeping the partition token."""
        return PiecewiseLinearFunction(self.dim,
                                       [fn(p) for p in self.pieces],
                                       self.partition_token)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PWL(dim={self.dim}, pieces={len(self.pieces)}, "
                f"partition={self.partition_token!r})")


def pwl_sum(functions: Iterable[PiecewiseLinearFunction],
            solver: LinearProgramSolver | None = None
            ) -> PiecewiseLinearFunction:
    """Sum several PWL functions left to right."""
    functions = list(functions)
    if not functions:
        raise ValueError("pwl_sum of no functions")
    total = functions[0]
    for f in functions[1:]:
        total = total.add(f, solver)
    return total
