"""Cost accumulation for combined plans (``AccumulateCost``, Algorithm 3).

When two sub-plans are combined by a join operator, the new plan's cost is
the accumulation of both sub-plan costs plus the operator's own cost.  The
paper's pseudo-code sums weight vectors and base costs within intersected
linear regions; footnote 1 notes the general two-step form used here —
first accumulate the sub-plan costs, then add the join cost.

Accumulation honours each metric's accumulator (``sum`` for sequential
work/fees, ``max`` for metrics like precision loss where the worst branch
dominates), per Section 6.2's remark that minimum, maximum and weighted sum
all preserve piecewise linearity.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..lp import LinearProgramSolver
from .metrics import CostMetric
from .vector import MultiObjectivePWL


def accumulator_map(metrics: Sequence[CostMetric]) -> dict[str, str]:
    """Return the per-metric accumulator mapping for a metric sequence."""
    return {m.name: m.accumulator for m in metrics}


def accumulate_cost(operator_cost: MultiObjectivePWL,
                    sub_costs: Sequence[MultiObjectivePWL],
                    solver: LinearProgramSolver,
                    accumulators: Mapping[str, str] | None = None
                    ) -> MultiObjectivePWL:
    """Accumulate sub-plan costs and the join/scan operator's own cost.

    Args:
        operator_cost: Cost of executing the combining operator itself
            (``o.w`` / ``o.b`` in the pseudo-code, generalized to PWL).
        sub_costs: Costs of the sub-plans (0, 1 or 2 of them).
        solver: LP solver for unaligned-partition paths.
        accumulators: Per-metric ``"sum"`` / ``"max"``; defaults to sum.

    Returns:
        The combined multi-objective PWL cost function.
    """
    total = operator_cost
    for sub in sub_costs:
        total = total.add(sub, solver, accumulators=accumulators)
    return total
