"""repro.api — the session-level front door for all optimization.

One import gives a serving process everything it needs::

    from repro.api import OptimizerSession

    with OptimizerSession("cloud", workers=4) as session:
        # Deterministic batch (input order), like the legacy engine:
        items = session.map(queries)
        # Streaming: results as they finish.
        for item in session.as_completed(more_queries):
            handle(item)
        # Async: one query, one future.
        future = session.submit(query)

The session owns a persistent worker pool (spawned lazily, reused across
calls, closed with the session), session-scoped caches (warm-start plan
sets and the LP-result memo, shipped to workers), and resolves cost-model
workloads through the scenario registry — ``"cloud"`` and ``"approx"``
are built in, and :func:`register_scenario` adds new ones in one call.

Anytime optimization rides on the same session::

    # Best guaranteed plan set within the budget (serial or pooled):
    item = session.optimize(query, precision=0.0,
                            budget=Budget(seconds=0.5))
    item.alpha, item.guarantee   # achieved rung + (1+alpha)^n bound
    # Streaming refinement over a precision ladder:
    for event in session.optimize_iter(
            query, precision_ladder=[0.5, 0.2, 0.05, 0.0]):
        if event.kind == "rung_completed":
            serve(event.plan_set)  # valid within event.guarantee

See :mod:`repro.core.run` for the underlying resumable
:class:`OptimizationRun` engine.

To serve sessions over the network, the :mod:`repro.serve` gateway
shards them behind an HTTP front end with tenant budgets, signature
routing and live NDJSON progress streams::

    from repro.api import GatewayClient, GatewayConfig, launch_gateway

    with launch_gateway(GatewayConfig(shards=2)) as handle:
        client = GatewayClient(handle.host, handle.port)
        response = client.optimize(query, tenant="team-a",
                                   deadline_seconds=2.0)

Plan sets survive process restarts through the :class:`PlanSetStore`
persistent tier — a single SQLite file shared by every session or
gateway shard pointed at it::

    from repro.api import OptimizerSession, PlanSetStore, WarmStartCache

    store = PlanSetStore("plans.db")
    with OptimizerSession("cloud",
                          cache=WarmStartCache(store=store)) as session:
        session.optimize(query)   # miss → optimize → persisted
    # next process: exact hit, or near-miss seeding of a similar query

For one-off scripts, :func:`optimize_query` optimizes a single query
under a named scenario without session ceremony.
"""

from __future__ import annotations

from .core import (DEFAULT_PRECISION_LADDER, Budget, OptimizationResult,
                   OptimizationRun, ProgressEvent, PWLRRPAOptions,
                   StoredPlanSet, decode_plan_set, encode_plan_set,
                   guarantee_bound, ladder_to)
from .faults import InjectedFault
from .query import Query
from .serve import (GatewayClient, GatewayConfig, GatewayHandle,
                    ServingGateway, StreamInterrupted)
from .serve import launch as launch_gateway
from .service.cache import WarmStartCache
from .service.registry import (Scenario, ScenarioRegistry,
                               available_scenarios, default_registry,
                               get_scenario, register_scenario)
from .service.session import STATUSES, BatchItem, OptimizerSession
from .service.signature import (family_digest, query_signature,
                                signature_document, signature_features,
                                statistics_digest)
from .store import PlanSetStore, StoreCounters

__all__ = [
    "Budget",
    "DEFAULT_PRECISION_LADDER",
    "STATUSES",
    "BatchItem",
    "GatewayClient",
    "GatewayConfig",
    "GatewayHandle",
    "InjectedFault",
    "OptimizationRun",
    "OptimizerSession",
    "PWLRRPAOptions",
    "PlanSetStore",
    "ProgressEvent",
    "Scenario",
    "ScenarioRegistry",
    "ServingGateway",
    "StoreCounters",
    "StoredPlanSet",
    "StreamInterrupted",
    "WarmStartCache",
    "available_scenarios",
    "decode_plan_set",
    "default_registry",
    "encode_plan_set",
    "family_digest",
    "get_scenario",
    "guarantee_bound",
    "ladder_to",
    "launch_gateway",
    "optimize_query",
    "query_signature",
    "register_scenario",
    "signature_document",
    "signature_features",
    "statistics_digest",
]


def optimize_query(query: Query, scenario: str = "cloud", *,
                   resolution: int = 2,
                   options: PWLRRPAOptions | None = None
                   ) -> OptimizationResult:
    """Optimize one query under a named scenario (no session, no pool).

    This is the registry-routed replacement for the deprecated
    ``optimize_cloud_query``; ``optimize_query(q)`` returns bit-identical
    results to it.

    Args:
        query: The query to optimize.
        scenario: Registered scenario name (``"cloud"``, ``"approx"``,
            or a custom registration).
        resolution: PWL grid resolution of the cost model.
        options: Backend options.
    """
    return get_scenario(scenario).optimize(query, resolution=resolution,
                                           options=options)
