"""Executable constructions of the paper's Section 4 counter-examples.

Table 1 contrasts three "guiding principles" that hold for single-metric
parametric query optimization (S1–S3, proven by Ganguly) with their
failure in the multi-objective case (M1–M3).  The paper proves M1–M3 via
the counter-examples of Figures 4, 5 and 6; this module constructs those
exact instances as cost functions so the statements can be *checked by
code* rather than by inspection (see ``tests/test_analysis.py`` and
``benchmarks/bench_analysis.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cost import MultiObjectivePWL, PiecewiseLinearFunction
from ..cost.linear import LinearPiece
from ..geometry import ConvexPolytope


def _pwl_from_breakpoints(space: ConvexPolytope,
                          breakpoints: list[tuple[float, float]]
                          ) -> PiecewiseLinearFunction:
    """1-D PWL function interpolating ``(x, value)`` breakpoints."""
    pieces = []
    for (x0, y0), (x1, y1) in zip(breakpoints, breakpoints[1:]):
        slope = (y1 - y0) / (x1 - x0)
        region = ConvexPolytope.box([x0], [x1])
        pieces.append(LinearPiece(region=region,
                                  w=np.array([slope]),
                                  b=y0 - slope * x0))
    return PiecewiseLinearFunction(1, pieces)


@dataclass(frozen=True)
class CounterExample:
    """A named set of plan cost functions over a common parameter space.

    Attributes:
        name: Which figure of the paper it reproduces.
        space: The parameter space.
        plans: Mapping plan label -> multi-objective cost function.
        statement: The Table 1 statement the example proves.
    """

    name: str
    space: ConvexPolytope
    plans: dict[str, MultiObjectivePWL]
    statement: str


def figure4() -> CounterExample:
    """Figure 4: Pareto-optimality at two points does not imply in between.

    One parameter on ``[0, 3]``, two metrics, two plans.  Plan 1 has
    constant cost 1 on both metrics.  Plan 2's metric-1 cost dips below 1
    only on ``[0, 1)`` and its metric-2 cost dips below 1 only on
    ``(2, 3]``; in the middle range plan 2 is strictly worse on both
    metrics, so it is Pareto-optimal at parameter values 0 and 3 but not
    at 1.5 — proving statements M1 and M3a.
    """
    space = ConvexPolytope.box([0.0], [3.0])
    plan1 = MultiObjectivePWL({
        "m1": PiecewiseLinearFunction.constant(space, 1.0),
        "m2": PiecewiseLinearFunction.constant(space, 1.0),
    })
    plan2 = MultiObjectivePWL({
        # Below 1 before x=1, above 1 afterwards.
        "m1": _pwl_from_breakpoints(space,
                                    [(0.0, 0.0), (1.0, 1.0), (3.0, 2.0)]),
        # Above 1 before x=2, below 1 afterwards.
        "m2": _pwl_from_breakpoints(space,
                                    [(0.0, 2.0), (2.0, 1.0), (3.0, 0.0)]),
    })
    return CounterExample(
        name="figure4", space=space,
        plans={"plan1": plan1, "plan2": plan2},
        statement="M1/M3a: Pareto-optimal at two points but not between")


def figure5() -> CounterExample:
    """Figure 5: Pareto regions need not be convex (statement M2).

    Two parameters on ``[0, 2]^2``.  Plan 1's cost is the identity
    ``(x1, x2)``; plan 2's cost is the constant ``(1, 1)``.  Plan 1
    dominates plan 2 exactly on the square ``[0,1]^2``; plan 2's Pareto
    region is the complement — connected but clearly non-convex.
    """
    space = ConvexPolytope.box([0.0, 0.0], [2.0, 2.0])
    plan1 = MultiObjectivePWL({
        "m1": PiecewiseLinearFunction.affine(space, [1.0, 0.0], 0.0),
        "m2": PiecewiseLinearFunction.affine(space, [0.0, 1.0], 0.0),
    })
    plan2 = MultiObjectivePWL({
        "m1": PiecewiseLinearFunction.constant(space, 1.0),
        "m2": PiecewiseLinearFunction.constant(space, 1.0),
    })
    return CounterExample(
        name="figure5", space=space,
        plans={"plan1": plan1, "plan2": plan2},
        statement="M2: Pareto regions are not necessarily convex")


def figure6() -> CounterExample:
    """Figure 6: a plan can be Pareto-optimal only *inside* a polytope.

    One parameter on ``[0, 2]``, two metrics, three plans.  Plans 1 and 2
    are Pareto-optimal everywhere; plan 3 is Pareto-optimal exactly on an
    open interval strictly inside the parameter range (here ``(5/6, 7/6)``;
    the paper's instance uses ``(0.5, 1.5)``) and at neither boundary —
    proving statement M3b (plans can be Pareto-optimal within a polytope
    while not being Pareto-optimal at its vertices).
    """
    space = ConvexPolytope.box([0.0], [2.0])
    plan1 = MultiObjectivePWL({
        "m1": PiecewiseLinearFunction.constant(space, 0.5),
        "m2": PiecewiseLinearFunction.constant(space, 2.0),
    })
    plan2 = MultiObjectivePWL({
        "m1": PiecewiseLinearFunction.constant(space, 2.0),
        "m2": PiecewiseLinearFunction.constant(space, 0.5),
    })
    # Plan 3: V-shaped on both metrics, cheapest at the center.  Its m2
    # cost stays above plan 1's 2.0 everywhere, so plan 3 never dominates
    # an incumbent; plan 1 dominates plan 3 exactly where plan 3's m1
    # cost is >= 0.5, i.e. outside (5/6, 7/6).  Inside that interval no
    # plan dominates plan 3, so its Pareto region is strictly interior.
    plan3 = MultiObjectivePWL({
        "m1": _pwl_from_breakpoints(space, [(0.0, 1.75), (1.0, 0.25),
                                            (2.0, 1.75)]),
        "m2": _pwl_from_breakpoints(space, [(0.0, 3.0), (1.0, 2.1),
                                            (2.0, 3.0)]),
    })
    return CounterExample(
        name="figure6", space=space,
        plans={"plan1": plan1, "plan2": plan2, "plan3": plan3},
        statement="M3b: Pareto-optimal inside a polytope but not at "
                  "its vertices")


def pareto_plans_at(example: CounterExample, x,
                    tol: float = 1e-9) -> set[str]:
    """Labels of the plans that are Pareto-optimal at parameter ``x``.

    A plan is Pareto-optimal at ``x`` when no other plan strictly
    dominates it there (Section 2's ``pReg`` definition, restricted to the
    example's plan set).
    """
    labels = list(example.plans)
    optimal = set()
    for label in labels:
        mine = example.plans[label]
        dominated = any(
            example.plans[other].strictly_dominates_at(mine, x, tol=tol)
            for other in labels if other != label)
        if not dominated:
            optimal.add(label)
    return optimal


def all_examples() -> list[CounterExample]:
    """All Section 4 counter-examples."""
    return [figure4(), figure5(), figure6()]
