"""Executable checks for Table 1, Theorems 1–6 and Example 2.

Each function returns a boolean (or a structured report) so the statements
proven in the paper can be validated mechanically over the constructions
from :mod:`repro.analysis.counterexamples` and over random instances.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

import numpy as np

from ..cost import MultiObjectivePWL, PiecewiseLinearFunction
from ..geometry import ConvexPolytope
from ..lp import LinearProgramSolver
from .counterexamples import CounterExample, pareto_plans_at


def check_s1_single_metric(example_space: ConvexPolytope,
                           costs: list[PiecewiseLinearFunction],
                           samples: int = 41) -> bool:
    """Statement S1: single-metric optimality is convex along lines.

    For each plan, the set of sampled points where it is optimal (within a
    linear region, here: functions that are affine on the whole space)
    must be an interval of the sample sequence.
    """
    lows, highs = [0.0], [1.0]
    xs = np.linspace(lows[0], highs[0], samples)
    for mine in costs:
        optimal_flags = []
        for x in xs:
            value = mine.evaluate([x])
            best = min(c.evaluate([x]) for c in costs)
            optimal_flags.append(value <= best + 1e-9)
        # The optimal set must be contiguous.
        first = next((i for i, f in enumerate(optimal_flags) if f), None)
        last = next((len(optimal_flags) - 1 - i
                     for i, f in enumerate(reversed(optimal_flags)) if f),
                    None)
        if first is None:
            continue
        if not all(optimal_flags[first:last + 1]):
            return False
    return True


def check_m1_on(example: CounterExample, samples: int = 61) -> bool:
    """Statement M1 via a counter-example instance.

    Returns ``True`` when some plan is Pareto-optimal at two sampled
    points but not at a point between them — i.e. the single-metric
    convexity property *fails*.
    """
    lows = [c.b for c in example.space.constraints]  # not used directly
    del lows
    xs = np.linspace(0.0, 3.0, samples) if example.name == "figure4" else \
        np.linspace(0.0, 2.0, samples)
    for label in example.plans:
        flags = [label in pareto_plans_at(example, [x]) for x in xs]
        true_idx = [i for i, f in enumerate(flags) if f]
        if true_idx and not all(flags[true_idx[0]:true_idx[-1] + 1]):
            return True
    return False


def check_m2_nonconvex_pareto_region(example: CounterExample,
                                     samples_per_axis: int = 21) -> bool:
    """Statement M2 via Figure 5: plan 2's Pareto region is non-convex.

    Checks that two points of the Pareto region have a midpoint outside
    it.
    """
    xs = np.linspace(0.0, 2.0, samples_per_axis)
    region_points = []
    for x1 in xs:
        for x2 in xs:
            if "plan2" in pareto_plans_at(example, [x1, x2]):
                region_points.append(np.array([x1, x2]))
    for a, b in itertools.combinations(region_points, 2):
        mid = (a + b) / 2.0
        if "plan2" not in pareto_plans_at(example, mid):
            return True
    return False


def check_m3b(example: CounterExample, samples: int = 61) -> bool:
    """Statement M3b via Figure 6.

    Returns ``True`` when some plan is Pareto-optimal at an interior
    sample but at neither endpoint of the parameter interval.
    """
    xs = np.linspace(0.0, 2.0, samples)
    for label in example.plans:
        at_left = label in pareto_plans_at(example, [xs[0]])
        at_right = label in pareto_plans_at(example, [xs[-1]])
        inside = any(label in pareto_plans_at(example, [x])
                     for x in xs[1:-1])
        if inside and not at_left and not at_right:
            return True
    return False


def check_theorem2_dominance_convex(solver: LinearProgramSolver,
                                    seed: int = 0, trials: int = 20) -> bool:
    """Theorem 2: within a linear region, Dom(p1, p2) is a convex polytope.

    Random affine cost pairs over the unit box; the dominance region
    reported by :meth:`MultiObjectivePWL.dominance_polytopes` must be a
    single convex polytope (or empty), and pointwise dominance must agree
    with polytope membership on a sample grid.
    """
    rng = random.Random(seed)
    space = ConvexPolytope.unit_box(2)
    xs = np.linspace(0.0, 1.0, 9)
    grid = [np.array([a, b]) for a in xs for b in xs]
    for __ in range(trials):
        def rand_cost():
            return MultiObjectivePWL.affine(
                space,
                {"m1": [rng.uniform(-1, 1), rng.uniform(-1, 1)],
                 "m2": [rng.uniform(-1, 1), rng.uniform(-1, 1)]},
                {"m1": rng.uniform(0, 2), "m2": rng.uniform(0, 2)})
        c1, c2 = rand_cost(), rand_cost()
        polys = c1.dominance_polytopes(c2, solver)
        if len(polys) > 1:
            return False
        for x in grid:
            inside = bool(polys) and polys[0].contains_point(x, tol=1e-7)
            pointwise = c1.dominates_at(c2, x, tol=1e-7)
            # Membership may disagree only within tolerance of the
            # boundary; use a slack re-check before failing.
            if inside != pointwise:
                if bool(polys) and abs(min(
                        c.slack(x) for c in polys[0].constraints)) < 1e-5:
                    continue
                return False
    return True


@dataclass(frozen=True)
class ParetoCountObservation:
    """Observed vs. bound plan counts for Theorem 6.

    Attributes:
        num_params: nX.
        num_metrics: nM.
        observed: Number of plans not p.v.i.-dominated.
        bound: The paper's bound ``2 ** ((nX + 1) * nM)``.
    """

    num_params: int
    num_metrics: int
    observed: float
    bound: float


def pvi_pareto_count(num_plans: int, num_params: int, num_metrics: int,
                     seed: int = 0) -> int:
    """Count plans not dominated parameter-value-independently (p.v.i.).

    Section 6.3: plan ``p1`` dominates ``p2`` p.v.i. when every cost
    weight of ``p1`` is <= the matching weight of ``p2``.  With random
    i.i.d. weights this is dominance of random points in
    ``(nX+1)*nM``-dimensional space.
    """
    rng = np.random.default_rng(seed)
    dim = (num_params + 1) * num_metrics
    points = rng.uniform(size=(num_plans, dim))
    kept = 0
    for i in range(num_plans):
        dominated = np.any(
            np.all(points <= points[i] + 1e-12, axis=1)
            & np.any(points < points[i] - 1e-12, axis=1))
        if not dominated:
            kept += 1
    return kept


def theorem6_observation(num_plans: int, num_params: int,
                         num_metrics: int, trials: int = 5,
                         seed: int = 0) -> ParetoCountObservation:
    """Average p.v.i.-Pareto count vs. the Theorem 6 bound.

    Note: Theorem 6 bounds the *expected* count under the distributional
    model of Ganguly et al. (an unspecified number of points); for i.i.d.
    uniform points the expected Pareto count grows like
    ``(ln n)^(l-1) / (l-1)!`` and exceeds ``2^l`` once ``n`` is large, so
    comparisons against the bound are meaningful for moderate ``n`` only.
    """
    counts = [pvi_pareto_count(num_plans, num_params, num_metrics,
                               seed=seed + t)
              for t in range(trials)]
    return ParetoCountObservation(
        num_params=num_params, num_metrics=num_metrics,
        observed=float(np.mean(counts)),
        bound=float(2 ** ((num_params + 1) * num_metrics)))
