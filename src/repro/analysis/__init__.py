"""Problem analysis: executable Section 4 counter-examples and checks."""

from .counterexamples import (CounterExample, all_examples, figure4, figure5,
                              figure6, pareto_plans_at)
from .diagrams import PlanDiagram, compute_diagram, render_diagram
from .properties import (ParetoCountObservation, check_m1_on,
                         check_m2_nonconvex_pareto_region, check_m3b,
                         check_s1_single_metric,
                         check_theorem2_dominance_convex, pvi_pareto_count,
                         theorem6_observation)

__all__ = [
    "CounterExample",
    "ParetoCountObservation",
    "PlanDiagram",
    "all_examples",
    "compute_diagram",
    "render_diagram",
    "check_m1_on",
    "check_m2_nonconvex_pareto_region",
    "check_m3b",
    "check_s1_single_metric",
    "check_theorem2_dominance_convex",
    "figure4",
    "figure5",
    "figure6",
    "pareto_plans_at",
    "pvi_pareto_count",
    "theorem6_observation",
]
