"""Pareto plan diagrams: visualizing plan sets over the parameter space.

Reddy & Haritsa's *plan diagrams* (cited as [25] in the paper) color each
point of the parameter space by the plan a classical optimizer picks.  The
MPQ analogue colors each point by the **set** of Pareto-optimal plans
there.  This module computes such diagrams from an optimization result on
a sampling grid and renders them as ASCII maps (1-D strips or 2-D grids),
which the analysis example and tests use to show how plan regions tile the
parameter space — including the non-convex, disconnected regions that
Section 4 proves are possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..plans import one_line

#: Symbols used to label distinct Pareto sets in rendered diagrams.
_SYMBOLS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


@dataclass
class PlanDiagram:
    """A computed Pareto plan diagram.

    Attributes:
        points: Sampled parameter vectors, shape ``(n, dim)``.
        labels: For each point, a frozenset of plan indices that are
            Pareto-optimal there (indices into ``plans``).
        plans: The distinct plans appearing anywhere in the diagram.
    """

    points: np.ndarray
    labels: list[frozenset[int]]
    plans: list

    @property
    def dim(self) -> int:
        """Parameter-space dimensionality."""
        return int(self.points.shape[1])

    def distinct_regions(self) -> list[frozenset[int]]:
        """The distinct Pareto sets appearing in the diagram."""
        seen: list[frozenset[int]] = []
        for label in self.labels:
            if label not in seen:
                seen.append(label)
        return seen

    def region_of_plan(self, plan_index: int) -> np.ndarray:
        """Boolean mask of sample points where one plan is Pareto-optimal."""
        return np.array([plan_index in label for label in self.labels])

    def plan_region_is_interval(self, plan_index: int) -> bool:
        """For 1-D diagrams: is the plan's region a contiguous interval?

        Statement M2 predicts this can be ``False`` for MPQ.
        """
        if self.dim != 1:
            raise ValueError("interval check requires a 1-D diagram")
        mask = self.region_of_plan(plan_index)
        indices = np.nonzero(mask)[0]
        if len(indices) == 0:
            return True
        return bool(np.all(mask[indices[0]:indices[-1] + 1]))


def compute_diagram(result, points_per_axis: int = 25) -> PlanDiagram:
    """Compute the Pareto plan diagram of an optimization result.

    Args:
        result: An :class:`repro.core.OptimizationResult`.
        points_per_axis: Sampling density per parameter axis.

    Returns:
        The diagram over a regular grid on the unit parameter box.
    """
    dim = max(1, result.query.num_params)
    axes = [np.linspace(0.0, 1.0, points_per_axis) for __ in range(dim)]
    mesh = np.meshgrid(*axes, indexing="ij")
    points = np.stack([m.reshape(-1) for m in mesh], axis=1)

    plans = [entry.plan for entry in result.entries]
    labels: list[frozenset[int]] = []
    for x in points:
        frontier = result.frontier_at(x)
        frontier_sigs = {plan.signature() for plan, __ in frontier}
        labels.append(frozenset(
            i for i, plan in enumerate(plans)
            if plan.signature() in frontier_sigs))
    return PlanDiagram(points=points, labels=labels, plans=plans)


def render_diagram(diagram: PlanDiagram, max_legend: int = 12) -> str:
    """Render a 1-D or 2-D diagram as an ASCII map with a legend.

    Each distinct Pareto set gets one symbol; the legend lists the plans
    of the first ``max_legend`` sets.
    """
    regions = diagram.distinct_regions()
    symbol_of = {label: _SYMBOLS[i % len(_SYMBOLS)]
                 for i, label in enumerate(regions)}
    lines = []
    if diagram.dim == 1:
        row = "".join(symbol_of[label] for label in diagram.labels)
        lines.append(f"x0: 0 |{row}| 1")
    elif diagram.dim == 2:
        per_axis = int(round(len(diagram.labels) ** 0.5))
        grid = np.array([symbol_of[label] for label in diagram.labels]
                        ).reshape(per_axis, per_axis)
        for j in reversed(range(per_axis)):
            lines.append("  |" + "".join(grid[:, j]) + "|")
        lines.append("  (x0 rightwards, x1 upwards)")
    else:
        lines.append(f"({len(regions)} distinct Pareto sets over "
                     f"{len(diagram.labels)} sample points)")
    lines.append("")
    lines.append(f"{len(regions)} distinct Pareto sets; legend:")
    for label in regions[:max_legend]:
        plan_text = ", ".join(one_line(diagram.plans[i])
                              for i in sorted(label))
        lines.append(f"  {symbol_of[label]}: {{{plan_text}}}")
    if len(regions) > max_legend:
        lines.append(f"  ... and {len(regions) - max_legend} more")
    return "\n".join(lines)
