"""Observability counters for the persistent plan-set store.

Mirrors the counter style of :mod:`repro.core.stats` /
``docs/counters.md``: cheap monotone integers kept per store instance,
snapshotted as a flat dict for gateway metrics documents and the
recurring-workload benchmark (``benchmarks/bench_store.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class StoreCounters:
    """Monotone event counters of one :class:`repro.store.PlanSetStore`.

    Attributes:
        exact_hits: ``get`` calls that returned a stored document.
        misses: ``get`` calls that found nothing acceptable.
        near_hits: Nearest-neighbor lookups that produced a seed
            candidate (same family, different statistics).
        puts: Documents written (inserted or tightened).
        puts_rejected_coarser: Writes skipped because the store already
            held a tighter (lower-alpha) document for the signature.
        covering_queries: Parameter-box subsumption queries executed.
        nn_queries: Nearest-neighbor queries executed.
        migrations: Schema migrations applied while opening the store.
        corruption_recoveries: Unreadable database files renamed aside
            and recreated empty (cold-start degradation).
        write_faults_absorbed: Write-through ``put`` failures (disk
            fault, locked database) absorbed by the warm-start cache
            tier — the in-memory tiers kept serving and no caller saw
            the error.
    """

    exact_hits: int = 0
    misses: int = 0
    near_hits: int = 0
    puts: int = 0
    puts_rejected_coarser: int = 0
    covering_queries: int = 0
    nn_queries: int = 0
    migrations: int = 0
    corruption_recoveries: int = 0
    write_faults_absorbed: int = 0

    def snapshot(self) -> dict[str, int]:
        """Flat ``name -> value`` dict (stable key order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
