"""The SQLite-backed plan-set store.

:class:`PlanSetStore` persists serialized Pareto plan sets
(``encode_plan_set`` documents) keyed by query signature, with the
lookup structure the warm-start tier needs:

* **exact hits** — ``get(signature)``, optionally alpha-bounded;
* **box subsumption** — ``covering(box)``: which stored plan sets'
  parameter bounding boxes cover a query box, at ``alpha <= a``;
* **nearest neighbor** — ``nearest(family, features)``: the stored plan
  set of the same structural family whose statistics feature vector is
  closest, for cross-query warm-start seeding.

The database runs in WAL mode so gateway shards (threads) and parallel
sessions (processes) can share one store file; a single serialized
connection per :class:`PlanSetStore` instance keeps the embedded usage
simple, and SQLite's busy timeout arbitrates cross-process writers.
Unreadable store files degrade to a cold start: the file is renamed
aside with a warning and an empty store is created in its place.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import warnings
from collections.abc import Sequence

from ..faults import failpoint
from .codec import (StoreRecord, decode_document, decode_features,
                    document_box, encode_document, encode_features)
from .counters import StoreCounters
from .schema import SCHEMA_VERSION, StoreSchemaError, ensure_schema

#: Slack applied to box-subsumption comparisons (floating-point safety).
BOX_EPS = 1e-9

#: Alpha slack for "coarser never overwrites tighter" (mirrors
#: :class:`repro.service.cache.WarmStartCache`).
ALPHA_EPS = 1e-12


class PlanSetStore:
    """Persistent, queryable store of serialized Pareto plan sets.

    Args:
        path: Database file path, or ``":memory:"`` for an ephemeral
            in-process store (used by tests and as a cache tier without
            durability).
        timeout: SQLite busy timeout in seconds — how long a write waits
            for a concurrent writer from another process.

    Thread-safe: one internal connection guarded by a lock, so a store
    instance can be shared across gateway shards.
    """

    def __init__(self, path=":memory:", *, timeout: float = 30.0) -> None:
        self.path = str(path)
        self.timeout = float(timeout)
        self.counters = StoreCounters()
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = None
        self._conn = self._open()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def in_memory(self) -> bool:
        """Whether the store has no backing file."""
        return self.path == ":memory:"

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=self.timeout,
                               check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA foreign_keys=ON")
        self.counters.migrations += ensure_schema(conn)
        return conn

    def _open(self) -> sqlite3.Connection:
        try:
            return self._connect()
        except StoreSchemaError:
            raise
        except sqlite3.DatabaseError as exc:
            if self.in_memory:
                raise
            quarantine = self.path + ".corrupt"
            warnings.warn(
                f"plan-set store {self.path!r} is unreadable ({exc}); "
                f"moving it to {quarantine!r} and starting cold",
                RuntimeWarning, stacklevel=3)
            os.replace(self.path, quarantine)
            for suffix in ("-wal", "-shm"):
                try:
                    os.remove(self.path + suffix)
                except OSError:
                    pass
            self.counters.corruption_recoveries += 1
            return self._connect()

    def flush(self) -> None:
        """Commit and fold the WAL back into the main database file."""
        with self._lock:
            if self._conn is None:
                return
            self._conn.commit()
            if not self.in_memory:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        """Flush and close the connection (idempotent)."""
        with self._lock:
            if self._conn is None:
                return
            try:
                self.flush()
            finally:
                self._conn.close()
                self._conn = None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._conn is None

    def __enter__(self) -> PlanSetStore:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _cursor(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StoreSchemaError("plan-set store is closed")
        return self._conn

    # ------------------------------------------------------------------
    # Signature metadata
    # ------------------------------------------------------------------

    def register(self, signature: str, *, family: str, scenario: str,
                 stats_digest: str = "", num_tables: int = 0,
                 num_params: int = 1,
                 features: Sequence[float] = ()) -> None:
        """Record the family metadata of a signature.

        Sessions call this on every cache miss, before the optimizer
        runs, so a later :meth:`put` through the cache tier (which only
        knows signature + document) can attach family, statistics digest
        and feature vector to the stored row.
        """
        with self._lock:
            conn = self._cursor()
            conn.execute(
                "INSERT INTO signatures (signature, family, scenario, "
                "stats_digest, num_tables, num_params, features) "
                "VALUES (?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(signature) DO UPDATE SET family=excluded.family,"
                " scenario=excluded.scenario,"
                " stats_digest=excluded.stats_digest,"
                " num_tables=excluded.num_tables,"
                " num_params=excluded.num_params,"
                " features=excluded.features",
                (signature, family, scenario, stats_digest,
                 int(num_tables), int(num_params),
                 encode_features(features)))
            conn.commit()

    def metadata(self, signature: str) -> StoreRecord | None:
        """The registered metadata of a signature (document-less)."""
        with self._lock:
            row = self._cursor().execute(
                "SELECT family, scenario, stats_digest, num_tables, "
                "num_params, features FROM signatures WHERE signature = ?",
                (signature,)).fetchone()
        if row is None:
            return None
        return StoreRecord(signature=signature, family=row[0],
                           scenario=row[1], stats_digest=row[2],
                           num_tables=row[3], num_params=row[4],
                           features=decode_features(row[5]), document={})

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put(self, signature: str, document: dict, *,
            family: str | None = None, scenario: str | None = None,
            stats_digest: str | None = None,
            num_tables: int | None = None,
            features: Sequence[float] | None = None) -> bool:
        """Store a plan-set document under a signature.

        Metadata omitted by the caller is joined from a prior
        :meth:`register` for the signature.  A coarser document (higher
        alpha) never overwrites a tighter stored one; equal-or-tighter
        documents replace the row (and its box/feature side rows).

        Returns:
            Whether the document was written.
        """
        # Failpoints (inert without a REPRO_FAULTS schedule): a failed
        # or locked-out write surfaces as an exception the write-through
        # tier absorbs (counters.write_faults_absorbed).
        failpoint("store.put.fail")
        failpoint("store.put.locked")
        meta = self.metadata(signature)
        family = family if family is not None else (
            meta.family if meta else "")
        scenario = scenario if scenario is not None else (
            meta.scenario if meta else "")
        stats_digest = stats_digest if stats_digest is not None else (
            meta.stats_digest if meta else "")
        num_tables = num_tables if num_tables is not None else (
            meta.num_tables if meta else 0)
        if features is None:
            features = meta.features if meta else ()
        alpha = float(document.get("alpha", 0.0))
        guarantee = float(document.get("guarantee", 1.0))
        num_params = max(1, int(document.get("num_params", 1)))
        num_entries = len(document.get("entries", []))
        box = document_box(document)
        with self._lock:
            conn = self._cursor()
            row = conn.execute(
                "SELECT id, alpha FROM plan_sets WHERE signature = ?",
                (signature,)).fetchone()
            if row is not None and alpha > row[1] + ALPHA_EPS:
                self.counters.puts_rejected_coarser += 1
                return False
            if row is not None:
                conn.execute("DELETE FROM param_boxes WHERE plan_set_id = ?",
                             (row[0],))
                conn.execute("DELETE FROM features WHERE plan_set_id = ?",
                             (row[0],))
                conn.execute("DELETE FROM plan_sets WHERE id = ?", (row[0],))
            cursor = conn.execute(
                "INSERT INTO plan_sets (signature, family, scenario, "
                "stats_digest, num_tables, num_params, alpha, guarantee, "
                "num_entries, document) VALUES (?,?,?,?,?,?,?,?,?,?)",
                (signature, family, scenario, stats_digest,
                 int(num_tables), num_params, alpha, guarantee,
                 num_entries, encode_document(document)))
            plan_set_id = cursor.lastrowid
            conn.executemany(
                "INSERT INTO param_boxes (plan_set_id, dim, lo, hi) "
                "VALUES (?,?,?,?)",
                [(plan_set_id, dim, float(lo), float(hi))
                 for dim, (lo, hi) in enumerate(box)])
            conn.executemany(
                "INSERT INTO features (plan_set_id, dim, value) "
                "VALUES (?,?,?)",
                [(plan_set_id, dim, float(value))
                 for dim, value in enumerate(features)])
            # Crash window: a writer killed here leaves an uncommitted
            # WAL transaction that the next open must roll back cleanly
            # (tests/test_store.py torn-put coverage).
            failpoint("store.put.torn")
            conn.commit()
        self.counters.puts += 1
        return True

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def get(self, signature: str,
            max_alpha: float | None = None) -> dict | None:
        """Exact-signature lookup, optionally bounded by alpha."""
        with self._lock:
            row = self._cursor().execute(
                "SELECT alpha, document FROM plan_sets WHERE signature = ?",
                (signature,)).fetchone()
        if row is None or (max_alpha is not None
                           and row[0] > max_alpha + ALPHA_EPS):
            self.counters.misses += 1
            return None
        self.counters.exact_hits += 1
        return decode_document(row[1])

    def covering(self, box: Sequence[tuple[float, float]], *,
                 family: str | None = None,
                 max_alpha: float | None = None,
                 limit: int | None = None) -> list[dict]:
        """Stored plan sets whose parameter box covers ``box``.

        Args:
            box: ``(lo, hi)`` per parameter dimension.
            family: Restrict to one structural family.
            max_alpha: Only entries pruned at ``alpha <= max_alpha``.
            limit: Cap on returned rows.

        Returns:
            ``{"signature", "family", "alpha", "guarantee", "document"}``
            dicts, tightest (lowest alpha) first.  A stored set covers
            the query box when for every dimension its stored interval
            contains the queried interval (with float slack); stored
            sets lacking a dimension do not cover.
        """
        box = [(float(lo), float(hi)) for lo, hi in box]
        if not box:
            raise ValueError("covering() needs at least one dimension")
        values = ", ".join(["(?, ?, ?)"] * len(box))
        params: list = []
        for dim, (lo, hi) in enumerate(box):
            params.extend((dim, lo, hi))
        sql = (
            f"WITH qbox(dim, lo, hi) AS (VALUES {values}) "
            "SELECT p.signature, p.family, p.alpha, p.guarantee, p.document"
            " FROM plan_sets p WHERE p.num_params = ?"
            " AND (? IS NULL OR p.family = ?)"
            " AND (? IS NULL OR p.alpha <= ? + ?)"
            " AND NOT EXISTS ("
            "   SELECT 1 FROM qbox q LEFT JOIN param_boxes b"
            "     ON b.plan_set_id = p.id AND b.dim = q.dim"
            "   WHERE b.dim IS NULL"
            f"     OR b.lo > q.lo + {BOX_EPS!r}"
            f"     OR b.hi < q.hi - {BOX_EPS!r})"
            " ORDER BY p.alpha ASC, p.signature ASC")
        params.extend((len(box), family, family,
                       max_alpha, max_alpha, ALPHA_EPS))
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._cursor().execute(sql, params).fetchall()
        self.counters.covering_queries += 1
        return [{"signature": r[0], "family": r[1], "alpha": r[2],
                 "guarantee": r[3], "document": decode_document(r[4])}
                for r in rows]

    def nearest(self, family: str, features: Sequence[float], *,
                limit: int = 1, exclude_signature: str | None = None,
                exclude_stats_digest: str | None = None,
                max_alpha: float | None = None) -> list[dict]:
        """Same-family plan sets ranked by statistics similarity.

        Euclidean (squared) distance between the stored feature vectors
        and ``features``; only rows with a complete feature vector of
        matching dimensionality participate.

        Returns:
            ``{"signature", "alpha", "guarantee", "distance",
            "document"}`` dicts, nearest first (signature breaks ties
            deterministically).
        """
        features = [float(v) for v in features]
        if not features:
            return []
        values = ", ".join(["(?, ?)"] * len(features))
        params: list = []
        for dim, value in enumerate(features):
            params.extend((dim, value))
        sql = (
            f"WITH qf(dim, value) AS (VALUES {values}) "
            "SELECT p.signature, p.alpha, p.guarantee, p.document,"
            " SUM((f.value - qf.value) * (f.value - qf.value)) AS dist"
            " FROM plan_sets p"
            " JOIN features f ON f.plan_set_id = p.id"
            " JOIN qf ON qf.dim = f.dim"
            " WHERE p.family = ?"
            " AND (? IS NULL OR p.signature <> ?)"
            " AND (? IS NULL OR p.stats_digest <> ?)"
            " AND (? IS NULL OR p.alpha <= ? + ?)"
            " GROUP BY p.id HAVING COUNT(*) = ?"
            " ORDER BY dist ASC, p.signature ASC LIMIT ?")
        params.extend((family, exclude_signature, exclude_signature,
                       exclude_stats_digest, exclude_stats_digest,
                       max_alpha, max_alpha, ALPHA_EPS,
                       len(features), int(limit)))
        with self._lock:
            rows = self._cursor().execute(sql, params).fetchall()
        self.counters.nn_queries += 1
        if rows:
            self.counters.near_hits += 1
        return [{"signature": r[0], "alpha": r[1], "guarantee": r[2],
                 "document": decode_document(r[3]), "distance": r[4]}
                for r in rows]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return self._cursor().execute(
                "SELECT COUNT(*) FROM plan_sets").fetchone()[0]

    def schema_version(self) -> int:
        """The open database's ``PRAGMA user_version``."""
        with self._lock:
            return self._cursor().execute(
                "PRAGMA user_version").fetchone()[0]

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot plus current size, for metrics documents."""
        doc = self.counters.snapshot()
        doc["entries"] = len(self) if not self.closed else 0
        doc["schema_version"] = (SCHEMA_VERSION if self.closed
                                 else self.schema_version())
        return doc
