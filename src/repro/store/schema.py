"""SQLite schema and migrations for the plan-set store.

The store keeps one row per query signature in ``plan_sets`` (the full
``encode_plan_set`` document plus its alpha/guarantee tags and family
metadata), the axis-aligned parameter bounding box in ``param_boxes``
(one row per dimension, so box subsumption is a relational anti-join),
and the statistics feature vector in ``features`` (one row per
dimension, so nearest-neighbor search is a ``SUM`` of squared
differences).  ``PRAGMA user_version`` carries the schema version;
:func:`ensure_schema` creates fresh databases at the current version and
upgrades old ones in-place through :data:`MIGRATIONS`.
"""

from __future__ import annotations

import sqlite3

from ..errors import ReproError

#: Current schema version (``PRAGMA user_version`` of a fresh store).
SCHEMA_VERSION = 2


class StoreSchemaError(ReproError):
    """Raised for store files from the future or failed migrations."""


#: Version-2 DDL.  Executed statement-by-statement on fresh databases.
SCHEMA_V2 = (
    """
    CREATE TABLE IF NOT EXISTS plan_sets (
        id INTEGER PRIMARY KEY,
        signature TEXT NOT NULL UNIQUE,
        family TEXT NOT NULL,
        scenario TEXT NOT NULL,
        stats_digest TEXT NOT NULL DEFAULT '',
        num_tables INTEGER NOT NULL,
        num_params INTEGER NOT NULL,
        alpha REAL NOT NULL,
        guarantee REAL NOT NULL,
        num_entries INTEGER NOT NULL,
        document TEXT NOT NULL
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS ix_plan_sets_family
        ON plan_sets (family, alpha)
    """,
    """
    CREATE TABLE IF NOT EXISTS param_boxes (
        plan_set_id INTEGER NOT NULL
            REFERENCES plan_sets(id) ON DELETE CASCADE,
        dim INTEGER NOT NULL,
        lo REAL NOT NULL,
        hi REAL NOT NULL,
        PRIMARY KEY (plan_set_id, dim)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS features (
        plan_set_id INTEGER NOT NULL
            REFERENCES plan_sets(id) ON DELETE CASCADE,
        dim INTEGER NOT NULL,
        value REAL NOT NULL,
        PRIMARY KEY (plan_set_id, dim)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS signatures (
        signature TEXT PRIMARY KEY,
        family TEXT NOT NULL,
        scenario TEXT NOT NULL,
        stats_digest TEXT NOT NULL DEFAULT '',
        num_tables INTEGER NOT NULL,
        num_params INTEGER NOT NULL,
        features TEXT NOT NULL DEFAULT '[]'
    )
    """,
)


def _migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
    """v1 -> v2: statistics split and similarity search.

    Version 1 stored only exact-hit state (``plan_sets`` without the
    ``stats_digest`` column, plus ``param_boxes``).  Version 2 adds the
    statistics digest, the ``features`` table for nearest-neighbor
    lookups and the ``signatures`` metadata side table.  Old rows keep
    working for exact hits and box subsumption; they simply have no
    feature vector, so they are invisible to nearest-neighbor search
    until rewritten.
    """
    conn.execute(
        "ALTER TABLE plan_sets ADD COLUMN stats_digest TEXT "
        "NOT NULL DEFAULT ''")
    for statement in SCHEMA_V2[3:]:
        conn.execute(statement)


#: ``from_version -> migration(conn)`` steps, applied in sequence.
MIGRATIONS = {1: _migrate_v1_to_v2}


def ensure_schema(conn: sqlite3.Connection) -> int:
    """Create or upgrade the schema; return migrations applied.

    Raises:
        StoreSchemaError: If the file's ``user_version`` is newer than
            this code understands, or a migration step is missing.
    """
    version = conn.execute("PRAGMA user_version").fetchone()[0]
    if version > SCHEMA_VERSION:
        raise StoreSchemaError(
            f"store schema version {version} is newer than the supported "
            f"version {SCHEMA_VERSION}; upgrade the library or use a "
            f"different store file")
    applied = 0
    if version == 0:
        for statement in SCHEMA_V2:
            conn.execute(statement)
    else:
        while version < SCHEMA_VERSION:
            step = MIGRATIONS.get(version)
            if step is None:
                raise StoreSchemaError(
                    f"no migration from store schema version {version}")
            step(conn)
            version += 1
            applied += 1
    conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
    conn.commit()
    return applied
