"""Row encoding for the plan-set store.

Translates between ``encode_plan_set`` documents (the JSON format of
:mod:`repro.core.serialize`) and the store's relational layout: the
document itself is kept verbatim as JSON text, while the pieces the
lookup queries touch — alpha/guarantee tags, the axis-aligned parameter
bounding box, the statistics feature vector — are lifted into columns
and side tables at write time.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class StoreRecord:
    """One plan-set document plus the metadata the store indexes.

    Attributes:
        signature: Full query signature (exact-hit key).
        family: Structure-only family digest
            (:func:`repro.service.signature.family_digest`).
        scenario: Scenario name (denormalized for reporting).
        stats_digest: Digest of the volatile statistics
            (:func:`repro.service.signature.statistics_digest`).
        num_tables: Tables joined by the query.
        num_params: Optimization parameters.
        features: Statistics feature vector
            (:func:`repro.service.signature.signature_features`).
        document: The ``encode_plan_set`` document.
    """

    signature: str
    family: str
    scenario: str
    stats_digest: str
    num_tables: int
    num_params: int
    features: tuple[float, ...]
    document: dict


def document_box(document: dict) -> list[tuple[float, float]]:
    """Axis-aligned parameter bounding box of a plan-set document.

    The box of the union of the entries' region *spaces*, derived from
    axis-aligned constraints (``a`` with one non-zero coefficient);
    oblique constraints cannot tighten an axis-aligned box, so they are
    ignored — the result is a conservative cover.  Dimensions left
    unbounded by every entry default to ``[0, 1]`` (the selectivity
    parameter domain).
    """
    dim = max(1, int(document.get("num_params", 1)))
    los = [math.inf] * dim
    his = [-math.inf] * dim
    entries = document.get("entries", [])
    for entry in entries:
        space = entry["region"]["space"]
        entry_lo = [0.0] * dim
        entry_hi = [1.0] * dim
        for constraint in space["constraints"]:
            a, b = constraint["a"], float(constraint["b"])
            nonzero = [(i, c) for i, c in enumerate(a) if c != 0.0]
            if len(nonzero) != 1:
                continue
            i, coeff = nonzero[0]
            if coeff > 0:
                entry_hi[i] = min(entry_hi[i], b / coeff)
            else:
                entry_lo[i] = max(entry_lo[i], b / coeff)
        for i in range(dim):
            los[i] = min(los[i], entry_lo[i])
            his[i] = max(his[i], entry_hi[i])
    if not entries:
        return [(0.0, 1.0)] * dim
    return [(lo if math.isfinite(lo) else 0.0,
             hi if math.isfinite(hi) else 1.0)
            for lo, hi in zip(los, his)]


def encode_document(document: dict) -> str:
    """Compact canonical JSON text for the ``document`` column."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def decode_document(text: str) -> dict:
    """Inverse of :func:`encode_document`."""
    return json.loads(text)


def encode_features(features) -> str:
    """JSON text for the ``signatures.features`` column."""
    return json.dumps([float(v) for v in features])


def decode_features(text: str) -> tuple[float, ...]:
    """Inverse of :func:`encode_features`."""
    return tuple(float(v) for v in json.loads(text))
