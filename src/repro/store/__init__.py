"""Persistent, queryable plan-set store (SQLite, stdlib only).

The parametric plan sets this library produces are precomputed
artifacts: a Pareto plan set tagged with its parameter region and alpha
guarantee answers future queries, not just the one that produced it.
This package persists them in a relational layout where warm-start
lookups are set-based queries — exact-signature hits, parameter-box
subsumption, and nearest-neighbor search over statistics feature
vectors for cross-query seeding.  See ``docs/plan-store.md``.
"""

from .codec import StoreRecord, document_box
from .counters import StoreCounters
from .schema import SCHEMA_VERSION, StoreSchemaError
from .store import PlanSetStore

__all__ = [
    "PlanSetStore",
    "SCHEMA_VERSION",
    "StoreCounters",
    "StoreRecord",
    "StoreSchemaError",
    "document_box",
]
