"""Experimental harness: workloads, sweep runner, Figure 12 reporting."""

from .reporting import ascii_log_chart, figure12_report, format_table
from .runner import (AggregatedPoint, Measurement, run_point,
                     run_query_measurement, run_sweep)
from .workloads import (FULL, QUICK, SweepPoint, SweepProfile,
                        queries_for_point, sweep_points)

__all__ = [
    "FULL",
    "QUICK",
    "AggregatedPoint",
    "Measurement",
    "SweepPoint",
    "SweepProfile",
    "ascii_log_chart",
    "figure12_report",
    "format_table",
    "queries_for_point",
    "run_point",
    "run_query_measurement",
    "run_sweep",
    "sweep_points",
]
