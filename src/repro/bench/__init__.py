"""Experimental harness: workloads, sweep runner, Figure 12 + serving
(batch, streaming, pool-regime) reporting."""

from .reporting import (ascii_log_chart, figure12_report,
                        format_anytime_ladder, format_lp_kernel_table,
                        format_pool_comparison, format_streaming_table,
                        format_throughput_table, format_table)
from .runner import (PAPER_FAITHFUL, AggregatedPoint, AnytimeLadderReport,
                     AnytimeRungPoint, LPKernelPoint, Measurement,
                     StreamingPoint, ThroughputPoint, run_anytime_ladder,
                     run_batch_throughput, run_lp_kernel_sweep, run_point,
                     run_pool_comparison, run_query_measurement,
                     run_streaming_throughput, run_sweep)
from .workloads import (FULL, QUICK, SweepPoint, SweepProfile,
                        queries_for_point, sweep_points)

__all__ = [
    "FULL",
    "PAPER_FAITHFUL",
    "QUICK",
    "AggregatedPoint",
    "AnytimeLadderReport",
    "AnytimeRungPoint",
    "LPKernelPoint",
    "Measurement",
    "StreamingPoint",
    "SweepPoint",
    "SweepProfile",
    "ThroughputPoint",
    "ascii_log_chart",
    "figure12_report",
    "format_anytime_ladder",
    "format_lp_kernel_table",
    "format_pool_comparison",
    "format_streaming_table",
    "format_table",
    "format_throughput_table",
    "queries_for_point",
    "run_anytime_ladder",
    "run_batch_throughput",
    "run_lp_kernel_sweep",
    "run_point",
    "run_pool_comparison",
    "run_query_measurement",
    "run_streaming_throughput",
    "run_sweep",
    "sweep_points",
]
