"""Experimental harness: workloads, sweep runner, Figure 12 + throughput
reporting."""

from .reporting import (ascii_log_chart, figure12_report,
                        format_throughput_table, format_table)
from .runner import (PAPER_FAITHFUL, AggregatedPoint, Measurement,
                     ThroughputPoint, run_batch_throughput, run_point,
                     run_query_measurement, run_sweep)
from .workloads import (FULL, QUICK, SweepPoint, SweepProfile,
                        queries_for_point, sweep_points)

__all__ = [
    "FULL",
    "PAPER_FAITHFUL",
    "QUICK",
    "AggregatedPoint",
    "Measurement",
    "SweepPoint",
    "SweepProfile",
    "ThroughputPoint",
    "ascii_log_chart",
    "figure12_report",
    "format_table",
    "format_throughput_table",
    "queries_for_point",
    "run_batch_throughput",
    "run_point",
    "run_query_measurement",
    "run_sweep",
    "sweep_points",
]
