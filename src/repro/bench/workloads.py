"""Workload definitions for the experimental evaluation (Section 7).

The paper's Figure 12 sweeps the number of tables (2–12) for chain and
star queries with 1 and 2 parameters, 25 random queries per point, and
reports the median of optimization time, #created plans and #solved LPs.

Pure-Python LP solving is orders of magnitude slower than the paper's
Java + Gurobi setup, so the default sweep is scaled down (documented in
EXPERIMENTS.md); the shapes of all curves are preserved.  Two profiles are
provided: ``QUICK`` (used by the pytest-benchmark suite) and ``FULL``
(closer to the paper's ranges; run it via ``examples/figure12.py``).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from ..catalog import Catalog, Column, Index, Table
from ..query import JoinPredicate, Query, QueryGenerator


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a Figure 12 panel.

    Attributes:
        num_tables: Number of joined tables.
        shape: Join graph shape (``"chain"`` or ``"star"``).
        num_params: Number of selectivity parameters (1 or 2).
        resolution: PWL grid resolution used by the cost model.
    """

    num_tables: int
    shape: str
    num_params: int
    resolution: int = 2


@dataclass(frozen=True)
class SweepProfile:
    """A full sweep configuration.

    Attributes:
        name: Profile label.
        table_counts_1p: Table counts swept with one parameter.
        table_counts_2p: Table counts swept with two parameters.
        queries_per_point: Random queries (seeds) per sweep point; the
            paper uses 25, the scaled profiles use fewer.
        resolution_1p / resolution_2p: PWL grid resolutions.
    """

    name: str
    table_counts_1p: tuple[int, ...]
    table_counts_2p: tuple[int, ...]
    queries_per_point: int
    resolution_1p: int = 2
    resolution_2p: int = 1


#: Small profile used by the pytest-benchmark suite (minutes, not hours).
QUICK = SweepProfile(
    name="quick",
    table_counts_1p=(2, 3, 4, 5),
    table_counts_2p=(2, 3, 4),
    queries_per_point=3,
)

#: Larger profile approaching the paper's ranges (tens of minutes).
FULL = SweepProfile(
    name="full",
    table_counts_1p=(2, 3, 4, 5, 6, 7, 8),
    table_counts_2p=(2, 3, 4, 5, 6),
    queries_per_point=5,
)


def sweep_points(profile: SweepProfile, shape: str
                 ) -> list[SweepPoint]:
    """Expand a profile into the sweep points for one join-graph shape."""
    points = [SweepPoint(num_tables=n, shape=shape, num_params=1,
                         resolution=profile.resolution_1p)
              for n in profile.table_counts_1p]
    points += [SweepPoint(num_tables=n, shape=shape, num_params=2,
                          resolution=profile.resolution_2p)
               for n in profile.table_counts_2p]
    return points


def queries_for_point(point: SweepPoint, count: int,
                      base_seed: int = 0) -> list[Query]:
    """Generate the random queries evaluated at one sweep point.

    Seeds are derived from the point via a *stable* digest (CRC32) so
    repeated runs — across processes, Python versions and machines —
    measure identical workloads.  This is what makes the deterministic
    counter metrics (#LPs, #plans) comparable against the committed CI
    perf baseline; the built-in ``hash`` would vary per process unless
    ``PYTHONHASHSEED`` were pinned.
    """
    queries = []
    for i in range(count):
        tag = (f"{point.num_tables}:{point.shape}:{point.num_params}:"
               f"{base_seed + i}")
        seed = zlib.crc32(tag.encode("ascii")) & 0x7FFFFFFF
        generator = QueryGenerator(seed=seed)
        queries.append(generator.generate(
            num_tables=point.num_tables, shape=point.shape,
            num_params=point.num_params))
    return queries


def stable_seed(tag: str) -> int:
    """CRC32-derived seed for a workload tag (see queries_for_point)."""
    return zlib.crc32(tag.encode("ascii")) & 0x7FFFFFFF


def drift_statistics(query: Query, seed: int,
                     magnitude: float = 0.15) -> Query:
    """The same query structure with perturbed statistics.

    Models a *recurring* query whose underlying data has changed
    between appearances: tables, join graph, parametric predicates and
    indexes — everything the structural family digest hashes — stay
    fixed, while cardinalities, distinct counts and join selectivities
    are scaled by up to ``magnitude``.  The result is a near miss for
    the plan-set store: a different exact signature in the same family,
    eligible for similar-query warm-start seeding.
    """
    rng = random.Random(seed)
    tables = []
    for name in query.catalog.table_names():
        table = query.catalog.table(name)
        factor = 1.0 + rng.uniform(-magnitude, magnitude)
        cardinality = max(1, int(table.cardinality * factor))
        columns = tuple(
            Column(column.name,
                   max(1, min(cardinality,
                              int(column.distinct_values * factor))),
                   column.width_bytes)
            for column in table.columns)
        tables.append(Table(name, cardinality, columns))
    catalog = Catalog.from_tables(
        tables, [Index(index.table_name, index.column_name)
                 for index in query.catalog.indexes])
    joins = tuple(
        JoinPredicate(p.left_table, p.left_column, p.right_table,
                      p.right_column,
                      min(1.0, p.selectivity
                          * (1.0 + rng.uniform(-magnitude, magnitude))))
        for p in query.join_predicates)
    return Query(catalog, query.tables, joins,
                 query.parametric_predicates)
