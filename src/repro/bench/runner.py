"""Sweep runner for the Figure 12 reproduction.

Runs PWL-RRPA over the workloads of :mod:`repro.bench.workloads`, collects
the three measurements of Figure 12 per query (optimization time, #created
plans, #solved LPs), and aggregates medians per sweep point exactly as the
paper does ("Each data point corresponds to the median of 25 randomly
generated test cases").
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..core import PWLRRPA, PWLRRPAOptions
from ..cloud import CloudCostModel
from .workloads import SweepPoint, SweepProfile, queries_for_point, \
    sweep_points


@dataclass(frozen=True)
class Measurement:
    """Raw measurements for one optimized query.

    Attributes:
        point: The sweep point the query belongs to.
        seconds: Optimization wall-clock time.
        plans_created: Plans generated (incl. pruned ones).
        lps_solved: Linear programs solved.
        pareto_plans: Size of the final Pareto plan set.
    """

    point: SweepPoint
    seconds: float
    plans_created: int
    lps_solved: int
    pareto_plans: int


@dataclass(frozen=True)
class AggregatedPoint:
    """Median measurements at one sweep point (one x-value of Figure 12).

    Attributes:
        point: The sweep point.
        median_seconds / median_plans / median_lps: Medians over the
            random queries, as plotted in Figure 12.
        samples: Number of queries aggregated.
    """

    point: SweepPoint
    median_seconds: float
    median_plans: float
    median_lps: float
    samples: int


def run_query_measurement(query, point: SweepPoint,
                          options: PWLRRPAOptions | None = None
                          ) -> Measurement:
    """Optimize one query and extract the Figure 12 measurements."""
    optimizer = PWLRRPA(
        cost_model_factory=lambda q: CloudCostModel(
            q, resolution=point.resolution),
        options=options)
    result = optimizer.optimize(query)
    stats = result.stats
    return Measurement(point=point, seconds=stats.optimization_seconds,
                       plans_created=stats.plans_created,
                       lps_solved=stats.lps_solved,
                       pareto_plans=len(result.entries))


def run_point(point: SweepPoint, queries_per_point: int,
              options: PWLRRPAOptions | None = None,
              base_seed: int = 0) -> AggregatedPoint:
    """Run all random queries of one sweep point and aggregate medians."""
    measurements = [
        run_query_measurement(query, point, options=options)
        for query in queries_for_point(point, queries_per_point,
                                       base_seed=base_seed)]
    return AggregatedPoint(
        point=point,
        median_seconds=statistics.median(m.seconds for m in measurements),
        median_plans=statistics.median(
            m.plans_created for m in measurements),
        median_lps=statistics.median(m.lps_solved for m in measurements),
        samples=len(measurements))


def run_sweep(profile: SweepProfile, shape: str,
              options: PWLRRPAOptions | None = None,
              base_seed: int = 0) -> list[AggregatedPoint]:
    """Run the full sweep of one Figure 12 column (chain or star)."""
    return [run_point(point, profile.queries_per_point, options=options,
                      base_seed=base_seed)
            for point in sweep_points(profile, shape)]
