"""Sweep runner for the Figure 12 reproduction — plus batch throughput.

Runs PWL-RRPA over the workloads of :mod:`repro.bench.workloads`, collects
the three measurements of Figure 12 per query (optimization time, #created
plans, #solved LPs), and aggregates medians per sweep point exactly as the
paper does ("Each data point corresponds to the median of 25 randomly
generated test cases").

:func:`run_batch_throughput` extends the harness beyond the paper: it
sweeps the batch optimization engine of :mod:`repro.service` over worker
counts and query sizes and reports sustained queries/second, the serving
measurement the Figure 12 harness has no notion of.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from ..core import PWLRRPA, PWLRRPAOptions
from ..cloud import CloudCostModel
from .workloads import SweepPoint, SweepProfile, queries_for_point, \
    sweep_points


#: Backend configuration matching the paper's implementation for the
#: Figure 12 measurements: per-incumbent scalar pruning and no LP memo,
#: so the "#solved linear programs" panel stays comparable to the paper
#: (the vectorized batch path computes slightly past the scalar loop's
#: early exit, and cache hits are not counted as solved LPs).  The plan
#: sets themselves are identical either way.
PAPER_FAITHFUL = PWLRRPAOptions(vectorized_pruning=False, lp_cache_size=0)


@dataclass(frozen=True)
class Measurement:
    """Raw measurements for one optimized query.

    Attributes:
        point: The sweep point the query belongs to.
        seconds: Optimization wall-clock time.
        plans_created: Plans generated (incl. pruned ones).
        lps_solved: Linear programs solved.
        pareto_plans: Size of the final Pareto plan set.
    """

    point: SweepPoint
    seconds: float
    plans_created: int
    lps_solved: int
    pareto_plans: int


@dataclass(frozen=True)
class AggregatedPoint:
    """Median measurements at one sweep point (one x-value of Figure 12).

    Attributes:
        point: The sweep point.
        median_seconds / median_plans / median_lps: Medians over the
            random queries, as plotted in Figure 12.
        samples: Number of queries aggregated.
    """

    point: SweepPoint
    median_seconds: float
    median_plans: float
    median_lps: float
    samples: int


def run_query_measurement(query, point: SweepPoint,
                          options: PWLRRPAOptions | None = None
                          ) -> Measurement:
    """Optimize one query and extract the Figure 12 measurements.

    Args:
        query: The query to optimize.
        point: Sweep point providing the cost-model resolution.
        options: Backend options; defaults to :data:`PAPER_FAITHFUL` so
            the #LPs panel reproduces the paper's algorithm (pass
            ``PWLRRPAOptions()`` to measure the accelerated engine).
    """
    optimizer = PWLRRPA(
        cost_model_factory=lambda q: CloudCostModel(
            q, resolution=point.resolution),
        options=options if options is not None else PAPER_FAITHFUL)
    result = optimizer.optimize(query)
    stats = result.stats
    return Measurement(point=point, seconds=stats.optimization_seconds,
                       plans_created=stats.plans_created,
                       lps_solved=stats.lps_solved,
                       pareto_plans=len(result.entries))


def run_point(point: SweepPoint, queries_per_point: int,
              options: PWLRRPAOptions | None = None,
              base_seed: int = 0) -> AggregatedPoint:
    """Run all random queries of one sweep point and aggregate medians."""
    measurements = [
        run_query_measurement(query, point, options=options)
        for query in queries_for_point(point, queries_per_point,
                                       base_seed=base_seed)]
    return AggregatedPoint(
        point=point,
        median_seconds=statistics.median(m.seconds for m in measurements),
        median_plans=statistics.median(
            m.plans_created for m in measurements),
        median_lps=statistics.median(m.lps_solved for m in measurements),
        samples=len(measurements))


def run_sweep(profile: SweepProfile, shape: str,
              options: PWLRRPAOptions | None = None,
              base_seed: int = 0) -> list[AggregatedPoint]:
    """Run the full sweep of one Figure 12 column (chain or star)."""
    return [run_point(point, profile.queries_per_point, options=options,
                      base_seed=base_seed)
            for point in sweep_points(profile, shape)]


# ----------------------------------------------------------------------
# Batch-engine throughput sweep
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ThroughputPoint:
    """Throughput of the batch engine at one (workers, query size) point.

    Attributes:
        workers: Worker processes (``<= 1`` means in-process serial).
        num_tables: Tables per query.
        shape: Join graph shape of the workload.
        queries: Number of distinct queries optimized.
        seconds: Wall-clock time for the whole batch.
        qps: Sustained queries per second (``queries / seconds``).
        failures: Items that did not produce a plan set.
    """

    workers: int
    num_tables: int
    shape: str
    queries: int
    seconds: float
    qps: float
    failures: int

    def as_dict(self) -> dict:
        """JSON-ready representation (used by the CI bench artifact)."""
        return {"workers": self.workers, "num_tables": self.num_tables,
                "shape": self.shape, "queries": self.queries,
                "seconds": self.seconds, "qps": self.qps,
                "failures": self.failures}


def run_batch_throughput(num_tables: int = 4, shape: str = "chain",
                         num_queries: int = 8,
                         workers_list: tuple[int, ...] = (1, 2, 4),
                         resolution: int = 2,
                         options: PWLRRPAOptions | None = None,
                         base_seed: int = 0) -> list[ThroughputPoint]:
    """Measure batch-engine throughput across worker counts.

    Every worker count optimizes the *same* list of distinct random
    queries (fresh :class:`repro.service.BatchOptimizer` each, with
    warm-start disabled) so points differ only in parallelism.

    Args:
        num_tables: Tables per generated query.
        shape: Join graph shape.
        num_queries: Distinct queries per point.
        workers_list: Worker counts to sweep (``1`` is the single-process
            baseline).
        resolution: Cost-model PWL resolution.
        options: Backend options for every optimization.
        base_seed: Seed offset for query generation.
    """
    from ..query import QueryGenerator
    from ..service import BatchOptimizer, BatchOptions

    queries = [
        QueryGenerator(seed=base_seed + i).generate(
            num_tables=num_tables, shape=shape, num_params=1)
        for i in range(num_queries)]
    points = []
    for workers in workers_list:
        optimizer = BatchOptimizer(BatchOptions(
            workers=workers, resolution=resolution, rrpa_options=options,
            warm_start=False))
        started = time.perf_counter()
        items = optimizer.optimize_batch(queries)
        seconds = time.perf_counter() - started
        failures = sum(1 for item in items if not item.ok)
        points.append(ThroughputPoint(
            workers=workers, num_tables=num_tables, shape=shape,
            queries=len(queries), seconds=seconds,
            qps=len(queries) / seconds if seconds > 0 else float("inf"),
            failures=failures))
    return points
