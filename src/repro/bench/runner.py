"""Sweep runner for the Figure 12 reproduction — plus batch throughput.

Runs PWL-RRPA over the workloads of :mod:`repro.bench.workloads`, collects
the three measurements of Figure 12 per query (optimization time, #created
plans, #solved LPs), and aggregates medians per sweep point exactly as the
paper does ("Each data point corresponds to the median of 25 randomly
generated test cases").

Three serving benchmarks extend the harness beyond the paper — all three
run any registered scenario (``--scenario cloud`` / ``approx`` / custom):

* :func:`run_batch_throughput` sweeps batched optimization over worker
  counts and query sizes, reporting sustained queries/second;
* :func:`run_streaming_throughput` drives
  :meth:`repro.api.OptimizerSession.as_completed` and additionally
  reports time-to-first-result, the latency a streaming consumer sees;
* :func:`run_pool_comparison` pits the legacy cold-pool regime (spawn and
  tear down workers per batch) against one persistent session pool over
  the same sequence of batches.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from ..core import PWLRRPA, PWLRRPAOptions
from ..cloud import CloudCostModel
from .workloads import SweepPoint, SweepProfile, queries_for_point, \
    sweep_points


#: Backend configuration matching the paper's implementation for the
#: Figure 12 measurements: per-incumbent scalar pruning and no LP memo,
#: so the "#solved linear programs" panel stays comparable to the paper
#: (the vectorized batch path computes slightly past the scalar loop's
#: early exit, and cache hits are not counted as solved LPs).  The plan
#: sets themselves are identical either way.
PAPER_FAITHFUL = PWLRRPAOptions(vectorized_pruning=False, lp_cache_size=0)


@dataclass(frozen=True)
class Measurement:
    """Raw measurements for one optimized query.

    Attributes:
        point: The sweep point the query belongs to.
        seconds: Optimization wall-clock time.
        plans_created: Plans generated (incl. pruned ones).
        lps_solved: Linear programs solved.
        pareto_plans: Size of the final Pareto plan set.
        lp_seconds: Wall time spent inside LP backends.
        emptiness_lp_seconds: LP wall time of the region-emptiness cost
            center (the ``emptiness`` + ``chebyshev`` purposes) — the
            quantity the batched geometry kernels shrink.
        batch_lp_rounds: Lockstep pivot rounds of the stacked simplex
            kernel (deterministic; 0 when no miss group reached the
            stacking threshold).
        batch_lp_solves: LPs the stacked kernel answered.
        batch_lp_fallbacks: Stacked-kernel stragglers re-solved on the
            scalar path.
        batch_lp_occupancy: Mean fraction of each stacked group still
            pivoting per lockstep round.
        lp_queue_enqueued: LPs routed through the deferred futures queue
            (0 under eager/scalar dispatch).
        lp_queue_flush_size: Queue flushes triggered by a bucket
            reaching the flush size.
        lp_queue_flush_demand: Queue flushes triggered by a demanded
            ``result()``.
        lp_queue_flush_explicit: Explicit end-of-scope queue flushes.
        lp_median_stacked_group_size: LP-weighted median size of the
            groups the stacked kernel executed (0.0 when it never
            engaged).
    """

    point: SweepPoint
    seconds: float
    plans_created: int
    lps_solved: int
    pareto_plans: int
    lp_seconds: float = 0.0
    emptiness_lp_seconds: float = 0.0
    batch_lp_rounds: int = 0
    batch_lp_solves: int = 0
    batch_lp_fallbacks: int = 0
    batch_lp_occupancy: float = 0.0
    lp_queue_enqueued: int = 0
    lp_queue_flush_size: int = 0
    lp_queue_flush_demand: int = 0
    lp_queue_flush_explicit: int = 0
    lp_median_stacked_group_size: float = 0.0


@dataclass(frozen=True)
class AggregatedPoint:
    """Median measurements at one sweep point (one x-value of Figure 12).

    Attributes:
        point: The sweep point.
        median_seconds / median_plans / median_lps: Medians over the
            random queries, as plotted in Figure 12.
        samples: Number of queries aggregated.
    """

    point: SweepPoint
    median_seconds: float
    median_plans: float
    median_lps: float
    samples: int


def run_query_measurement(query, point: SweepPoint,
                          options: PWLRRPAOptions | None = None
                          ) -> Measurement:
    """Optimize one query and extract the Figure 12 measurements.

    Args:
        query: The query to optimize.
        point: Sweep point providing the cost-model resolution.
        options: Backend options; defaults to :data:`PAPER_FAITHFUL` so
            the #LPs panel reproduces the paper's algorithm (pass
            ``PWLRRPAOptions()`` to measure the accelerated engine).
    """
    optimizer = PWLRRPA(
        cost_model_factory=lambda q: CloudCostModel(
            q, resolution=point.resolution),
        options=options if options is not None else PAPER_FAITHFUL)
    result = optimizer.optimize(query)
    stats = result.stats
    return Measurement(point=point, seconds=stats.optimization_seconds,
                       plans_created=stats.plans_created,
                       lps_solved=stats.lps_solved,
                       pareto_plans=len(result.entries),
                       lp_seconds=stats.lp_seconds,
                       emptiness_lp_seconds=stats.emptiness_lp_seconds,
                       batch_lp_rounds=stats.batch_lp_rounds,
                       batch_lp_solves=stats.batch_lp_solves,
                       batch_lp_fallbacks=stats.batch_lp_fallbacks,
                       batch_lp_occupancy=stats.batch_lp_occupancy,
                       lp_queue_enqueued=stats.lp_queue_enqueued,
                       lp_queue_flush_size=stats.lp_queue_flush_size,
                       lp_queue_flush_demand=stats.lp_queue_flush_demand,
                       lp_queue_flush_explicit=stats.lp_queue_flush_explicit,
                       lp_median_stacked_group_size=(
                           stats.lp_median_stacked_group_size))


def run_point(point: SweepPoint, queries_per_point: int,
              options: PWLRRPAOptions | None = None,
              base_seed: int = 0) -> AggregatedPoint:
    """Run all random queries of one sweep point and aggregate medians."""
    measurements = [
        run_query_measurement(query, point, options=options)
        for query in queries_for_point(point, queries_per_point,
                                       base_seed=base_seed)]
    return AggregatedPoint(
        point=point,
        median_seconds=statistics.median(m.seconds for m in measurements),
        median_plans=statistics.median(
            m.plans_created for m in measurements),
        median_lps=statistics.median(m.lps_solved for m in measurements),
        samples=len(measurements))


def run_sweep(profile: SweepProfile, shape: str,
              options: PWLRRPAOptions | None = None,
              base_seed: int = 0) -> list[AggregatedPoint]:
    """Run the full sweep of one Figure 12 column (chain or star)."""
    return [run_point(point, profile.queries_per_point, options=options,
                      base_seed=base_seed)
            for point in sweep_points(profile, shape)]


# ----------------------------------------------------------------------
# Stacked-simplex kernel microbenchmark
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LPKernelPoint:
    """Stacked vs. per-LP simplex at one (shape, batch size) point.

    The pivot-round, occupancy and fallback numbers are deterministic
    (stable CRC-seeded LPs), so they join the gated CI perf baseline;
    the timings and the speedup are informational.

    Attributes:
        n_vars / n_constraints: LP shape of every problem in the batch.
        batch: Problems stacked per kernel call.
        rounds: Lockstep pivot rounds one kernel call executed.
        occupancy: Mean fraction of the batch still pivoting per round.
        fallbacks: Problems flagged back to the scalar path.
        scalar_seconds: Per-LP wall time of the scalar simplex.
        stacked_seconds: Per-LP wall time of the stacked kernel.
        speedup: ``scalar_seconds / stacked_seconds``.
    """

    n_vars: int
    n_constraints: int
    batch: int
    rounds: int
    occupancy: float
    fallbacks: int
    scalar_seconds: float
    stacked_seconds: float
    speedup: float

    def as_dict(self) -> dict:
        """JSON-ready representation (used by the CI bench artifact)."""
        return {"n_vars": self.n_vars,
                "n_constraints": self.n_constraints,
                "batch": self.batch, "rounds": self.rounds,
                "occupancy": self.occupancy,
                "fallbacks": self.fallbacks,
                "scalar_seconds": self.scalar_seconds,
                "stacked_seconds": self.stacked_seconds,
                "speedup": self.speedup}


def _lp_kernel_batch(n_vars: int, n_constraints: int, batch: int,
                     label: str) -> list[tuple]:
    """Deterministic same-signature LP batch for the kernel sweep.

    Seeds derive from a stable CRC32 digest of the point label (like
    :func:`repro.bench.workloads.queries_for_point`), so counters are
    machine- and Python-version-independent.  The first two constraint
    rows get negative right-hand sides, giving every problem the same
    artificial-column count (one stacking signature per point); every
    fourth problem is made infeasible so the sweep exercises the
    infeasibility path too.
    """
    import zlib

    import numpy as np

    problems = []
    for index in range(batch):
        seed = zlib.crc32(f"lpkernels-{label}-{index}".encode())
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n_constraints, n_vars))
        anchor = rng.uniform(-1.0, 1.0, size=n_vars)
        b = a @ anchor + rng.uniform(0.1, 2.0, size=n_constraints)
        # Exactly two rows with negative right-hand sides, so every
        # problem of the point shares one two-artificial signature.
        b[:2] = -np.abs(b[:2]) - 0.1
        b[2:] = np.abs(b[2:]) + 0.1
        if index % 4 == 3:
            # Contradictory pair: a[0] @ x <= -1 and -a[0] @ x <= -1.
            a[1] = -a[0]
            b[0] = b[1] = -1.0
        c = rng.normal(size=n_vars)
        problems.append((c, a, b, [(None, None)] * n_vars))
    return problems


def run_lp_kernel_sweep(shapes: tuple[tuple[int, int], ...] = (
                            (3, 8), (4, 14), (6, 24)),
                        batch_sizes: tuple[int, ...] = (1, 2, 4, 8, 16,
                                                        64),
                        repeats: int = 5) -> list[LPKernelPoint]:
    """Microbenchmark the stacked-tableau kernel against the scalar path.

    Every point solves the *same* deterministic LP batch twice — once
    per problem through :func:`repro.lp.solve_simplex`, once as one
    stacked :func:`repro.lp.solve_simplex_batch` call — asserts the
    answers are bit-identical, and reports the kernel's deterministic
    pivot counters next to the wall-clock speedup.
    """
    from ..lp import solve_simplex
    from ..lp.batch_simplex import solve_simplex_batch, standard_form

    points = []
    for n_vars, n_constraints in shapes:
        for batch in batch_sizes:
            label = f"{n_vars}x{n_constraints}b{batch}"
            problems = _lp_kernel_batch(n_vars, n_constraints, batch,
                                        label)
            signatures = {standard_form(*problem).signature
                          for problem in problems}
            if len(signatures) != 1:  # pragma: no cover - generator bug
                raise RuntimeError(f"mixed signatures at {label}")
            report = None
            started = time.perf_counter()
            for __ in range(repeats):
                # Time the conversion too — the product path pays it
                # per miss, and the scalar leg's solve_simplex includes
                # the same work (symmetric comparison).
                forms = [standard_form(*problem)
                         for problem in problems]
                report = solve_simplex_batch(forms)
            stacked = (time.perf_counter() - started) / (repeats * batch)
            scalar_results = None
            started = time.perf_counter()
            for __ in range(repeats):
                scalar_results = [solve_simplex(*problem)
                                  for problem in problems]
            scalar = (time.perf_counter() - started) / (repeats * batch)
            for got, want in zip(report.results, scalar_results):
                if got is None:
                    continue  # flagged straggler: solved by fallback
                assert got.status == want.status
                if got.status == "optimal":
                    assert (got.x == want.x).all()
                    assert got.objective == want.objective
            occupancy = (report.active_rounds / report.round_slots
                         if report.round_slots else 0.0)
            points.append(LPKernelPoint(
                n_vars=n_vars, n_constraints=n_constraints, batch=batch,
                rounds=report.rounds, occupancy=occupancy,
                fallbacks=report.fallbacks, scalar_seconds=scalar,
                stacked_seconds=stacked,
                speedup=scalar / stacked if stacked > 0 else float("inf")))
    return points


# ----------------------------------------------------------------------
# Deferred-queue smoke probe
# ----------------------------------------------------------------------

#: Smoke workload points probed by :func:`run_lp_queue_probe` — the
#: QUICK profile's heaviest one- and two-parameter points, where region
#: maintenance issues enough emptiness work for the queue to batch.
LP_QUEUE_SMOKE_POINTS = (
    SweepPoint(num_tables=5, shape="chain", num_params=1, resolution=2),
    SweepPoint(num_tables=4, shape="star", num_params=1, resolution=2),
    SweepPoint(num_tables=4, shape="chain", num_params=2, resolution=1),
)


@dataclass(frozen=True)
class LPQueuePoint:
    """Deferred-queue counters for one smoke workload point.

    All counter fields are deterministic (stable CRC-seeded queries,
    counter-identical queue dispatch), so they join the gated CI perf
    baseline; the timing fields are informational.

    Attributes:
        num_tables / shape / num_params / resolution: The sweep point.
        lps_solved: Linear programs solved during the run.
        queue_enqueued: LPs routed through the deferred futures queue.
        flush_size / flush_demand / flush_explicit: Queue flushes by
            trigger (bucket reached the flush size / a ``result()`` was
            demanded / explicit end-of-scope drain).
        batch_solves: LPs answered by the stacked kernel.
        median_stacked_group_size: LP-weighted median size of the
            groups the stacked kernel executed at this point.
        emptiness_lp_seconds: LP wall time of the region-emptiness cost
            center (informational).
        seconds: Optimization wall-clock time (informational).
    """

    num_tables: int
    shape: str
    num_params: int
    resolution: int
    lps_solved: int
    queue_enqueued: int
    flush_size: int
    flush_demand: int
    flush_explicit: int
    batch_solves: int
    median_stacked_group_size: float
    emptiness_lp_seconds: float
    seconds: float

    def as_dict(self) -> dict:
        """JSON-ready representation (used by the CI bench artifact)."""
        return {"num_tables": self.num_tables, "shape": self.shape,
                "num_params": self.num_params,
                "resolution": self.resolution,
                "lps_solved": self.lps_solved,
                "queue_enqueued": self.queue_enqueued,
                "flush_size": self.flush_size,
                "flush_demand": self.flush_demand,
                "flush_explicit": self.flush_explicit,
                "batch_solves": self.batch_solves,
                "median_stacked_group_size":
                    self.median_stacked_group_size,
                "emptiness_lp_seconds": self.emptiness_lp_seconds,
                "seconds": self.seconds}


@dataclass(frozen=True)
class LPQueueReport:
    """Queue probe results plus the cross-point headline median.

    Attributes:
        points: Per-workload-point counters.
        median_stacked_group_size: LP-weighted median stacked-group size
            over the *merged* histogram of all probed points — the
            number the CI gate holds at or above the stacking crossover
            (``lp.median_stacked_group_size``).
    """

    points: tuple[LPQueuePoint, ...]
    median_stacked_group_size: float

    def as_dict(self) -> dict:
        """JSON-ready representation (used by the CI bench artifact)."""
        return {"points": [point.as_dict() for point in self.points],
                "median_stacked_group_size":
                    self.median_stacked_group_size}


def run_lp_queue_probe(points: tuple[SweepPoint, ...]
                       = LP_QUEUE_SMOKE_POINTS,
                       base_seed: int = 0) -> LPQueueReport:
    """Measure the deferred LP queue on the smoke workload.

    Runs one CRC-seeded query per point through the *accelerated*
    engine (default :class:`PWLRRPAOptions` — the deferred queue and
    the stacked kernel need the memo/vectorized path, which
    :data:`PAPER_FAITHFUL` disables on purpose) and reports the queue
    counters: how many LPs were deferred, what triggered their flushes,
    and the LP-weighted median size of the groups the stacked kernel
    executed.  All counters are deterministic, so they gate in CI.
    """
    from ..lp import LPStats

    merged = LPStats()
    probe_points = []
    for point in points:
        query = queries_for_point(point, 1, base_seed=base_seed)[0]
        optimizer = PWLRRPA(
            cost_model_factory=lambda q, point=point: CloudCostModel(
                q, resolution=point.resolution),
            options=PWLRRPAOptions())
        result = optimizer.optimize(query)
        stats = result.stats
        merged.merge(stats.lp_stats)
        probe_points.append(LPQueuePoint(
            num_tables=point.num_tables, shape=point.shape,
            num_params=point.num_params, resolution=point.resolution,
            lps_solved=stats.lps_solved,
            queue_enqueued=stats.lp_queue_enqueued,
            flush_size=stats.lp_queue_flush_size,
            flush_demand=stats.lp_queue_flush_demand,
            flush_explicit=stats.lp_queue_flush_explicit,
            batch_solves=stats.batch_lp_solves,
            median_stacked_group_size=(
                stats.lp_median_stacked_group_size),
            emptiness_lp_seconds=stats.emptiness_lp_seconds,
            seconds=stats.optimization_seconds))
    return LPQueueReport(
        points=tuple(probe_points),
        median_stacked_group_size=merged.median_stacked_group_size())


# ----------------------------------------------------------------------
# Batch-engine throughput sweep
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ThroughputPoint:
    """Throughput of the batch engine at one (workers, query size) point.

    Attributes:
        workers: Worker processes (``<= 1`` means in-process serial).
        num_tables: Tables per query.
        shape: Join graph shape of the workload.
        queries: Number of distinct queries optimized.
        seconds: Wall-clock time for the whole batch.
        qps: Sustained queries per second (``queries / seconds``).
        failures: Items that did not produce a plan set.
        scenario: Scenario the workload was optimized under.
        pool: Pool regime — ``"cold"`` spawns and tears down workers per
            batch (the legacy engine), ``"persistent"`` reuses one
            session pool across batches.
    """

    workers: int
    num_tables: int
    shape: str
    queries: int
    seconds: float
    qps: float
    failures: int
    scenario: str = "cloud"
    pool: str = "cold"

    def as_dict(self) -> dict:
        """JSON-ready representation (used by the CI bench artifact)."""
        return {"workers": self.workers, "num_tables": self.num_tables,
                "shape": self.shape, "queries": self.queries,
                "seconds": self.seconds, "qps": self.qps,
                "failures": self.failures, "scenario": self.scenario,
                "pool": self.pool}


def _workload(num_tables: int, shape: str, num_queries: int,
              base_seed: int) -> list:
    from ..query import QueryGenerator
    return [
        QueryGenerator(seed=base_seed + i).generate(
            num_tables=num_tables, shape=shape, num_params=1)
        for i in range(num_queries)]


def run_batch_throughput(num_tables: int = 4, shape: str = "chain",
                         num_queries: int = 8,
                         workers_list: tuple[int, ...] = (1, 2, 4),
                         resolution: int = 2,
                         options: PWLRRPAOptions | None = None,
                         base_seed: int = 0,
                         scenario: str = "cloud") -> list[ThroughputPoint]:
    """Measure batch throughput across worker counts.

    Every worker count optimizes the *same* list of distinct random
    queries (a fresh :class:`repro.api.OptimizerSession` each, closed
    after the batch, with warm-start disabled) so points differ only in
    parallelism.

    Args:
        num_tables: Tables per generated query.
        shape: Join graph shape.
        num_queries: Distinct queries per point.
        workers_list: Worker counts to sweep (``<= 1`` is the
            single-process baseline).
        resolution: Cost-model PWL resolution.
        options: Backend options for every optimization.
        base_seed: Seed offset for query generation.
        scenario: Registered scenario name to optimize under.
    """
    from ..service import OptimizerSession

    queries = _workload(num_tables, shape, num_queries, base_seed)
    points = []
    for workers in workers_list:
        with OptimizerSession(scenario, workers=workers,
                              resolution=resolution, options=options,
                              warm_start=False) as session:
            started = time.perf_counter()
            items = session.map(queries)
            seconds = time.perf_counter() - started
        failures = sum(1 for item in items if not item.ok)
        points.append(ThroughputPoint(
            workers=workers, num_tables=num_tables, shape=shape,
            queries=len(queries), seconds=seconds,
            qps=len(queries) / seconds if seconds > 0 else float("inf"),
            failures=failures, scenario=scenario))
    return points


@dataclass(frozen=True)
class StreamingPoint:
    """Streaming-mode throughput of one session at one configuration.

    Attributes:
        workers: Worker processes (``<= 1`` means in-process serial).
        num_tables: Tables per query.
        shape: Join graph shape of the workload.
        scenario: Scenario the workload was optimized under.
        queries: Number of distinct queries streamed.
        seconds: Wall clock from submission to the last yielded result.
        first_result_seconds: Wall clock until the *first* result was
            yielded — the latency a streaming consumer sees.
        qps: Sustained queries per second.
        failures: Items that did not produce a plan set.
    """

    workers: int
    num_tables: int
    shape: str
    scenario: str
    queries: int
    seconds: float
    first_result_seconds: float
    qps: float
    failures: int

    def as_dict(self) -> dict:
        """JSON-ready representation (used by the CI bench artifact)."""
        return {"workers": self.workers, "num_tables": self.num_tables,
                "shape": self.shape, "scenario": self.scenario,
                "queries": self.queries, "seconds": self.seconds,
                "first_result_seconds": self.first_result_seconds,
                "qps": self.qps, "failures": self.failures}


def run_streaming_throughput(num_tables: int = 4, shape: str = "chain",
                             num_queries: int = 8, workers: int = 0,
                             resolution: int = 2,
                             options: PWLRRPAOptions | None = None,
                             base_seed: int = 0,
                             scenario: str = "cloud") -> StreamingPoint:
    """Measure streaming throughput of ``OptimizerSession.as_completed``.

    Results are consumed as they finish; besides queries/second the
    point records the time until the first result arrived, which batch
    mode cannot improve on (it holds everything until the batch ends).
    """
    from ..service import OptimizerSession

    queries = _workload(num_tables, shape, num_queries, base_seed)
    failures = 0
    first = None
    with OptimizerSession(scenario, workers=workers,
                          resolution=resolution, options=options,
                          warm_start=False) as session:
        started = time.perf_counter()
        for item in session.as_completed(queries):
            if first is None:
                first = time.perf_counter() - started
            if not item.ok:
                failures += 1
        seconds = time.perf_counter() - started
    return StreamingPoint(
        workers=workers, num_tables=num_tables, shape=shape,
        scenario=scenario, queries=len(queries), seconds=seconds,
        first_result_seconds=first if first is not None else seconds,
        qps=len(queries) / seconds if seconds > 0 else float("inf"),
        failures=failures)


@dataclass(frozen=True)
class AnytimeRungPoint:
    """Aggregated measurements of one precision-ladder rung.

    All values are summed over the point's queries.  The LP and plan
    counters are deterministic (stable CRC-seeded workloads), so they
    join the gated CI perf baseline; timings are informational.

    Attributes:
        rung: Ladder position (0 = coarsest).
        alpha: The rung's approximation factor.
        guarantee: End-to-end ``(1 + alpha) ** tables`` cost bound.
        lps_solved: LPs solved by the time the rung completed
            (cumulative within each run, summed over queries).
        plan_count: Final Pareto-set sizes at this rung, summed.
        seconds: Wall-clock seconds to reach the rung's completion
            (cumulative within each run, summed over queries).
    """

    rung: int
    alpha: float
    guarantee: float
    lps_solved: int
    plan_count: int
    seconds: float

    def as_dict(self) -> dict:
        """JSON-ready representation (used by the CI bench artifact)."""
        return {"rung": self.rung, "alpha": self.alpha,
                "guarantee": self.guarantee,
                "lps_solved": self.lps_solved,
                "plan_count": self.plan_count, "seconds": self.seconds}


@dataclass(frozen=True)
class AnytimeLadderReport:
    """Time-to-first-guarantee benchmark of the anytime engine.

    Compares a full precision-ladder run (coarse rungs first, each rung
    warm-starting the next) against the direct exact run for the same
    queries: how quickly is the *first* guaranteed plan set available,
    and what does the ladder's warm-starting save on the way to exact?

    Attributes:
        scenario / shape / num_tables / queries: Workload description.
        ladder: The precision ladder swept.
        rungs: Per-rung aggregates (see :class:`AnytimeRungPoint`).
        first_guarantee_seconds: Summed wall-clock until the coarsest
            rung completed — the latency to the first valid guarantee.
        ladder_seconds: Summed wall-clock for the whole ladder.
        ladder_lps: Summed LPs solved by the whole ladder.
        direct_seconds: Summed wall-clock of the direct exact runs.
        direct_lps: Summed LPs solved by the direct exact runs.
    """

    scenario: str
    shape: str
    num_tables: int
    queries: int
    ladder: tuple[float, ...]
    rungs: tuple[AnytimeRungPoint, ...]
    first_guarantee_seconds: float
    ladder_seconds: float
    ladder_lps: int
    direct_seconds: float
    direct_lps: int

    def as_dict(self) -> dict:
        """JSON-ready representation (used by the CI bench artifact)."""
        return {"scenario": self.scenario, "shape": self.shape,
                "num_tables": self.num_tables, "queries": self.queries,
                "ladder": list(self.ladder),
                "rungs": [r.as_dict() for r in self.rungs],
                "first_guarantee_seconds": self.first_guarantee_seconds,
                "ladder_seconds": self.ladder_seconds,
                "ladder_lps": self.ladder_lps,
                "direct_seconds": self.direct_seconds,
                "direct_lps": self.direct_lps}


def run_anytime_ladder(num_tables: int = 4, shape: str = "chain",
                       num_queries: int = 3, resolution: int = 2,
                       scenario: str = "cloud",
                       ladder: tuple[float, ...] | None = None,
                       base_seed: int = 0) -> AnytimeLadderReport:
    """Measure time-to-first-guarantee over a precision ladder.

    Each query runs once through the full ladder (collecting per-rung
    completion times, plan counts and LP counters from the run's
    progress events) and once through the direct exact path for
    comparison.  Workload seeds are stable CRC32 digests (see
    :func:`repro.bench.workloads.queries_for_point`), so the counter
    aggregates are machine-independent and join the CI perf baseline.
    """
    from ..core.run import DEFAULT_PRECISION_LADDER, guarantee_bound
    from ..service.registry import get_scenario

    if ladder is None:
        ladder = DEFAULT_PRECISION_LADDER
    ladder = tuple(float(a) for a in ladder)
    point = SweepPoint(num_tables=num_tables, shape=shape, num_params=1,
                       resolution=resolution)
    queries = queries_for_point(point, num_queries, base_seed=base_seed)
    scn = get_scenario(scenario)
    rung_lps = [0] * len(ladder)
    rung_plans = [0] * len(ladder)
    rung_seconds = [0.0] * len(ladder)
    first_guarantee = 0.0
    ladder_seconds = 0.0
    ladder_lps = 0
    direct_seconds = 0.0
    direct_lps = 0
    for query in queries:
        run = scn.start_run(query, resolution=resolution,
                            precision_ladder=ladder)
        run.run()
        completions = [event for event in run.events
                       if event.kind == "rung_completed"]
        first_guarantee += completions[0].seconds
        ladder_seconds += run.elapsed_seconds
        ladder_lps += run.lps_solved
        for event in completions:
            rung_lps[event.rung] += event.lps_solved
            rung_plans[event.rung] += event.plan_count
            rung_seconds[event.rung] += event.seconds
        direct = scn.optimize(query, resolution=resolution)
        direct_seconds += direct.stats.optimization_seconds
        direct_lps += direct.stats.lps_solved
    rungs = tuple(
        AnytimeRungPoint(rung=index, alpha=alpha,
                         guarantee=guarantee_bound(alpha, num_tables),
                         lps_solved=rung_lps[index],
                         plan_count=rung_plans[index],
                         seconds=rung_seconds[index])
        for index, alpha in enumerate(ladder))
    return AnytimeLadderReport(
        scenario=scenario, shape=shape, num_tables=num_tables,
        queries=len(queries), ladder=ladder, rungs=rungs,
        first_guarantee_seconds=first_guarantee,
        ladder_seconds=ladder_seconds, ladder_lps=ladder_lps,
        direct_seconds=direct_seconds, direct_lps=direct_lps)


def run_pool_comparison(num_tables: int = 3, shape: str = "chain",
                        num_queries: int = 4, workers: int = 2,
                        batches: int = 2, resolution: int = 2,
                        options: PWLRRPAOptions | None = None,
                        base_seed: int = 0,
                        scenario: str = "cloud") -> list[ThroughputPoint]:
    """Cold-pool (legacy) vs. persistent-pool (session) queries/sec.

    The same sequence of ``batches`` distinct-query batches is optimized
    twice: once with a fresh session per batch (every batch pays worker
    spawn and teardown, the legacy ``BatchOptimizer`` regime) and once
    with a single session kept open across all batches.  Both regimes
    disable the session-scoped LP memo (``lp_memo_size=0``) so the
    measured difference isolates pool spawn/teardown overhead instead of
    conflating it with cross-batch LP-memo hits only the persistent
    workers could accumulate.  Returns one aggregate
    :class:`ThroughputPoint` per regime (``pool="cold"`` /
    ``"persistent"``).
    """
    from ..service import OptimizerSession

    batched = [
        _workload(num_tables, shape, num_queries,
                  base_seed + batch * num_queries)
        for batch in range(batches)]
    points = []

    started = time.perf_counter()
    failures = 0
    for queries in batched:  # legacy regime: one pool per batch
        with OptimizerSession(scenario, workers=workers,
                              resolution=resolution, options=options,
                              warm_start=False, lp_memo_size=0) as session:
            failures += sum(1 for item in session.map(queries)
                            if not item.ok)
    seconds = time.perf_counter() - started
    total = num_queries * batches
    points.append(ThroughputPoint(
        workers=workers, num_tables=num_tables, shape=shape,
        queries=total, seconds=seconds,
        qps=total / seconds if seconds > 0 else float("inf"),
        failures=failures, scenario=scenario, pool="cold"))

    started = time.perf_counter()
    failures = 0
    with OptimizerSession(scenario, workers=workers,
                          resolution=resolution, options=options,
                          warm_start=False, lp_memo_size=0) as session:
        for queries in batched:  # one pool across every batch
            failures += sum(1 for item in session.map(queries)
                            if not item.ok)
    seconds = time.perf_counter() - started
    points.append(ThroughputPoint(
        workers=workers, num_tables=num_tables, shape=shape,
        queries=total, seconds=seconds,
        qps=total / seconds if seconds > 0 else float("inf"),
        failures=failures, scenario=scenario, pool="persistent"))
    return points
