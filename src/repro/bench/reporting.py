"""Reporting helpers: render Figure 12-style tables and series.

The paper plots log-scale curves; a terminal reproduction renders the same
series as aligned tables plus coarse ASCII log-scale charts so curve
*shapes* (exponential growth in tables, star above chain, #LPs well above
#plans) are visible at a glance.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .runner import (AggregatedPoint, AnytimeLadderReport, LPKernelPoint,
                     StreamingPoint, ThroughputPoint)


def format_table(points: Sequence[AggregatedPoint]) -> str:
    """Render aggregated sweep points as an aligned text table."""
    header = (f"{'tables':>6} {'shape':>6} {'params':>6} "
              f"{'time[s]':>10} {'#plans':>8} {'#LPs':>10} {'runs':>5}")
    lines = [header, "-" * len(header)]
    for ap in points:
        lines.append(
            f"{ap.point.num_tables:>6} {ap.point.shape:>6} "
            f"{ap.point.num_params:>6} {ap.median_seconds:>10.3f} "
            f"{ap.median_plans:>8.0f} {ap.median_lps:>10.0f} "
            f"{ap.samples:>5}")
    return "\n".join(lines)


def format_throughput_table(points: Sequence[ThroughputPoint]) -> str:
    """Render batch-throughput points with speedup over the baseline row.

    Speedup is computed per (scenario, shape, table-count, pool regime)
    workload relative to the smallest worker count measured for it
    (normally the single-process baseline).
    """
    baseline: dict[tuple, ThroughputPoint] = {}
    for tp in points:
        key = (tp.scenario, tp.shape, tp.num_tables, tp.pool)
        if key not in baseline or tp.workers < baseline[key].workers:
            baseline[key] = tp
    header = (f"{'scenario':>8} {'shape':>6} {'tables':>6} {'pool':>10} "
              f"{'queries':>8} {'workers':>8} {'time[s]':>10} {'qps':>8} "
              f"{'speedup':>8} {'fail':>5}")
    lines = [header, "-" * len(header)]
    for tp in points:
        base = baseline[(tp.scenario, tp.shape, tp.num_tables, tp.pool)]
        speedup = tp.qps / base.qps if base.qps > 0 else float("nan")
        lines.append(
            f"{tp.scenario:>8} {tp.shape:>6} {tp.num_tables:>6} "
            f"{tp.pool:>10} {tp.queries:>8} {tp.workers:>8} "
            f"{tp.seconds:>10.3f} {tp.qps:>8.2f} "
            f"{speedup:>7.2f}x {tp.failures:>5}")
    return "\n".join(lines)


def format_pool_comparison(points: Sequence[ThroughputPoint]) -> str:
    """Render cold-vs-persistent pool points with the persistent gain."""
    cold = {(tp.scenario, tp.shape, tp.num_tables, tp.workers): tp
            for tp in points if tp.pool == "cold"}
    lines = [format_throughput_table(points)]
    for tp in points:
        if tp.pool != "persistent":
            continue
        base = cold.get((tp.scenario, tp.shape, tp.num_tables, tp.workers))
        if base is not None and tp.qps > 0:
            lines.append(
                f"persistent pool vs cold ({tp.scenario}, {tp.shape}, "
                f"{tp.num_tables} tables, {tp.workers} workers): "
                f"{tp.qps / base.qps:.2f}x qps")
    return "\n".join(lines)


def format_streaming_table(points: Sequence[StreamingPoint]) -> str:
    """Render streaming-throughput points (with time-to-first-result)."""
    header = (f"{'scenario':>8} {'shape':>6} {'tables':>6} {'queries':>8} "
              f"{'workers':>8} {'time[s]':>10} {'first[s]':>9} "
              f"{'qps':>8} {'fail':>5}")
    lines = [header, "-" * len(header)]
    for sp in points:
        lines.append(
            f"{sp.scenario:>8} {sp.shape:>6} {sp.num_tables:>6} "
            f"{sp.queries:>8} {sp.workers:>8} {sp.seconds:>10.3f} "
            f"{sp.first_result_seconds:>9.3f} {sp.qps:>8.2f} "
            f"{sp.failures:>5}")
    return "\n".join(lines)


def format_lp_kernel_table(points: Sequence[LPKernelPoint]) -> str:
    """Render the stacked-vs-scalar simplex sweep as an aligned table.

    Shows the deterministic kernel counters (lockstep pivot rounds,
    batch occupancy, scalar fallbacks) next to the per-LP timings, so
    nightly artifacts track batch occupancy and the stacked kernel's
    crossover point over time.
    """
    header = (f"{'vars':>5} {'cons':>5} {'batch':>6} {'rounds':>7} "
              f"{'occ':>6} {'fallbk':>6} {'scalar[us]':>11} "
              f"{'stacked[us]':>12} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.n_vars:>5} {point.n_constraints:>5} "
            f"{point.batch:>6} {point.rounds:>7} "
            f"{point.occupancy:>6.2f} {point.fallbacks:>6} "
            f"{point.scalar_seconds * 1e6:>11.1f} "
            f"{point.stacked_seconds * 1e6:>12.1f} "
            f"{point.speedup:>7.2f}x")
    return "\n".join(lines)


def format_anytime_ladder(report: AnytimeLadderReport) -> str:
    """Render a time-to-first-guarantee report as an aligned table."""
    header = (f"{'rung':>4} {'alpha':>6} {'bound':>7} {'plans':>6} "
              f"{'#LPs':>8} {'time[s]':>9}")
    lines = [f"anytime ladder — {report.scenario}, {report.shape}, "
             f"{report.num_tables} tables, {report.queries} queries",
             header, "-" * len(header)]
    for rung in report.rungs:
        lines.append(
            f"{rung.rung:>4} {rung.alpha:>6.2f} {rung.guarantee:>7.3f} "
            f"{rung.plan_count:>6} {rung.lps_solved:>8} "
            f"{rung.seconds:>9.3f}")
    lines.append(
        f"first guarantee after {report.first_guarantee_seconds:.3f}s "
        f"(direct exact: {report.direct_seconds:.3f}s, "
        f"{report.direct_lps} LPs; full ladder: "
        f"{report.ladder_seconds:.3f}s, {report.ladder_lps} LPs)")
    return "\n".join(lines)


def ascii_log_chart(series: dict[str, list[tuple[int, float]]],
                    title: str, width: int = 50) -> str:
    """Render ``label -> [(x, y), ...]`` series as a log-scale ASCII chart.

    Each series becomes one row block: x values as columns, bar length
    proportional to ``log10(y)``.
    """
    lines = [title]
    all_values = [y for pts in series.values() for __, y in pts if y > 0]
    if not all_values:
        return title + "\n(no data)"
    max_log = max(math.log10(max(v, 1e-9)) for v in all_values)
    min_log = min(math.log10(max(v, 1e-9)) for v in all_values)
    span = max(max_log - min_log, 1e-9)
    for label, pts in series.items():
        lines.append(f"  {label}:")
        for x, y in pts:
            frac = (math.log10(max(y, 1e-9)) - min_log) / span
            bar = "#" * max(1, int(round(frac * width)))
            lines.append(f"    x={x:>3}  {bar}  {y:.3g}")
    return "\n".join(lines)


def figure12_report(chain: Sequence[AggregatedPoint],
                    star: Sequence[AggregatedPoint]) -> str:
    """Full Figure 12 report: both columns, all three panels."""
    sections = ["=== Figure 12 reproduction (medians per sweep point) ===",
                "", "--- Chain queries ---", format_table(chain),
                "", "--- Star queries ---", format_table(star), ""]
    for metric, attr in (("Optimization time [s]", "median_seconds"),
                         ("#Created plans", "median_plans"),
                         ("#Solved linear programs", "median_lps")):
        for label, pts in (("chain", chain), ("star", star)):
            series = {}
            for params in (1, 2):
                xs = [(ap.point.num_tables, getattr(ap, attr))
                      for ap in pts if ap.point.num_params == params]
                if xs:
                    series[f"{params} param(s)"] = xs
            sections.append(ascii_log_chart(
                series, f"{metric} — {label} queries (log scale)"))
            sections.append("")
    return "\n".join(sections)
