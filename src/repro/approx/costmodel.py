"""Approximate-query-processing cost model (Scenario 2).

The paper's second motivating scenario: embedded SQL with approximate
query processing, where "execution time can be traded against result
precision" (Section 1, citing BlinkDB).  Metrics are ``time`` and
``precision_loss`` (= 1 - precision, so lower is better per Section 2's
transformation of quality metrics).

Sampled scans read only a fraction of their table: they are faster but
introduce precision loss.  Precision loss accumulates with ``max`` — the
least precise input bounds the result's precision — which exercises the
non-additive accumulation path of Algorithm 3 ("the code can easily be
generalized ... weighted sum, minimum, or maximum").
"""

from __future__ import annotations

from ..cost import (APPROX_METRICS, MultiObjectivePWL, ParamPolynomial,
                    SharedPartition)
from ..errors import PlanError
from ..plans import (FULL_SCAN, SAMPLED_SCAN_10, SAMPLED_SCAN_50,
                     SINGLE_NODE_HASH_JOIN, JoinOperator, Plan, JoinPlan,
                     ScanOperator, ScanPlan)
from ..query import Query
from ..cloud.cluster import DEFAULT_CLUSTER, ClusterSpec


class ApproxCostModel:
    """Time vs. precision-loss cost model for approximate processing.

    Args:
        query: The query being optimized.
        resolution: PWL grid resolution per parameter axis.
        cluster: Hardware model (reuses the Cloud cluster constants).
        partition: Optional pre-built shared partition.
    """

    metrics = APPROX_METRICS

    def __init__(self, query: Query, resolution: int = 2,
                 cluster: ClusterSpec = DEFAULT_CLUSTER,
                 partition: SharedPartition | None = None) -> None:
        self.query = query
        self.cluster = cluster
        self.num_params = max(1, query.num_params)
        if partition is None:
            partition = SharedPartition([0.0] * self.num_params,
                                        [1.0] * self.num_params,
                                        resolution)
        if partition.dim != self.num_params:
            raise ValueError("partition dimension != query parameter count")
        self.partition = partition
        self._vector_cache: dict[tuple, MultiObjectivePWL] = {}

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def scan_operators(self, table: str) -> tuple[ScanOperator, ...]:
        """Exact scan plus the two sampled variants."""
        return (FULL_SCAN, SAMPLED_SCAN_50, SAMPLED_SCAN_10)

    def join_operators(self) -> tuple[JoinOperator, ...]:
        """Approximate processing runs embedded: single-node join only."""
        return (SINGLE_NODE_HASH_JOIN,)

    # ------------------------------------------------------------------
    # Exact polynomial formulas
    # ------------------------------------------------------------------

    def scan_cost_polynomials(self, plan: ScanPlan
                              ) -> dict[str, ParamPolynomial]:
        """Time shrinks with the sampling rate; loss is ``1 - rate``."""
        table = self.query.catalog.table(plan.table)
        rate = plan.operator.sampling_rate
        constant = lambda v: ParamPolynomial.constant(self.num_params, v)
        time = constant(self.cluster.scan_hours_per_tuple
                        * table.cardinality * rate)
        loss = constant(1.0 - rate)
        return {"time": time, "precision_loss": loss}

    def join_cost_polynomials(self, left_tables: frozenset[str],
                              right_tables: frozenset[str],
                              operator: JoinOperator
                              ) -> dict[str, ParamPolynomial]:
        """Hash-join time over exact cardinalities; joins add no loss."""
        if operator.name != SINGLE_NODE_HASH_JOIN.name:
            raise PlanError(f"unsupported join {operator.name!r}")
        left = self.query.cardinality(left_tables).lifted(self.num_params)
        right = self.query.cardinality(right_tables).lifted(self.num_params)
        output = self.query.cardinality(
            left_tables | right_tables).lifted(self.num_params)
        time = (left + right + output) * self.cluster.process_hours_per_tuple
        zero = ParamPolynomial.constant(self.num_params, 0.0)
        return {"time": time, "precision_loss": zero}

    def plan_cost_polynomials(self, plan: Plan
                              ) -> dict[str, ParamPolynomial]:
        """Exact plan cost: time adds, precision loss is the subtree max.

        Because each leaf's loss is a *constant* polynomial, the max over
        sub-plans is well-defined without region splitting here.
        """
        if isinstance(plan, ScanPlan):
            return self.scan_cost_polynomials(plan)
        if isinstance(plan, JoinPlan):
            left = self.plan_cost_polynomials(plan.left)
            right = self.plan_cost_polynomials(plan.right)
            local = self.join_cost_polynomials(
                plan.left.tables, plan.right.tables, plan.operator)
            time = left["time"] + right["time"] + local["time"]
            loss_values = []
            for part in (left, right, local):
                poly = part["precision_loss"]
                if poly.degree() > 0:
                    raise PlanError("non-constant precision loss")
                loss_values.append(poly.evaluate([0.0] * self.num_params))
            loss = ParamPolynomial.constant(self.num_params,
                                            max(loss_values))
            return {"time": time, "precision_loss": loss}
        raise PlanError(f"unknown plan node {plan!r}")

    # ------------------------------------------------------------------
    # PWL cost functions
    # ------------------------------------------------------------------

    def _vector(self, key: tuple, polys) -> MultiObjectivePWL:
        cached = self._vector_cache.get(key)
        if cached is None:
            cached = self.partition.vector_from_polynomials(polys)
            self._vector_cache[key] = cached
        return cached

    def scan_cost(self, plan: ScanPlan) -> MultiObjectivePWL:
        """PWL cost function of a scan plan."""
        key = ("scan", plan.table, plan.operator.name)
        return self._vector(key, self.scan_cost_polynomials(plan))

    def join_local_cost(self, left_tables: frozenset[str],
                        right_tables: frozenset[str],
                        operator: JoinOperator) -> MultiObjectivePWL:
        """PWL cost function of the join operator itself."""
        key = ("join", tuple(sorted(left_tables)),
               tuple(sorted(right_tables)), operator.name)
        return self._vector(key, self.join_cost_polynomials(
            left_tables, right_tables, operator))
