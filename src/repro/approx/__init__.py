"""Scenario 2 substrate: approximate processing (time vs. precision loss)."""

from .costmodel import ApproxCostModel

__all__ = ["ApproxCostModel"]
