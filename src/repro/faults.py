"""Deterministic fault-injection substrate: named failpoints.

Robustness code that is only exercised by real crashes is dead code
until the worst moment.  This module gives every recovery path in the
tree a *deterministic* trigger: a **failpoint** is a named injection
site (``failpoint("store.put.fail")``) that is a no-op until a fault
schedule activates it.  Schedules are seeded and hit-count based — no
clocks, no entropy — so a chaos run injects exactly the same faults at
exactly the same points on every machine, and the recovery counters it
gates (``faults.injected``, ``serve.shard_respawns``, ...) are exact.

Activation goes through the central knob registry
(:mod:`repro.config`): set ``REPRO_FAULTS`` to a schedule string, or
call :func:`install` from a test/benchmark.  With the knob unset every
``failpoint()`` call is one module-global load plus an ``is None``
check — the sites compile away to no-ops in production.

Schedule grammar (``docs/robustness.md`` has the full catalog)::

    REPRO_FAULTS = term [ ";" term ]...
    term         = site ":" hits [ ":" arg ]
    hits         = "*" | N | N "-" M | N "+"     (1-based hit numbers)

``store.put.fail:1`` fires on the first ``store.put.fail`` hit only;
``serve.shard.die:1-6`` on hits 1 through 6; ``service.worker.hang:2+``
on every hit from the second on; ``*`` on every hit.  The optional
``arg`` parameterizes the action (sleep seconds for ``sleep`` sites, a
message otherwise).  Unknown site names fail loudly at parse time.

Site action kinds (:data:`SITES`):

* ``raise`` — raise :class:`InjectedFault` at the call site;
* ``sleep`` — block for ``arg`` seconds (default
  :data:`DEFAULT_SLEEP_SECONDS`), simulating a slow component;
* ``exit`` — ``os._exit`` the process, but **only** when running in a
  child process (a pool worker or a spawned test process); in the main
  process the site degrades to ``raise`` so a schedule can never kill
  the gateway, the test runner or a user's shell;
* ``flag`` — return the term's ``arg`` (or ``True``) to the call site,
  which interprets it (e.g. poisoning a worker result).

Hit counters are per-process and thread-safe; every fired fault is
recorded in :data:`STATS` (surfaced by gateway ``/metrics`` and gated
by ``bench_compare.py --chaos``).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import threading
import time

from . import config

#: Exit code used by ``exit``-kind failpoints so tests can tell an
#: injected crash apart from any genuine failure.
FAULT_EXIT_CODE = 43

#: Sleep applied by ``sleep``-kind failpoints without an ``arg``.
DEFAULT_SLEEP_SECONDS = 0.05

#: Every registered injection site: name -> action kind.  A schedule
#: naming an unknown site is a :class:`ValueError` at parse time.
SITES: dict[str, str] = {
    # worker pool (repro.service.session._optimize_payload)
    "service.worker.crash": "exit",
    "service.worker.hang": "sleep",
    "service.worker.poison": "flag",
    # serving gateway (repro.serve.gateway)
    "serve.shard.die": "raise",
    "serve.shard.slow": "sleep",
    "serve.stream.disconnect": "raise",
    # persistent plan-set store (repro.store.store.PlanSetStore.put)
    "store.put.fail": "raise",
    "store.put.locked": "raise",
    "store.put.torn": "exit",
    # LP substrate (repro.lp.solver.LinearProgramSolver.solve)
    "lp.solver.fail": "raise",
}


class InjectedFault(RuntimeError):
    """The exception raised by an active ``raise``-kind failpoint."""


class FaultStats:
    """Thread-safe per-process counters of fired faults."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.injected = 0
        self._by_site: dict[str, int] = {}

    def record(self, site: str) -> None:
        with self._lock:
            self.injected += 1
            self._by_site[site] = self._by_site.get(site, 0) + 1

    def reset(self) -> None:
        with self._lock:
            self.injected = 0
            self._by_site = {}

    def snapshot(self) -> dict:
        """``{"injected": total, "sites": {site: count}}``."""
        with self._lock:
            return {"injected": self.injected,
                    "sites": dict(sorted(self._by_site.items()))}


#: Process-wide fault counters (reset by :func:`reset`/:func:`install`).
STATS = FaultStats()


class _Term:
    """One parsed schedule term: a site, a hit window, an argument."""

    __slots__ = ("site", "first", "last", "arg")

    def __init__(self, site: str, first: int, last: float,
                 arg: str | None) -> None:
        self.site = site
        self.first = first
        self.last = last
        self.arg = arg

    def matches(self, hit: int) -> bool:
        return self.first <= hit <= self.last


def _parse_hits(site: str, text: str) -> tuple[int, float]:
    """Parse the ``hits`` field into an inclusive ``(first, last)``."""
    text = text.strip()
    if text == "*":
        return 1, math.inf
    try:
        if text.endswith("+"):
            first = int(text[:-1])
            last: float = math.inf
        elif "-" in text:
            lo, __, hi = text.partition("-")
            first, last = int(lo), int(hi)
        else:
            first = int(text)
            last = first
    except ValueError:
        raise ValueError(
            f"REPRO_FAULTS: bad hit window {text!r} for site {site!r} "
            f"(expected '*', N, N-M or N+)") from None
    if first < 1 or last < first:
        raise ValueError(
            f"REPRO_FAULTS: bad hit window {text!r} for site {site!r} "
            f"(hit numbers are 1-based and ranges ascending)")
    return first, last


class FaultSchedule:
    """A parsed fault schedule with per-site deterministic hit counts."""

    def __init__(self, terms: list[_Term], spec: str) -> None:
        self.spec = spec
        self._terms: dict[str, list[_Term]] = {}
        for term in terms:
            self._terms.setdefault(term.site, []).append(term)
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()

    def hit(self, site: str):
        """Count one hit of ``site``; fire when a term's window matches.

        Sites the schedule does not name return immediately without
        counting, so an active schedule perturbs only the sites it
        targets.
        """
        terms = self._terms.get(site)
        if terms is None:
            return None
        with self._lock:
            count = self._hits.get(site, 0) + 1
            self._hits[site] = count
        for term in terms:
            if term.matches(count):
                return _fire(site, term)
        return None


def _fire(site: str, term: _Term):
    """Perform one fired fault's action (see the module docstring)."""
    STATS.record(site)
    kind = SITES[site]
    if kind == "sleep":
        time.sleep(float(term.arg) if term.arg
                   else DEFAULT_SLEEP_SECONDS)
        return None
    if kind == "exit" and multiprocessing.parent_process() is not None:
        os._exit(FAULT_EXIT_CODE)
    if kind == "flag":
        return term.arg if term.arg is not None else True
    # "raise" sites — and "exit" sites reached in the main process,
    # which must never be killed by a schedule.
    suffix = f": {term.arg}" if term.arg else ""
    raise InjectedFault(f"injected fault at {site}{suffix}")


def parse_schedule(spec: str) -> FaultSchedule:
    """Parse a ``REPRO_FAULTS`` schedule string.

    Raises:
        ValueError: On malformed terms or unknown site names — a typo'd
            schedule must fail loudly, not silently inject nothing.
    """
    terms: list[_Term] = []
    for raw_term in spec.split(";"):
        raw_term = raw_term.strip()
        if not raw_term:
            continue
        fields = raw_term.split(":", 2)
        if len(fields) < 2:
            raise ValueError(
                f"REPRO_FAULTS: malformed term {raw_term!r} "
                f"(expected 'site:hits[:arg]')")
        site = fields[0].strip()
        if site not in SITES:
            known = ", ".join(sorted(SITES))
            raise ValueError(
                f"REPRO_FAULTS: unknown failpoint site {site!r} "
                f"(known sites: {known})")
        first, last = _parse_hits(site, fields[1])
        arg = fields[2].strip() if len(fields) > 2 else None
        terms.append(_Term(site, first, last, arg))
    if not terms:
        raise ValueError("REPRO_FAULTS: schedule names no terms")
    return FaultSchedule(terms, spec)


#: Sentinel: the environment knob has not been consulted yet.
_UNLOADED = object()

#: The active schedule — ``_UNLOADED`` before the first ``failpoint()``
#: call, ``None`` when faults are disabled, else a ``FaultSchedule``.
_schedule = _UNLOADED


def _load() -> FaultSchedule | None:
    """Resolve the schedule from ``REPRO_FAULTS`` (once, lazily)."""
    global _schedule
    spec = config.value("REPRO_FAULTS")
    _schedule = parse_schedule(spec) if spec else None
    return _schedule


def failpoint(site: str):
    """One injection site.  Inert (`None`, near-zero cost) unless a
    schedule targets ``site``; otherwise may raise, sleep, exit a child
    process, or return a flag value — see the module docstring.
    """
    schedule = _schedule
    if schedule is None:
        return None
    if schedule is _UNLOADED:
        schedule = _load()
        if schedule is None:
            return None
    return schedule.hit(site)


def active() -> bool:
    """Whether a fault schedule is currently installed."""
    schedule = _schedule
    if schedule is _UNLOADED:
        schedule = _load()
    return schedule is not None


def install(spec: str | None) -> FaultSchedule | None:
    """Install a schedule programmatically (tests, chaos benchmarks).

    Overrides the environment knob for this process.  ``None``
    explicitly disables all failpoints.  Resets hit counts and
    :data:`STATS` so schedules compose deterministically across phases.
    """
    global _schedule
    _schedule = parse_schedule(spec) if spec is not None else None
    STATS.reset()
    return _schedule


def reset() -> None:
    """Forget any installed schedule and re-read ``REPRO_FAULTS`` on
    the next :func:`failpoint` call; zero :data:`STATS`."""
    global _schedule
    _schedule = _UNLOADED
    STATS.reset()


def snapshot() -> dict:
    """Fired-fault counters of this process (:class:`FaultStats`)."""
    return STATS.snapshot()
