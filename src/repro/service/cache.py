"""Warm-start cache: serialized Pareto plan sets keyed by query signature.

The MPQ workflow (Figure 2 of the paper) already splits optimization from
run-time selection; a long-running service takes the next step and reuses
*whole optimization outcomes* across queries.  The cache stores the JSON
documents produced by :mod:`repro.core.serialize`, bounded by an LRU
policy, with optional persistence to a directory so warm state survives
process restarts (and can be shared between worker fleets).

Since the anytime redesign every entry carries an **alpha tag**: the
approximation rung the producing run achieved (``0`` for exact results,
the rung's alpha for plan sets an interrupted precision-ladder run left
behind).  Lookups state the loosest guarantee they accept
(``get(signature, max_alpha=...)``), so a partial anytime result can
never masquerade as an exact one, and a coarser entry never overwrites a
tighter one.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading

from ..core import StoredPlanSet, decode_plan_set
from ..util import BoundedLRU


class WarmStartCache:
    """Bounded LRU cache of serialized plan-set documents.

    In-memory accesses are lock-protected: an optimizer session's pool
    feeds late (post-deadline) results into the cache from its executor
    callback thread while the main thread keeps reading it.

    Args:
        maxsize: Maximum number of in-memory entries (LRU eviction);
            ``0`` disables the in-memory tier (the persistent tiers,
            when configured, still work).
        directory: Optional directory for JSON persistence; entries are
            written as ``<signature>.json`` and read back on memory
            misses, so the directory acts as a second cache tier.
        store: Optional :class:`repro.store.PlanSetStore` acting as the
            persistent tier between memory and the directory: misses
            consult it, puts write through to it (the store applies the
            same coarser-never-overwrites-tighter rule), and one store
            can be shared by many caches (e.g. gateway shards).  The
            cache does not own the store's lifecycle — whoever created
            it closes it.
    """

    def __init__(self, maxsize: int = 128,
                 directory: str | os.PathLike | None = None,
                 store=None) -> None:
        self.maxsize = maxsize
        self.directory = os.fspath(directory) if directory else None
        if self.directory:
            os.makedirs(self.directory, exist_ok=True)
        self.store = store
        self._data = BoundedLRU(maxsize)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, signature: str) -> bool:
        with self._lock:
            if signature in self._data:
                return True
        return self._path_for(signature) is not None

    def _path_for(self, signature: str) -> str | None:
        if not self.directory:
            return None
        path = os.path.join(self.directory, f"{signature}.json")
        return path if os.path.exists(path) else None

    @staticmethod
    def _unwrap(stored: dict) -> tuple[dict, float]:
        """Split a stored entry into ``(doc, alpha)``.

        Entries written before the anytime redesign are bare plan-set
        documents; they count as exact (``alpha = 0``).
        """
        if "plan_set" in stored and "alpha" in stored:
            return stored["plan_set"], float(stored["alpha"])
        return stored, 0.0

    def get_entry(self, signature: str) -> tuple[dict, float] | None:
        """Return ``(document, alpha)`` for a cached entry, or ``None``.

        ``alpha`` is the approximation tag of the stored plan set: the
        rung the producing run reached (``0`` for exact results).
        Corrupt or unreadable disk entries (a truncated file, a foreign
        schema in a shared directory) count as misses rather than
        failing the caller — the query is simply re-optimized.
        """
        with self._lock:
            stored = self._data.get(signature)
            if stored is not None:
                self.hits += 1
                return self._unwrap(stored)
        entry = self._store_entry(signature)
        if entry is not None:
            doc, alpha = entry
            with self._lock:
                self._data.put(signature, {"alpha": alpha,
                                           "plan_set": doc})
                self.hits += 1
            return entry
        path = self._path_for(signature)
        if path is not None:
            try:
                with open(path, encoding="utf-8") as handle:
                    stored = json.load(handle)
            except (OSError, ValueError):
                with self._lock:
                    self.misses += 1
                return None
            with self._lock:
                self._data.put(signature, stored)
                self.hits += 1
            return self._unwrap(stored)
        with self._lock:
            self.misses += 1
        return None

    def _store_entry(self, signature: str,
                     max_alpha: float | None = None
                     ) -> tuple[dict, float] | None:
        """Read ``(doc, alpha)`` from the persistent store tier, if any.

        Store errors (a closed or concurrently rebuilt store) count as
        misses — the query is re-optimized rather than failing.
        """
        if self.store is None:
            return None
        try:
            doc = self.store.get(signature, max_alpha=max_alpha)
        except Exception:  # reprolint: disable=REP601
            return None  # store unavailable: counts as a miss
        if doc is None:
            return None
        return doc, float(doc.get("alpha", 0.0))

    def _disk_entry(self, signature: str) -> tuple[dict, float] | None:
        """Read ``(doc, alpha)`` straight from the disk tier, if any."""
        path = self._path_for(signature)
        if path is None:
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                return self._unwrap(json.load(handle))
        except (OSError, ValueError):
            return None

    def get(self, signature: str,
            max_alpha: float | None = None) -> dict | None:
        """Return the cached plan-set document, or ``None`` on a miss.

        Args:
            signature: Cache key.
            max_alpha: Only accept entries whose approximation tag is at
                most this loose — an entry produced by an interrupted
                anytime run (rung alpha above the caller's target) then
                counts as a miss instead of silently serving a coarser
                guarantee.  ``None`` accepts any tag (the pre-anytime
                behavior, when every entry was exact for its signature).
                When the in-memory entry is too coarse, the disk tier is
                still consulted — another process sharing the directory
                may have written a tighter one.
        """
        entry = self.get_entry(signature)
        if entry is None:
            return None
        doc, alpha = entry
        if max_alpha is not None and alpha > max_alpha + 1e-12:
            # Too coarse in memory; a tighter entry may live in the
            # store or on disk (written by another process/shard).
            tighter = self._store_entry(signature, max_alpha=max_alpha)
            if tighter is None:
                disk = self._disk_entry(signature)
                if disk is not None and disk[1] <= max_alpha + 1e-12:
                    tighter = disk
            if tighter is not None:
                doc, alpha = tighter
                with self._lock:
                    self._data.put(signature,
                                   {"alpha": alpha, "plan_set": doc})
                return doc
            with self._lock:
                self.hits -= 1  # reclassify: tag too coarse is a miss
                self.misses += 1
            return None
        return doc

    def load(self, signature: str) -> StoredPlanSet | None:
        """Like :meth:`get`, but decoded into a :class:`StoredPlanSet`.

        Returns ``None`` for undecodable documents as well as misses.
        """
        doc = self.get(signature)
        if doc is None:
            return None
        try:
            return decode_plan_set(doc)
        except Exception:  # reprolint: disable=REP601
            return None  # undecodable document counts as a miss

    def put(self, signature: str, doc: dict,
            alpha: float = 0.0) -> None:
        """Insert a plan-set document, persisting it when configured.

        ``alpha`` tags the entry with the guarantee rung the producing
        run achieved (``0`` = exact).  A coarser entry never overwrites
        a tighter one under the same signature — an interrupted anytime
        run cannot degrade a previously cached exact result.

        Disk writes go through a writer-unique temp file plus atomic
        rename, so concurrent processes sharing one directory never
        install a half-written document.
        """
        alpha = float(alpha)
        stored = {"alpha": alpha, "plan_set": doc}
        if self.store is not None:
            # Write-through to the persistent store tier; the store
            # applies the coarser-never-overwrites-tighter rule itself
            # and joins family metadata registered at miss time.  The
            # stored document must carry the tag it is cached under.
            store_doc = doc
            if abs(float(doc.get("alpha", 0.0)) - alpha) > 1e-12:
                store_doc = dict(doc, alpha=alpha)
            try:
                self.store.put(signature, store_doc)
            except Exception:
                # Persistent tier unavailable (disk fault, locked or
                # closed database): absorb — memory/disk tiers still
                # serve — but count it so operators can see the store
                # silently shedding writes.
                self.store.counters.write_faults_absorbed += 1
        if self.directory and alpha > 1e-12:
            # Consult the shared disk tier *before* touching memory: a
            # tighter entry written by another process must veto both
            # tiers, or the coarser entry would shadow it in memory.
            # (Exact entries skip the read — nothing can be tighter.)
            # Best-effort under concurrent writers: two simultaneous
            # puts can interleave read and rename, so a racing coarser
            # writer may still land last; readers stating max_alpha
            # re-optimize in that case rather than degrade silently.
            disk = self._disk_entry(signature)
            if disk is not None and disk[1] < alpha - 1e-12:
                return
        with self._lock:
            existing = self._data.get(signature)
            if existing is not None and (
                    self._unwrap(existing)[1] < alpha - 1e-12):
                return  # keep the tighter entry
            self._data.put(signature, stored)
        if self.directory:
            path = os.path.join(self.directory, f"{signature}.json")
            fd, tmp = tempfile.mkstemp(dir=self.directory,
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(stored, handle)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
