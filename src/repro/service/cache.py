"""Warm-start cache: serialized Pareto plan sets keyed by query signature.

The MPQ workflow (Figure 2 of the paper) already splits optimization from
run-time selection; a long-running service takes the next step and reuses
*whole optimization outcomes* across queries.  The cache stores the JSON
documents produced by :mod:`repro.core.serialize`, bounded by an LRU
policy, with optional persistence to a directory so warm state survives
process restarts (and can be shared between worker fleets).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading

from ..core import StoredPlanSet, decode_plan_set
from ..util import BoundedLRU


class WarmStartCache:
    """Bounded LRU cache of serialized plan-set documents.

    In-memory accesses are lock-protected: an optimizer session's pool
    feeds late (post-deadline) results into the cache from its executor
    callback thread while the main thread keeps reading it.

    Args:
        maxsize: Maximum number of in-memory entries (LRU eviction);
            ``0`` disables the in-memory tier (the disk tier, when
            configured, still works).
        directory: Optional directory for JSON persistence; entries are
            written as ``<signature>.json`` and read back on memory
            misses, so the directory acts as a second cache tier.
    """

    def __init__(self, maxsize: int = 128,
                 directory: str | os.PathLike | None = None) -> None:
        self.maxsize = maxsize
        self.directory = os.fspath(directory) if directory else None
        if self.directory:
            os.makedirs(self.directory, exist_ok=True)
        self._data = BoundedLRU(maxsize)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, signature: str) -> bool:
        with self._lock:
            if signature in self._data:
                return True
        return self._path_for(signature) is not None

    def _path_for(self, signature: str) -> str | None:
        if not self.directory:
            return None
        path = os.path.join(self.directory, f"{signature}.json")
        return path if os.path.exists(path) else None

    def get(self, signature: str) -> dict | None:
        """Return the cached plan-set document, or ``None`` on a miss.

        Corrupt or unreadable disk entries (a truncated file, a foreign
        schema in a shared directory) count as misses rather than
        failing the caller — the query is simply re-optimized.
        """
        with self._lock:
            doc = self._data.get(signature)
            if doc is not None:
                self.hits += 1
                return doc
        path = self._path_for(signature)
        if path is not None:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
            except (OSError, ValueError):
                with self._lock:
                    self.misses += 1
                return None
            with self._lock:
                self._data.put(signature, doc)
                self.hits += 1
            return doc
        with self._lock:
            self.misses += 1
        return None

    def load(self, signature: str) -> StoredPlanSet | None:
        """Like :meth:`get`, but decoded into a :class:`StoredPlanSet`.

        Returns ``None`` for undecodable documents as well as misses.
        """
        doc = self.get(signature)
        if doc is None:
            return None
        try:
            return decode_plan_set(doc)
        except Exception:
            return None

    def put(self, signature: str, doc: dict) -> None:
        """Insert a plan-set document, persisting it when configured.

        Disk writes go through a writer-unique temp file plus atomic
        rename, so concurrent processes sharing one directory never
        install a half-written document.
        """
        with self._lock:
            self._data.put(signature, doc)
        if self.directory:
            path = os.path.join(self.directory, f"{signature}.json")
            fd, tmp = tempfile.mkstemp(dir=self.directory,
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(doc, handle)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
