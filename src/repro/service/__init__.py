"""Optimization service: sessions, scenarios, caching, legacy batch API.

Public API:

* :class:`OptimizerSession` — the unified front door: persistent worker
  pool, session-scoped caches, ``submit``/``as_completed``/``map``
  submission over named scenarios (see also :mod:`repro.api`).
* :class:`Scenario` / :class:`ScenarioRegistry` /
  :func:`register_scenario` / :func:`get_scenario` /
  :func:`available_scenarios` — the pluggable scenario registry with
  built-in ``"cloud"`` and ``"approx"`` workloads.
* :class:`BatchItem` — outcome of one submitted query.
* :class:`BatchOptimizer` / :class:`BatchOptions` — deprecated batch
  engine, kept as a thin wrapper over a session.
* :class:`WarmStartCache` — LRU (optionally disk-backed) cache of
  serialized Pareto plan sets.
* :func:`query_signature` / :func:`signature_document` — the cache key:
  a digest of the query's join graph, statistics, scenario and
  cost-model config.
"""

from .batch import BatchOptimizer, BatchOptions
from .cache import WarmStartCache
from .registry import (Scenario, ScenarioRegistry, available_scenarios,
                       default_registry, get_scenario, register_scenario)
from .session import STATUSES, BatchItem, OptimizerSession
from .signature import query_signature, signature_document

__all__ = [
    "STATUSES",
    "BatchItem",
    "BatchOptimizer",
    "BatchOptions",
    "OptimizerSession",
    "Scenario",
    "ScenarioRegistry",
    "WarmStartCache",
    "available_scenarios",
    "default_registry",
    "get_scenario",
    "query_signature",
    "register_scenario",
    "signature_document",
]
