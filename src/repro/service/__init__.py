"""Batch optimization service: concurrent MPQ optimization with caching.

Public API:

* :class:`BatchOptimizer` / :class:`BatchOptions` / :class:`BatchItem` —
  optimize many queries concurrently with deterministic result ordering,
  per-query error isolation and timeouts.
* :class:`WarmStartCache` — LRU (optionally disk-backed) cache of
  serialized Pareto plan sets.
* :func:`query_signature` / :func:`signature_document` — the cache key:
  a digest of the query's join graph, statistics and cost-model config.
"""

from .batch import BatchItem, BatchOptimizer, BatchOptions
from .cache import WarmStartCache
from .signature import query_signature, signature_document

__all__ = [
    "BatchItem",
    "BatchOptimizer",
    "BatchOptions",
    "WarmStartCache",
    "query_signature",
    "signature_document",
]
