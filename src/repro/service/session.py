"""OptimizerSession: the unified front door for all MPQ optimization.

One session owns everything a serving process needs across many
optimization calls:

* a **persistent worker pool** — spawned lazily on the first pooled call
  and reused across batches (the legacy batch engine tore its pool down
  per batch, paying worker start-up every time).  Per-call deadlines do
  not stall the call: overdue items are reported ``"timeout"``, queued
  tasks are cancelled, and only when a worker is still *executing* an
  overdue task is the pool recycled (the stuck worker terminated, a
  fresh pool spawned lazily on the next call) — otherwise the pool
  survives untouched, and results arriving just past the deadline still
  feed the warm-start cache;
* **session-scoped shared state** — the :class:`WarmStartCache` of
  serialized Pareto plan sets and an LP-result memo
  (:class:`repro.lp.LPResultCache`).  The LP memo is installed
  process-wide around serial runs; each pool worker gets its own memo
  that persists for the pool's lifetime (warm LP hits across batches),
  seeded at spawn time with the parent memo's content — pass a
  populated memo (e.g. from a serial session) via ``lp_memo=`` to start
  workers warm;
* the **scenario registry** — queries are optimized under a named
  scenario (``"cloud"``, ``"approx"``, or anything registered via
  :func:`repro.service.registry.register_scenario`), so new cost-model
  workloads need one registration instead of a new module of glue.

Submission surfaces:

* :meth:`OptimizerSession.submit` — one query, returns a
  :class:`concurrent.futures.Future` resolving to a :class:`BatchItem`;
* :meth:`OptimizerSession.as_completed` — many queries, yields items in
  completion order as they finish (streaming);
* :meth:`OptimizerSession.map` — many queries, returns items in input
  order (the legacy batch contract, with per-query error isolation,
  deadline handling and in-batch deduplication);
* :meth:`OptimizerSession.optimize` — one query; with ``precision=`` /
  ``budget=`` it becomes an *anytime* call that returns the best
  guaranteed plan set the budget allowed (cooperative: budgets are
  enforced inside the run at DP step boundaries, so pooled workers stop
  themselves and the pool survives);
* :meth:`OptimizerSession.optimize_iter` — one query, streams
  :class:`~repro.core.run.ProgressEvent` objects over a precision
  ladder; each ``rung_completed`` event carries a successively tighter
  plan set with its ``(1 + alpha)`` guarantee.

Workers ship *serialized* plan sets (JSON documents) back to the parent,
which both sidesteps pickling optimizer internals and feeds the cache for
free.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import as_completed as _futures_as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from collections.abc import Iterator, Sequence

from ..core import (DEFAULT_SEED_CAP, RUN_COMPLETED, SEED_JUMP_ALPHA, Budget,
                    OptimizerStats, ProgressEvent, PWLRRPAOptions,
                    StoredPlanSet, decode_plan, decode_plan_set,
                    encode_result, ladder_to, trim_ladder_for_seed,
                    validate_ladder)
from .. import config
from ..errors import OptimizationError
from ..faults import failpoint
from ..lp import (LPResultCache, install_shared_lp_cache,
                  shared_lp_cache)
from ..query import Query
from .cache import WarmStartCache
from .registry import ScenarioRegistry, default_registry
from .signature import (family_digest, query_signature,
                        signature_features, statistics_digest)

#: Result statuses a batch item can end in.  ``"partial"`` is the
#: anytime outcome: the budget expired before the target precision, but
#: a coarser rung completed — the plan set is valid with the reported
#: guarantee.
STATUSES = ("ok", "cached", "partial", "error", "timeout")

#: Recorded repair cost (total LPs of the run that produced a stored
#: plan-set document) above which a seeded run adopts the neighbor's
#: *whole* frontier instead of one incumbent per table set — the
#: quadratic seed-installation cost only amortizes against expensive
#: enumerations.  Stored documents carry the cost as ``repair_lps``;
#: entries without it (older documents) stay on the conservative arm.
SEED_ALL_IN_LPS = 10_000.0

#: Most-recently-used LP memo entries shipped to each spawning worker.
#: Bounds the pickled seed (LP results hold numpy arrays) so spawning a
#: pool off a long-lived memo stays cheap.
WORKER_SEED_LIMIT = 4096

#: Most-recently-learned LP memo entries a pooled task ships back to the
#: session per result (the worker -> parent direction of the memo flow).
WORKER_DELTA_LIMIT = 1024


@dataclass
class BatchItem:
    """Outcome of one query submitted to a session.

    Attributes:
        index: Position of the query in the submitted sequence (``0`` for
            single :meth:`OptimizerSession.submit` calls).
        signature: Warm-start cache key of the query.
        status: One of :data:`STATUSES`.
        plan_set: Run-time-selectable Pareto plan set (``None`` unless
            :attr:`ok`).
        stats: Optimizer-stats summary dict (``None`` for cached/failed
            items).
        error: Error description for ``"error"``/``"timeout"`` items.
        seconds: Wall-clock optimization time (0 for cache hits).
        scenario: Name of the scenario the query was optimized under.
        alpha: Approximation tag of the returned plan set: the rung the
            run achieved (``0`` for exact results).
        guarantee: End-to-end multiplicative cost bound of the plan set
            (``1.0`` for exact results): every possible plan is covered
            within this factor on all metrics.
        events: :class:`~repro.core.run.ProgressEvent` trail of anytime
            runs (empty for exact-mode items).
    """

    index: int
    signature: str
    status: str
    plan_set: StoredPlanSet | None = None
    stats: dict | None = None
    error: str | None = None
    seconds: float = 0.0
    scenario: str = "cloud"
    alpha: float = 0.0
    guarantee: float = 1.0
    events: tuple = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """``True`` when a plan set is available.

        ``"partial"`` counts: the set is valid, only its guarantee is
        coarser than requested (check :attr:`alpha`/:attr:`guarantee`).
        """
        return self.status in ("ok", "cached", "partial")


def _drain_memo_delta(outcome: dict) -> None:
    """Attach the LP-memo entries this task learned to the outcome.

    Only pool workers install a delta-tracking memo
    (:func:`_worker_init`); in serial runs the installed memo is the
    session memo itself, whose drain is a no-op.
    """
    memo = shared_lp_cache()
    if memo is not None:
        delta = memo.drain_delta(limit=WORKER_DELTA_LIMIT)
        if delta:
            outcome["lp_memo_delta"] = delta


def _optimize_payload(payload: tuple) -> tuple[int, dict, dict, float]:
    """Worker entry point: optimize one query, return serialized output.

    Module-level (not a closure) so process pools can pickle it.  The
    payload carries the :class:`~repro.service.registry.Scenario` object
    itself whenever it pickles (built-in scenarios and any scenario with
    module-level factories do), so workers on spawn-based platforms do
    not depend on fork-inherited registry state.  A ``None`` scenario is
    the fallback for unpicklable registrations and resolves by name from
    the worker's process-global default registry — which then must know
    the name (register it in a module the workers import).

    Returns ``(index, outcome, stats_summary, elapsed)``.  The outcome
    dict carries the encoded plan set (``"doc"``), the achieved
    ``"alpha"``/``"guarantee"``, a ``"status"``, and — for anytime
    payloads — the per-rung documents (``"rungs"``), the progress-event
    trail (``"events"``), and the worker's fresh LP-memo entries
    (``"lp_memo_delta"``), which the session merges back on receipt.
    """
    (index, scenario_name, scenario, query, resolution, options,
     anytime) = payload
    if scenario is None:
        scenario = default_registry().get(scenario_name)
    # Chaos failpoints (inert without a REPRO_FAULTS schedule): a hang
    # exercises the session deadline/recycle path, a crash kills the
    # worker process hard (pool-breaking, exercises pool respawn).
    failpoint("service.worker.hang")
    failpoint("service.worker.crash")
    started = time.perf_counter()
    if anytime is None:
        result = scenario.optimize(query, resolution=resolution,
                                   options=options)
        outcome = {"doc": encode_result(result), "status": "ok",
                   "alpha": result.achieved_alpha,
                   "guarantee": result.guarantee}
        stats = result.stats.summary()
    else:
        outcome, stats = _run_anytime(scenario, query, resolution,
                                      options, anytime)
    elapsed = time.perf_counter() - started
    _drain_memo_delta(outcome)
    if failpoint("service.worker.poison") is not None:
        # Poisoned result: an undecodable document, which the receiving
        # side must classify as an error item (never crash on).
        outcome["doc"] = {"poisoned": True}
    return index, outcome, stats, elapsed


def _live_event_emitter(run, events_queue):
    """Per-event callback shipping the trail live over a result queue.

    Each :class:`~repro.core.run.ProgressEvent` is forwarded the moment
    it is emitted; ``rung_completed`` events additionally carry the
    rung's encoded plan set so the session can attach a decoded set to
    the event it yields (the same payload the serial path builds).  A
    broken queue degrades to the replay-on-completion behavior — the
    session recovers the missing tail from the outcome's event trail.
    """
    def on_event(event) -> None:
        doc = {"event": event.as_dict()}
        if event.kind == "rung_completed" and run.completed:
            outcome = run.completed[-1]
            doc["rung"] = {"doc": encode_result(outcome.result),
                           "alpha": outcome.alpha,
                           "guarantee": outcome.guarantee}
        try:
            events_queue.put(doc)
        except Exception:  # reprolint: disable=REP601
            # Broken queue proxy: degrade to replay-on-completion.
            run.on_event = None
    return on_event


def _tag_repair_cost(doc: dict, lps) -> dict:
    """Record the producing run's LP count on a plan-set document.

    Stored as ``repair_lps`` next to the document's guarantee tags: a
    later near-miss run seeded from this document reads it to choose its
    seeding breadth (see :meth:`OptimizerSession._seed_breadth`).
    Decoders ignore the extra key, so plan-set round-trips are
    unaffected.
    """
    try:
        lps = float(lps)
    except (TypeError, ValueError):
        return doc
    if lps > 0:
        doc["repair_lps"] = lps
    return doc


#: Marker for "the seed spec carried no breadth": keep the run's default.
_SEED_CAP_UNSET = object()


def _decode_seed_spec(spec) -> tuple[list | None, object]:
    """Decode a seed payload into ``(seed_plans, seed_cap)``.

    The spec is either a mapping (``{"plans": [...], "cap": int|None}``,
    what :meth:`OptimizerSession._store_seed` builds) or a bare list of
    plan documents; undecodable plans degrade to an unseeded run.
    """
    seed_cap = _SEED_CAP_UNSET
    if isinstance(spec, dict):
        seed_docs = spec.get("plans")
        seed_cap = spec.get("cap", _SEED_CAP_UNSET)
    else:
        seed_docs = spec
    if not seed_docs:
        return None, seed_cap
    try:
        return [decode_plan(doc) for doc in seed_docs], seed_cap
    except Exception:  # reprolint: disable=REP601
        return None, seed_cap  # unusable seed: run cold


def _run_anytime(scenario, query: Query, resolution: int, options,
                 anytime: dict) -> tuple[dict, dict]:
    """Run an anytime precision ladder to its (cooperative) budget.

    The budget is enforced *inside* the run at step boundaries, so a
    pooled worker returns its best-so-far by itself — no cancellation,
    no pool teardown.  When the payload carries a live-event queue
    (``anytime["events"]``, a manager-queue proxy), every progress event
    is also shipped through it as it happens, closing with a ``None``
    sentinel — this is what makes pooled ``optimize_iter`` stream live
    instead of replaying the trail on completion.
    """
    events_queue = anytime.get("events")
    seed_plans, seed_cap = _decode_seed_spec(anytime.get("seed"))
    run = scenario.start_run(
        query, resolution=resolution, options=options,
        precision_ladder=tuple(anytime["ladder"]),
        seed_plans=seed_plans)
    if seed_plans and seed_cap is not _SEED_CAP_UNSET:
        run.seed_cap = seed_cap
    if events_queue is not None:
        run.on_event = _live_event_emitter(run, events_queue)
    try:
        status = run.run(Budget.from_dict(anytime.get("budget")))
    finally:
        if events_queue is not None:
            try:
                events_queue.put(None)
            except Exception:  # reprolint: disable=REP601
                pass  # consumer recovers the tail from the replay trail
    rungs = [{"doc": encode_result(outcome.result),
              "alpha": outcome.alpha, "guarantee": outcome.guarantee}
             for outcome in run.completed]
    result = run.result()
    if status == RUN_COMPLETED:
        item_status = "ok"
    elif rungs:
        item_status = "partial"
    else:
        item_status = "timeout"
    outcome = {
        "doc": rungs[-1]["doc"] if rungs else None,
        "alpha": run.achieved_alpha if rungs else None,
        "guarantee": run.guarantee if rungs else None,
        "status": item_status,
        "rungs": rungs,
        "events": [event.as_dict() for event in run.events],
        "seeded_plans": run.seeded_plans,
    }
    stats = (result.stats.summary() if result is not None
             else OptimizerStats().summary())
    return outcome, stats


def _worker_init(memo_entries: list, memo_size: int) -> None:
    """Pool-worker initializer: install a seeded process-local LP memo.

    The memo persists for the worker's lifetime — the pool is persistent,
    so LP results accumulate across every batch the session runs.  Delta
    tracking is on: every task result ships the entries the worker
    learned back to the session (:func:`_drain_memo_delta`), closing the
    worker -> parent half of the memo loop (the parent -> worker half is
    the spawn seed).
    """
    memo = LPResultCache(max(memo_size, 1), track_delta=True)
    memo.merge(memo_entries)
    install_shared_lp_cache(memo)


class OptimizerSession:
    """Session façade over the optimizer: pool, caches and scenarios.

    Args:
        scenario: Default scenario name for submitted queries (resolved
            eagerly, so typos fail at construction).
        workers: Worker processes; ``0`` or ``1`` optimizes in-process
            (serial), ``>= 2`` uses the persistent process pool.
        resolution: PWL grid resolution of the scenario cost models.
        options: Backend options forwarded to every optimization.
        timeout_seconds: Per-call deadline for :meth:`map` /
            :meth:`as_completed`, measured from call start (pool mode
            only; a serial run cannot preempt a running optimization).
            Overdue items are reported ``"timeout"``; workers caught
            still executing an overdue task are terminated and the pool
            respawned lazily, so later calls get full capacity instead
            of sharing it with abandoned work.
        warm_start: Consult/populate the warm-start cache.
        cache: Warm-start cache to share; a private one is created when
            omitted.
        registry: Scenario registry; the process-global default when
            omitted.  Scenarios are *shipped* to pooled workers inside
            each task payload whenever they pickle (built-in scenarios
            and any registration with module-level factories do), so
            custom registries work with pooled sessions on both fork- and
            spawn-based platforms.  Unpicklable registrations fall back
            to by-name resolution from the worker's default registry,
            which then must have the name registered in a module the
            workers import.
        mp_context: Optional :mod:`multiprocessing` context for the
            worker pool (e.g. ``multiprocessing.get_context("spawn")``);
            the platform default when omitted.
        lp_memo_size: Capacity of the session-scoped LP-result memo
            (``0`` disables cross-run LP memoization entirely — serial
            runs and pool workers then fall back to the optimizer's
            private per-run memo governed by ``options.lp_cache_size``,
            exactly as before).
        lp_memo: Explicit LP memo to adopt instead of creating a fresh
            one — e.g. a memo populated by an earlier serial session, so
            a pooled session's workers spawn warm.

    The session is a context manager; :meth:`close` is idempotent and is
    also invoked on garbage collection.
    """

    def __init__(self, scenario: str = "cloud", *, workers: int = 0,
                 resolution: int = 2,
                 options: PWLRRPAOptions | None = None,
                 timeout_seconds: float | None = None,
                 warm_start: bool = True,
                 cache: WarmStartCache | None = None,
                 registry: ScenarioRegistry | None = None,
                 mp_context=None,
                 lp_memo_size: int = 65536,
                 lp_memo: LPResultCache | None = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError("timeout must be positive")
        if lp_memo_size < 0:
            raise ValueError("lp_memo_size must be >= 0")
        self.registry = registry if registry is not None else (
            default_registry())
        self.scenario = scenario
        self.registry.get(scenario)  # fail fast on unknown names
        self.workers = workers
        self.resolution = resolution
        self.options = options
        self.timeout_seconds = timeout_seconds
        self.warm_start = warm_start
        self.cache = cache if cache is not None else WarmStartCache()
        if lp_memo is not None:
            self.lp_memo = lp_memo
        else:
            self.lp_memo = (LPResultCache(lp_memo_size)
                            if lp_memo_size > 0 else None)
        self.mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        self._timed_out = False
        #: Lazily started :func:`multiprocessing.Manager` providing the
        #: live-event queues of pooled ``optimize_iter`` calls (``None``
        #: until first use, ``False`` when manager start-up failed and
        #: streaming falls back to replay-on-completion).
        self._manager = None
        #: Executor future of the most recent pooled ``optimize_iter``
        #: (introspection hook: lets callers/tests observe that events
        #: arrive while the worker is still running).
        self._live_stream_future: Future | None = None
        #: Per-name shipping decision, keyed to the scenario instance it
        #: was made for: ``(scenario, scenario-or-None)`` — ``None``
        #: selects the by-name worker fallback for unpicklable entries.
        self._ship_cache: dict[str, tuple] = {}
        #: Times a worker pool was spawned; stays at 1 across any number
        #: of batch calls (the regression the legacy engine had).
        self.pool_spawns = 0
        #: Broken pools (a worker killed hard) replaced with a fresh one
        #: so a single crash does not poison the session.
        self.pool_respawns = 0
        #: Worker LP-memo deltas merged back into the session memo, and
        #: how many of their entries were new to it.  Together with
        #: :attr:`lp_cache_hits_total` this shows the cross-batch
        #: hit-rate gain of the worker -> parent memo flow.
        self.lp_memo_merges = 0
        self.lp_memo_merged_entries = 0
        #: LP memo hits summed over every completed item's stats.
        self.lp_cache_hits_total = 0
        #: Anytime cache misses where the persistent store produced a
        #: similar-query seed, and where it produced none.
        self.store_seed_hits = 0
        self.store_seed_misses = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` ran."""
        return self._closed

    def __enter__(self) -> OptimizerSession:
        self._check_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:  # reprolint: disable=REP601
            pass  # interpreter may be tearing down under GC

    def close(self) -> None:
        """Shut the session down (idempotent).

        Waits for in-flight work.  The exception is a deadline miss whose
        handling was cut short (an abandoned ``as_completed`` iterator):
        its overdue workers are terminated outright instead of stalling
        the close.
        """
        if self._closed:
            return
        self._closed = True
        manager, self._manager = self._manager, None
        if manager:
            try:
                manager.shutdown()
            except Exception:  # reprolint: disable=REP601
                pass  # manager already gone; close stays idempotent
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if self._timed_out:
            # Abandoned (timed-out) tasks may still be running; do not
            # stall on them — queued tasks are cancelled and the worker
            # processes terminated outright.
            processes = dict(getattr(pool, "_processes", None) or {})
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes.values():
                process.terminate()
        else:
            pool.shutdown(wait=True, cancel_futures=True)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("OptimizerSession is closed")

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self.lp_memo is not None:
                # Each worker gets a private memo living for the pool's
                # lifetime, seeded with whatever the session memo holds.
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self.mp_context,
                    initializer=_worker_init,
                    initargs=(self.lp_memo.export(
                        limit=WORKER_SEED_LIMIT), self.lp_memo.maxsize))
            else:  # cross-run memoization disabled
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=self.mp_context)
            self.pool_spawns += 1
        return self._pool

    def _discard_broken_pool(self) -> None:
        """Drop a broken pool so the next call can respawn one.

        A worker killed hard (OOM, segfault) breaks the whole
        :class:`ProcessPoolExecutor`; unlike the per-batch pools of the
        legacy engine, a persistent pool must recover explicitly or every
        later call would fail forever.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _recycle_pool(self) -> None:
        """Terminate workers stuck on overdue tasks and drop the pool.

        Called after a deadline miss caught tasks still *executing*:
        cancellation cannot stop them, and leaving them running would
        both leak CPU and shrink the capacity every later call sees.  The
        next pooled call respawns a fresh pool lazily.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes.values():
            process.terminate()

    # ------------------------------------------------------------------
    # Submission plumbing
    # ------------------------------------------------------------------

    def _scenario_name(self, scenario: str | None) -> str:
        name = scenario if scenario is not None else self.scenario
        self.registry.get(name)  # raise early for unknown names
        return name

    def _signature(self, query: Query, scenario_name: str,
                   options: PWLRRPAOptions | None = None) -> str:
        return query_signature(
            query, scenario=scenario_name, resolution=self.resolution,
            options=options if options is not None else self.options)

    def _target_alpha(self) -> float:
        """Alpha the session's configured options optimize to."""
        return (self.options.approximation_factor
                if self.options is not None else 0.0)

    def _anytime_options(self, target: float) -> PWLRRPAOptions:
        """Session options re-targeted to an anytime precision.

        Signatures derive from these, so an anytime run to completion
        shares warm-start entries with a plain session configured at the
        same approximation factor.
        """
        return replace(self.options or PWLRRPAOptions(),
                       approximation_factor=float(target))

    def _shipped_scenario(self, scenario_name: str):
        """Scenario object to embed in pooled payloads (memoized).

        Returns the registry's :class:`Scenario` when it pickles —
        workers then use it directly, independent of their own registry
        state (spawn-safe) — and ``None`` when it does not, selecting the
        worker-side by-name fallback.  The picklability decision is
        memoized per *scenario instance*, so re-registering a name with
        ``replace=True`` mid-session is picked up (the pooled path then
        ships the new scenario exactly as the serial path resolves it).
        """
        scenario = self.registry.get(scenario_name)
        cached = self._ship_cache.get(scenario_name)
        if cached is None or cached[0] is not scenario:
            try:
                pickle.dumps(scenario)
            except Exception:  # reprolint: disable=REP601
                # Unpicklable registration: by-name worker fallback.
                cached = (scenario, None)
            else:
                cached = (scenario, scenario)
            self._ship_cache[scenario_name] = cached
        return cached[1]

    def _cached_item(self, index: int, signature: str,
                     scenario_name: str,
                     max_alpha: float | None = None) -> BatchItem | None:
        """Warm-start lookup; ``None`` on miss or undecodable entry.

        ``max_alpha`` (default: the session's configured approximation
        factor) is the loosest guarantee tag the caller accepts — an
        entry left behind by an interrupted anytime run never serves a
        request for a tighter precision.
        """
        if not self.warm_start:
            return None
        if max_alpha is None:
            max_alpha = self._target_alpha()
        doc = self.cache.get(signature, max_alpha=max_alpha)
        if doc is None:
            return None
        alpha = float(doc.get("alpha", 0.0))
        try:
            plan_set = decode_plan_set(doc)
        except Exception:  # reprolint: disable=REP601
            # Undecodable cache entry (e.g. older format in a shared
            # directory): fall through and re-optimize.
            return None
        return BatchItem(index=index, signature=signature, status="cached",
                         plan_set=plan_set, scenario=scenario_name,
                         alpha=alpha,
                         guarantee=float(doc.get("guarantee", 1.0)))

    def _store_seed(self, query: Query, signature: str,
                    scenario_name: str, options,
                    ladder: tuple) -> list[dict] | None:
        """Similar-query seed lookup in the persistent store tier.

        Runs on anytime cache misses.  Registers the query's family
        metadata (so the eventual ``cache.put`` write-through can attach
        it to the stored row), then asks the store for the same-family
        entry with the nearest statistics feature vector.  Returns a
        picklable seed spec — the neighbor's plan-tree documents plus
        the chosen seeding breadth (see :meth:`_seed_breadth`), ready to
        embed in a pooled payload — or ``None`` when seeding is disabled
        (``REPRO_STORE_SEED=0``), no store is configured, the ladder has
        no coarse rung to seed, or the store has no neighbor.
        """
        store = getattr(self.cache, "store", None)
        if (store is None or not self.warm_start
                or not ladder or ladder[0] <= 0
                or not config.enabled("REPRO_STORE_SEED")):
            return None
        effective = options if options is not None else self.options
        try:
            family = family_digest(query, scenario=scenario_name,
                                   resolution=self.resolution,
                                   options=effective)
            features = signature_features(query)
            store.register(signature, family=family,
                           scenario=scenario_name,
                           stats_digest=statistics_digest(query),
                           num_tables=query.num_tables,
                           num_params=max(1, query.num_params),
                           features=features)
            rows = store.nearest(family, features, limit=1,
                                 exclude_signature=signature)
        except Exception:  # reprolint: disable=REP601
            return None  # store unavailable: run cold
        if not rows:
            self.store_seed_misses += 1
            return None
        self.store_seed_hits += 1
        document = rows[0]["document"]
        return {"plans": [entry["plan"]
                          for entry in document.get("entries", [])],
                "cap": self._seed_breadth(document)}

    def _seed_breadth(self, document: dict) -> int | None:
        """Per-table-set seed cap for a run seeded from ``document``.

        Seeding breadth is all-or-one (partial breadths measure as the
        worst of both — insertion cost without complete-frontier
        pruning): adopt the neighbor's whole frontier (``None``) when
        its recorded repair cost says the enumeration is expensive
        enough to amortize the quadratic installation, otherwise install
        one near-free incumbent per table set
        (:data:`repro.core.run.DEFAULT_SEED_CAP`).
        ``REPRO_STORE_SEED_BREADTH`` forces ``all`` or ``one``.
        """
        raw = config.value("REPRO_STORE_SEED_BREADTH")
        if raw == "all":
            return None
        if raw == "one":
            return DEFAULT_SEED_CAP
        try:
            repair = float(document.get("repair_lps") or 0.0)
        except (TypeError, ValueError):
            repair = 0.0
        return None if repair >= SEED_ALL_IN_LPS else DEFAULT_SEED_CAP

    def _seed_jump_alpha(self) -> float:
        """Coarsest rung a seeded run still descends through.

        ``REPRO_STORE_SEED_ALPHA`` overrides the default jump point
        (:data:`repro.core.run.SEED_JUMP_ALPHA`); unparseable values
        fall back to the default.
        """
        parsed = config.value("REPRO_STORE_SEED_ALPHA")
        return SEED_JUMP_ALPHA if parsed is None else parsed

    def _seeded_ladder(self, ladder: tuple) -> tuple:
        """Trim a default ladder for a seeded (warm) run.

        With near-optimal incumbents already in the DP table, the coarse
        protective rungs no longer pay for themselves: the seeded run
        jumps straight to the tightest approximate rung and then the
        target.  This is the measured source of the warm-start speedup
        (seeds alone merely break even on LPs) — see
        ``docs/plan-store.md``.  Only applied when the caller did *not*
        pass an explicit ``precision_ladder``.
        """
        return trim_ladder_for_seed(ladder, self._seed_jump_alpha())

    def _merge_memo_delta(self, outcome: dict) -> None:
        """Adopt a worker's freshly learned LP-memo entries.

        Runs on whichever thread delivers the result (the pool's
        collector thread for pooled items); the memo is lock-protected.
        """
        delta = outcome.get("lp_memo_delta")
        if not delta or self.lp_memo is None:
            return
        self.lp_memo_merges += 1
        self.lp_memo_merged_entries += self.lp_memo.merge(delta)

    def _decode_events(self, outcome: dict) -> tuple:
        """Rebuild the progress-event trail of a pooled anytime outcome.

        ``rung_completed`` events get the decoded plan set of their rung
        attached, so :meth:`optimize_iter` consumers see the same event
        payloads on the pooled path as on the live serial path.
        """
        rung_sets: dict[int, StoredPlanSet] = {}
        for rung_index, rung in enumerate(outcome.get("rungs", ())):
            try:
                rung_sets[rung_index] = decode_plan_set(rung["doc"])
            except Exception:  # reprolint: disable=REP601
                continue  # undecodable rung: ship the bare event
        events = []
        for doc in outcome.get("events", ()):
            event = ProgressEvent.from_dict(doc)
            if event.kind == "rung_completed" and event.rung in rung_sets:
                event = replace(event, plan_set=rung_sets[event.rung])
            events.append(event)
        return tuple(events)

    def _ok_item(self, index: int, signature: str, scenario_name: str,
                 outcome: dict, stats: dict,
                 seconds: float) -> BatchItem:
        """Build a result item, feeding the warm-start cache."""
        self._merge_memo_delta(outcome)
        status = outcome.get("status", "ok")
        doc = outcome.get("doc")
        if doc is None:  # anytime run whose budget beat the first rung
            item = self._error_item(
                index, signature, scenario_name, "timeout",
                "budget exhausted before the first ladder rung")
            item.events = self._decode_events(outcome)
            return item
        alpha = float(outcome.get("alpha") or 0.0)
        if self.warm_start:
            _tag_repair_cost(doc, (stats or {}).get("lps_solved"))
            self.cache.put(signature, doc, alpha=alpha)
        if stats:
            self.lp_cache_hits_total += int(
                stats.get("lp_cache_hits", 0))
        return BatchItem(index=index, signature=signature, status=status,
                         plan_set=decode_plan_set(doc), stats=stats,
                         seconds=seconds, scenario=scenario_name,
                         alpha=alpha,
                         guarantee=float(outcome.get("guarantee") or 1.0),
                         events=self._decode_events(outcome))

    def _error_item(self, index: int, signature: str, scenario_name: str,
                    status: str, error: str) -> BatchItem:
        return BatchItem(index=index, signature=signature, status=status,
                         error=error, scenario=scenario_name)

    def _run_serial(self, index: int, signature: str, scenario_name: str,
                    query: Query, options: PWLRRPAOptions | None = None,
                    anytime: dict | None = None) -> BatchItem:
        """Optimize in-process, with the session LP memo installed."""
        previous = None
        if self.lp_memo is not None:
            previous = install_shared_lp_cache(self.lp_memo)
        try:
            # Serial runs pass the session registry's scenario object
            # directly (no pickling involved), so custom registries are
            # honored without any default-registry registration.
            __, outcome, stats, seconds = _optimize_payload(
                (index, scenario_name, self.registry.get(scenario_name),
                 query, self.resolution,
                 options if options is not None else self.options,
                 anytime))
        except Exception as exc:  # reprolint: disable=REP601
            # Error isolation per query: failures become error items.
            return self._error_item(index, signature, scenario_name,
                                    "error", f"{type(exc).__name__}: {exc}")
        finally:
            if self.lp_memo is not None:
                install_shared_lp_cache(previous)
        try:
            return self._ok_item(index, signature, scenario_name,
                                 outcome, stats, seconds)
        except Exception as exc:  # reprolint: disable=REP601
            # Result decoding/caching failure (e.g. a poisoned outcome
            # doc): an error item, mirroring the pooled collector path.
            return self._error_item(index, signature, scenario_name,
                                    "error", f"{type(exc).__name__}: {exc}")

    def _submit_pooled(self, index: int, signature: str,
                       scenario_name: str, query: Query,
                       options: PWLRRPAOptions | None = None,
                       anytime: dict | None = None
                       ) -> tuple[Future, Future | None]:
        """Submit to the persistent pool.

        Returns ``(item_future, raw_future)``; the item future resolves
        to a :class:`BatchItem` (never raises), the raw future is the
        executor handle (``None`` when submission itself failed) kept for
        deadline-driven cancellation.
        """
        item_future: Future = Future()
        payload = (index, scenario_name,
                   self._shipped_scenario(scenario_name), query,
                   self.resolution,
                   options if options is not None else self.options,
                   anytime)
        try:
            raw = self._ensure_pool().submit(_optimize_payload, payload)
        except BrokenProcessPool:
            # A previously crashed worker broke the pool; respawn once
            # and retry so one hard crash does not poison the session.
            self._discard_broken_pool()
            self.pool_respawns += 1
            try:
                raw = self._ensure_pool().submit(_optimize_payload,
                                                 payload)
            except Exception as exc:  # reprolint: disable=REP601
                item_future.set_result(self._error_item(
                    index, signature, scenario_name, "error",
                    f"{type(exc).__name__}: {exc}"))
                return item_future, None
        except Exception as exc:  # reprolint: disable=REP601
            # E.g. an unpicklable query: reported as an error item.
            item_future.set_result(self._error_item(
                index, signature, scenario_name, "error",
                f"{type(exc).__name__}: {exc}"))
            return item_future, None

        def _complete(done: Future) -> None:
            # Runs on the executor's collector thread.  Late results of
            # timed-out items land here too — they still feed the
            # warm-start cache via _ok_item.
            try:
                if done.cancelled():
                    item = self._error_item(
                        index, signature, scenario_name, "timeout",
                        "cancelled before execution")
                else:
                    exc = done.exception()
                    if exc is not None:
                        item = self._error_item(
                            index, signature, scenario_name, "error",
                            f"{type(exc).__name__}: {exc}")
                    else:
                        __, outcome, stats, seconds = done.result()
                        item = self._ok_item(index, signature,
                                             scenario_name, outcome,
                                             stats, seconds)
                item_future.set_result(item)
            except Exception as exc:  # reprolint: disable=REP601
                # Decoding/caching failure: reported as an error item.
                item_future.set_result(self._error_item(
                    index, signature, scenario_name, "error",
                    f"{type(exc).__name__}: {exc}"))

        raw.add_done_callback(_complete)
        return item_future, raw

    # ------------------------------------------------------------------
    # Public submission surface
    # ------------------------------------------------------------------

    def submit(self, query: Query, *, scenario: str | None = None,
               index: int = 0) -> Future:
        """Submit one query; returns a future resolving to a
        :class:`BatchItem`.

        The future never raises for optimization failures — errors are
        reported in the item's ``status``/``error`` fields.  Warm-start
        hits resolve immediately.

        Raises:
            RuntimeError: If the session is closed.
            KeyError: For unknown scenario names.
        """
        self._check_open()
        scenario_name = self._scenario_name(scenario)
        signature = self._signature(query, scenario_name)
        cached = self._cached_item(index, signature, scenario_name)
        if cached is not None:
            future: Future = Future()
            future.set_result(cached)
            return future
        if self.workers > 1:
            item_future, __ = self._submit_pooled(index, signature,
                                                  scenario_name, query)
            return item_future
        future = Future()
        future.set_result(self._run_serial(index, signature, scenario_name,
                                           query))
        return future

    def as_completed(self, queries: Sequence[Query], *,
                     scenario: str | None = None
                     ) -> Iterator[BatchItem]:
        """Optimize ``queries``, yielding items as they finish.

        Duplicate queries (same signature) within the call are optimized
        once; followers are yielded right after their leader as
        ``"cached"`` items.  With a ``timeout_seconds`` deadline, items
        not finished in time are yielded as ``"timeout"`` without tearing
        the pool down.  Every input query yields exactly one item.

        Raises:
            RuntimeError: If the session is closed.
            KeyError: For unknown scenario names.
        """
        self._check_open()
        scenario_name = self._scenario_name(scenario)
        # Plan the batch: warm hits are decoded immediately, one leader is
        # kept per distinct signature, in-batch duplicates become
        # followers of their leader.
        hits: list[BatchItem] = []
        leaders: list[tuple[int, str, Query]] = []
        followers: dict[int, list[int]] = {}
        seen: dict[str, int] = {}
        for index, query in enumerate(queries):
            signature = self._signature(query, scenario_name)
            cached = self._cached_item(index, signature, scenario_name)
            if cached is not None:
                hits.append(cached)
            elif self.warm_start and signature in seen:
                # In-batch duplicate: optimize once, share the result.
                # Gated on warm_start like the cross-batch cache, so
                # warm_start=False keeps forcing every copy to optimize
                # (the legacy contract; benchmarks rely on it).
                followers.setdefault(seen[signature], []).append(index)
            else:
                seen[signature] = index
                leaders.append((index, signature, query))
        # Warm hits are complete already — yield them first.
        yield from hits
        yield from self._drain(leaders, followers, scenario_name)

    def _follower_items(self, item: BatchItem, follower_indexes: list[int],
                        scenario_name: str) -> Iterator[BatchItem]:
        for follower in follower_indexes:
            if item.ok:
                # Plan sets are read-only at run time, so leader and
                # followers can share one decoded instance.
                yield BatchItem(index=follower, signature=item.signature,
                                status="cached", plan_set=item.plan_set,
                                scenario=scenario_name)
            else:
                yield self._error_item(follower, item.signature,
                                       scenario_name, item.status,
                                       item.error or "")

    def _drain(self, leaders: list[tuple], followers: dict,
               scenario_name: str) -> Iterator[BatchItem]:
        """Yield one item per leader (plus its followers), streaming."""
        if self.workers > 1:
            yield from self._drain_pooled(leaders, followers,
                                          scenario_name)
            return
        # Serial: leaders run inline in input order (completion order ==
        # input order).
        for index, signature, query in leaders:
            item = self._run_serial(index, signature, scenario_name, query)
            yield item
            yield from self._follower_items(item, followers.get(index, ()),
                                            scenario_name)

    def _drain_pooled(self, leaders: list[tuple], followers: dict,
                      scenario_name: str) -> Iterator[BatchItem]:
        deadline = (None if self.timeout_seconds is None
                    else time.monotonic() + self.timeout_seconds)
        in_flight: dict[Future, tuple[int, str, Future | None]] = {}
        for index, signature, query in leaders:
            item_future, raw = self._submit_pooled(index, signature,
                                                   scenario_name, query)
            in_flight[item_future] = (index, signature, raw)
        try:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            for done in _futures_as_completed(in_flight,
                                              timeout=remaining):
                index, signature, __ = in_flight.pop(done)
                item = done.result()  # never raises; always a BatchItem
                yield item
                yield from self._follower_items(
                    item, followers.get(index, ()), scenario_name)
        except FutureTimeoutError:
            self._timed_out = True
            still_running = False
            for index, signature, raw in in_flight.values():
                # Unstarted tasks are cancelled to free the pool; a task
                # a worker is already executing cannot be stopped that
                # way and forces a pool recycle below.
                if raw is not None and not raw.cancel() and not raw.done():
                    still_running = True
                item = self._error_item(
                    index, signature, scenario_name, "timeout",
                    f"no result within {self.timeout_seconds}s of call "
                    f"start")
                yield item
                yield from self._follower_items(
                    item, followers.get(index, ()), scenario_name)
            if still_running:
                self._recycle_pool()
            self._timed_out = False

    def map(self, queries: Sequence[Query], *,
            scenario: str | None = None) -> list[BatchItem]:
        """Optimize ``queries``, returning one item per query, in order.

        Deterministic: results are indexed by input position regardless
        of completion order (the legacy ``optimize_batch`` contract).
        """
        items: list[BatchItem | None] = [None] * len(queries)
        for item in self.as_completed(queries, scenario=scenario):
            items[item.index] = item
        return [item for item in items if item is not None]

    def optimize(self, query: Query, *, scenario: str | None = None,
                 precision: float | None = None,
                 budget: Budget | None = None,
                 precision_ladder=None) -> BatchItem:
        """Optimize one query synchronously.

        Without anytime arguments this is sugar for ``map([query])`` —
        the exact-mode contract, bit-identical to the pre-anytime
        engine.  With ``precision`` and/or ``budget`` it becomes an
        *anytime* call:

        * ``precision=alpha`` targets a ``(1 + alpha)``-approximate
          Pareto set (``0.0`` = exact) instead of the session's
          configured approximation factor;
        * ``budget`` bounds the run cooperatively (checked at DP step
          boundaries — workers stop themselves, no pool teardown); when
          it expires, the best *completed* ladder rung is returned as a
          ``"partial"`` item with its achieved ``alpha``/``guarantee``,
          or ``"timeout"`` if no rung completed;
        * ``precision_ladder`` overrides the rung sequence (default:
          :data:`repro.core.run.DEFAULT_PRECISION_LADDER` truncated at
          the target when a budget is set, a single target rung
          otherwise).

        Works identically on the serial and pooled paths.
        """
        if precision is None and budget is None and (
                precision_ladder is None):
            (item,) = self.map([query], scenario=scenario)
            return item
        return self._optimize_anytime(query, scenario, precision,
                                      budget, precision_ladder)

    def _resolve_ladder(self, precision: float | None, budget,
                        precision_ladder) -> tuple[float, ...]:
        """Pick the rung sequence for an anytime call.

        An explicit ladder wins.  Otherwise a budgeted call descends the
        default ladder to the target (coarse rungs first, so a guarantee
        exists as early as possible), while an unbudgeted call jumps
        straight to the target in one rung.
        """
        if precision_ladder is not None:
            ladder = validate_ladder(precision_ladder)
            if precision is not None and ladder[-1] != float(precision):
                raise ValueError(
                    f"precision_ladder must end at precision="
                    f"{precision}, got {ladder}")
            return ladder
        target = float(precision) if precision is not None else 0.0
        if budget is not None:
            return ladder_to(target)
        return (target,)

    def _optimize_anytime(self, query: Query, scenario: str | None,
                          precision: float | None,
                          budget: Budget | None, precision_ladder
                          ) -> BatchItem:
        """Shared anytime path behind ``optimize``/``optimize_iter``."""
        self._check_open()
        scenario_name = self._scenario_name(scenario)
        ladder = self._resolve_ladder(precision, budget, precision_ladder)
        target = ladder[-1]
        options = self._anytime_options(target)
        signature = self._signature(query, scenario_name, options=options)
        cached = self._cached_item(0, signature, scenario_name,
                                   max_alpha=target)
        if cached is not None:
            return cached
        seed = self._store_seed(query, signature, scenario_name, options,
                                ladder)
        if seed and precision_ladder is None:
            ladder = self._seeded_ladder(ladder)
        anytime = {"ladder": ladder,
                   "budget": budget.as_dict() if budget else None}
        if seed:
            anytime["seed"] = seed
        if self.workers > 1:
            item_future, raw = self._submit_pooled(
                0, signature, scenario_name, query, options=options,
                anytime=anytime)
            if self.timeout_seconds is None:
                return item_future.result()
            # The cooperative budget is the primary bound, but the
            # session deadline still backstops a hung worker — same
            # semantics as map(): report "timeout", recycle a worker
            # caught still executing, keep the session usable.
            try:
                return item_future.result(timeout=self.timeout_seconds)
            except FutureTimeoutError:
                if raw is not None and not raw.cancel() and (
                        not raw.done()):
                    self._recycle_pool()
                return self._error_item(
                    0, signature, scenario_name, "timeout",
                    f"no result within {self.timeout_seconds}s of call "
                    f"start")
        return self._run_serial(0, signature, scenario_name, query,
                                options=options, anytime=anytime)

    # ------------------------------------------------------------------
    # Live event streaming (pooled optimize_iter)
    # ------------------------------------------------------------------

    def _event_queue(self):
        """A fresh manager queue for one live-streamed pooled run.

        The manager process is started lazily on the first streaming
        call and lives until :meth:`close`.  Returns ``None`` when the
        manager cannot be started (constrained environments) — pooled
        streaming then degrades to replaying the trail on completion,
        which is the pre-live behavior.
        """
        if self._manager is None:
            try:
                self._manager = multiprocessing.Manager()
            except Exception:  # reprolint: disable=REP601
                # Constrained environment: degrade to replay streaming.
                self._manager = False
        if not self._manager:
            return None
        try:
            return self._manager.Queue()
        except Exception:  # reprolint: disable=REP601
            return None  # manager died: replay-on-completion fallback

    def _decode_live_event(self, doc: dict, signature: str
                           ) -> ProgressEvent:
        """Rebuild one live-streamed event; feed the warm-start cache.

        Mirrors the serial path: every completed rung's plan set goes
        into the cache under its alpha tag the moment it exists, and the
        ``rung_completed`` event carries the decoded set.
        """
        event = ProgressEvent.from_dict(doc["event"])
        rung = doc.get("rung")
        if rung is not None:
            if self.warm_start:
                _tag_repair_cost(rung["doc"], event.lps_solved)
                self.cache.put(signature, rung["doc"],
                               alpha=float(rung["alpha"]))
            try:
                event = replace(event,
                                plan_set=decode_plan_set(rung["doc"]))
            except Exception:  # reprolint: disable=REP601
                pass  # undecodable rung: ship the bare event
        return event

    def _optimize_iter_pooled(self, query: Query, scenario_name: str,
                              ladder, budget: Budget | None, options,
                              signature: str, seed=None
                              ) -> Iterator[ProgressEvent]:
        """Stream a pooled ladder run's events *live*.

        The worker ships every progress event through a per-run manager
        queue as it is emitted (closing with a ``None`` sentinel), so
        consumers see rung plan sets while later rungs are still
        optimizing — previously the pooled path replayed the whole trail
        only after the run finished.  Events the queue could not carry
        (manager unavailable, proxy broken mid-run) are recovered from
        the outcome's replay trail, so the consumer always sees the full
        trail exactly once, in order.
        """
        events_queue = self._event_queue()
        anytime = {"ladder": ladder,
                   "budget": budget.as_dict() if budget else None}
        if seed:
            anytime["seed"] = seed
        if events_queue is not None:
            anytime["events"] = events_queue
        item_future, raw = self._submit_pooled(
            0, signature, scenario_name, query, options=options,
            anytime=anytime)
        self._live_stream_future = raw
        streamed = 0
        if events_queue is not None:
            finished = False
            while not finished:
                try:
                    doc = events_queue.get(timeout=0.05)
                except queue_module.Empty:
                    if item_future.done():
                        break
                    continue
                except Exception:  # reprolint: disable=REP601
                    break  # broken queue: recover from the replay trail
                if doc is None:
                    finished = True
                    break
                yield self._decode_live_event(doc, signature)
                streamed += 1
            # The worker finished (sentinel or resolved future); drain
            # whatever raced in after the last blocking get.
            while not finished:
                try:
                    doc = events_queue.get_nowait()
                except Exception:  # reprolint: disable=REP601
                    break  # empty or broken: the replay trail completes
                if doc is None:
                    break
                yield self._decode_live_event(doc, signature)
                streamed += 1
        item = item_future.result()
        if item.status == "error":
            # The serial path propagates run failures to the consumer;
            # an empty event stream must not masquerade as a (failed)
            # completed ladder on the pooled path either.
            raise OptimizationError(
                f"anytime run failed in worker: {item.error}")
        # Tail not delivered live (queue unavailable or broken mid-run):
        # the replay trail is deterministic and ordered, so the suffix
        # picks up exactly where the live stream stopped.
        yield from item.events[streamed:]

    def optimize_iter(self, query: Query, *,
                      scenario: str | None = None,
                      precision_ladder=None,
                      budget: Budget | None = None
                      ) -> Iterator[ProgressEvent]:
        """Stream an anytime run's progress as it tightens.

        Yields :class:`~repro.core.run.ProgressEvent` objects; every
        ``"rung_completed"`` event carries the rung's decoded plan set
        (``event.plan_set``) with its ``alpha``/``guarantee``, so a
        consumer can start serving from the first (coarsest) rung while
        later rungs refine.  Each rung warm-starts from the previous
        rung's DP work (plan-cost memo + LP memo), so the ladder costs
        far less than independent runs.

        Events stream live on both paths: serial runs yield step by
        step, and a pooled session ships each event from its worker
        through a per-run result queue as it is emitted (same events,
        same order — consumers see coarse rungs while tighter rungs are
        still optimizing).  One ``budget`` window spans the whole
        ladder.

        Args:
            query: The query to optimize.
            scenario: Scenario name override.
            precision_ladder: Strictly decreasing alphas; defaults to
                :data:`repro.core.run.DEFAULT_PRECISION_LADDER`.
            budget: Cooperative budget over the whole iteration.
        """
        self._check_open()
        scenario_name = self._scenario_name(scenario)
        ladder = validate_ladder(
            precision_ladder if precision_ladder is not None
            else ladder_to(self._target_alpha()))
        target = ladder[-1]
        options = self._anytime_options(target)
        signature = self._signature(query, scenario_name, options=options)
        cached = self._cached_item(0, signature, scenario_name,
                                   max_alpha=target)
        if cached is not None:
            # A warm plan set at (or tighter than) the target: the whole
            # ladder collapses to one already-completed rung.
            yield ProgressEvent(
                kind="rung_completed", rung=len(ladder) - 1,
                alpha=cached.alpha, guarantee=cached.guarantee,
                plan_count=len(cached.plan_set.entries),
                units_done=0, units_total=0, lps_solved=0, seconds=0.0,
                plan_set=cached.plan_set)
            return
        seed = self._store_seed(query, signature, scenario_name, options,
                                ladder)
        if seed and precision_ladder is None:
            ladder = self._seeded_ladder(ladder)
        if self.workers > 1:
            yield from self._optimize_iter_pooled(query, scenario_name,
                                                  ladder, budget, options,
                                                  signature, seed=seed)
            return
        yield from self._optimize_iter_serial(query, scenario_name,
                                              ladder, budget, options,
                                              signature, seed=seed)

    def _optimize_iter_serial(self, query: Query, scenario_name: str,
                              ladder, budget: Budget | None, options,
                              signature: str, seed=None
                              ) -> Iterator[ProgressEvent]:
        """Live in-process ladder run behind :meth:`optimize_iter`."""
        seed_plans, seed_cap = _decode_seed_spec(seed)
        run = self.registry.get(scenario_name).start_run(
            query, resolution=self.resolution, options=options,
            precision_ladder=ladder, seed_plans=seed_plans)
        if seed_plans and seed_cap is not _SEED_CAP_UNSET:
            run.seed_cap = seed_cap
        previous = None
        if self.lp_memo is not None:
            previous = install_shared_lp_cache(self.lp_memo)
        try:
            for event in run.iter_run(budget):
                if event.kind == "rung_completed":
                    outcome = run.completed[event.rung]
                    doc = encode_result(outcome.result)
                    if self.warm_start:
                        _tag_repair_cost(doc, event.lps_solved)
                        self.cache.put(signature, doc,
                                       alpha=outcome.alpha)
                    event = replace(event,
                                    plan_set=decode_plan_set(doc))
                yield event
        finally:
            if self.lp_memo is not None:
                install_shared_lp_cache(previous)
