"""OptimizerSession: the unified front door for all MPQ optimization.

One session owns everything a serving process needs across many
optimization calls:

* a **persistent worker pool** — spawned lazily on the first pooled call
  and reused across batches (the legacy batch engine tore its pool down
  per batch, paying worker start-up every time).  Per-call deadlines do
  not stall the call: overdue items are reported ``"timeout"``, queued
  tasks are cancelled, and only when a worker is still *executing* an
  overdue task is the pool recycled (the stuck worker terminated, a
  fresh pool spawned lazily on the next call) — otherwise the pool
  survives untouched, and results arriving just past the deadline still
  feed the warm-start cache;
* **session-scoped shared state** — the :class:`WarmStartCache` of
  serialized Pareto plan sets and an LP-result memo
  (:class:`repro.lp.LPResultCache`).  The LP memo is installed
  process-wide around serial runs; each pool worker gets its own memo
  that persists for the pool's lifetime (warm LP hits across batches),
  seeded at spawn time with the parent memo's content — pass a
  populated memo (e.g. from a serial session) via ``lp_memo=`` to start
  workers warm;
* the **scenario registry** — queries are optimized under a named
  scenario (``"cloud"``, ``"approx"``, or anything registered via
  :func:`repro.service.registry.register_scenario`), so new cost-model
  workloads need one registration instead of a new module of glue.

Submission surfaces:

* :meth:`OptimizerSession.submit` — one query, returns a
  :class:`concurrent.futures.Future` resolving to a :class:`BatchItem`;
* :meth:`OptimizerSession.as_completed` — many queries, yields items in
  completion order as they finish (streaming);
* :meth:`OptimizerSession.map` — many queries, returns items in input
  order (the legacy batch contract, with per-query error isolation,
  deadline handling and in-batch deduplication).

Workers ship *serialized* plan sets (JSON documents) back to the parent,
which both sidesteps pickling optimizer internals and feeds the cache for
free.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import as_completed as _futures_as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core import (PWLRRPAOptions, StoredPlanSet, decode_plan_set,
                    encode_result)
from ..lp import LPResultCache, install_shared_lp_cache
from ..query import Query
from .cache import WarmStartCache
from .registry import ScenarioRegistry, default_registry
from .signature import query_signature

#: Result statuses a batch item can end in.
STATUSES = ("ok", "cached", "error", "timeout")

#: Most-recently-used LP memo entries shipped to each spawning worker.
#: Bounds the pickled seed (LP results hold numpy arrays) so spawning a
#: pool off a long-lived memo stays cheap.
WORKER_SEED_LIMIT = 4096


@dataclass
class BatchItem:
    """Outcome of one query submitted to a session.

    Attributes:
        index: Position of the query in the submitted sequence (``0`` for
            single :meth:`OptimizerSession.submit` calls).
        signature: Warm-start cache key of the query.
        status: One of :data:`STATUSES`.
        plan_set: Run-time-selectable Pareto plan set (``None`` unless the
            status is ``"ok"`` or ``"cached"``).
        stats: Optimizer-stats summary dict (``None`` for cached/failed
            items).
        error: Error description for ``"error"``/``"timeout"`` items.
        seconds: Wall-clock optimization time (0 for cache hits).
        scenario: Name of the scenario the query was optimized under.
    """

    index: int
    signature: str
    status: str
    plan_set: StoredPlanSet | None = None
    stats: dict | None = None
    error: str | None = None
    seconds: float = 0.0
    scenario: str = "cloud"

    @property
    def ok(self) -> bool:
        """``True`` when a plan set is available."""
        return self.status in ("ok", "cached")


def _optimize_payload(payload: tuple) -> tuple[int, dict, dict, float]:
    """Worker entry point: optimize one query, return serialized output.

    Module-level (not a closure) so process pools can pickle it.  The
    payload carries the :class:`~repro.service.registry.Scenario` object
    itself whenever it pickles (built-in scenarios and any scenario with
    module-level factories do), so workers on spawn-based platforms do
    not depend on fork-inherited registry state.  A ``None`` scenario is
    the fallback for unpicklable registrations and resolves by name from
    the worker's process-global default registry — which then must know
    the name (register it in a module the workers import).
    """
    index, scenario_name, scenario, query, resolution, options = payload
    if scenario is None:
        scenario = default_registry().get(scenario_name)
    started = time.perf_counter()
    result = scenario.optimize(query, resolution=resolution,
                               options=options)
    elapsed = time.perf_counter() - started
    return index, encode_result(result), result.stats.summary(), elapsed


def _worker_init(memo_entries: list, memo_size: int) -> None:
    """Pool-worker initializer: install a seeded process-local LP memo.

    The memo persists for the worker's lifetime — the pool is persistent,
    so LP results accumulate across every batch the session runs.
    """
    memo = LPResultCache(max(memo_size, 1))
    memo.merge(memo_entries)
    install_shared_lp_cache(memo)


class OptimizerSession:
    """Session façade over the optimizer: pool, caches and scenarios.

    Args:
        scenario: Default scenario name for submitted queries (resolved
            eagerly, so typos fail at construction).
        workers: Worker processes; ``0`` or ``1`` optimizes in-process
            (serial), ``>= 2`` uses the persistent process pool.
        resolution: PWL grid resolution of the scenario cost models.
        options: Backend options forwarded to every optimization.
        timeout_seconds: Per-call deadline for :meth:`map` /
            :meth:`as_completed`, measured from call start (pool mode
            only; a serial run cannot preempt a running optimization).
            Overdue items are reported ``"timeout"``; workers caught
            still executing an overdue task are terminated and the pool
            respawned lazily, so later calls get full capacity instead
            of sharing it with abandoned work.
        warm_start: Consult/populate the warm-start cache.
        cache: Warm-start cache to share; a private one is created when
            omitted.
        registry: Scenario registry; the process-global default when
            omitted.  Scenarios are *shipped* to pooled workers inside
            each task payload whenever they pickle (built-in scenarios
            and any registration with module-level factories do), so
            custom registries work with pooled sessions on both fork- and
            spawn-based platforms.  Unpicklable registrations fall back
            to by-name resolution from the worker's default registry,
            which then must have the name registered in a module the
            workers import.
        mp_context: Optional :mod:`multiprocessing` context for the
            worker pool (e.g. ``multiprocessing.get_context("spawn")``);
            the platform default when omitted.
        lp_memo_size: Capacity of the session-scoped LP-result memo
            (``0`` disables cross-run LP memoization entirely — serial
            runs and pool workers then fall back to the optimizer's
            private per-run memo governed by ``options.lp_cache_size``,
            exactly as before).
        lp_memo: Explicit LP memo to adopt instead of creating a fresh
            one — e.g. a memo populated by an earlier serial session, so
            a pooled session's workers spawn warm.

    The session is a context manager; :meth:`close` is idempotent and is
    also invoked on garbage collection.
    """

    def __init__(self, scenario: str = "cloud", *, workers: int = 0,
                 resolution: int = 2,
                 options: PWLRRPAOptions | None = None,
                 timeout_seconds: float | None = None,
                 warm_start: bool = True,
                 cache: WarmStartCache | None = None,
                 registry: ScenarioRegistry | None = None,
                 mp_context=None,
                 lp_memo_size: int = 65536,
                 lp_memo: LPResultCache | None = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError("timeout must be positive")
        if lp_memo_size < 0:
            raise ValueError("lp_memo_size must be >= 0")
        self.registry = registry if registry is not None else (
            default_registry())
        self.scenario = scenario
        self.registry.get(scenario)  # fail fast on unknown names
        self.workers = workers
        self.resolution = resolution
        self.options = options
        self.timeout_seconds = timeout_seconds
        self.warm_start = warm_start
        self.cache = cache if cache is not None else WarmStartCache()
        if lp_memo is not None:
            self.lp_memo = lp_memo
        else:
            self.lp_memo = (LPResultCache(lp_memo_size)
                            if lp_memo_size > 0 else None)
        self.mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        self._timed_out = False
        #: Per-name shipping decision, keyed to the scenario instance it
        #: was made for: ``(scenario, scenario-or-None)`` — ``None``
        #: selects the by-name worker fallback for unpicklable entries.
        self._ship_cache: dict[str, tuple] = {}
        #: Times a worker pool was spawned; stays at 1 across any number
        #: of batch calls (the regression the legacy engine had).
        self.pool_spawns = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` ran."""
        return self._closed

    def __enter__(self) -> "OptimizerSession":
        self._check_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Shut the session down (idempotent).

        Waits for in-flight work.  The exception is a deadline miss whose
        handling was cut short (an abandoned ``as_completed`` iterator):
        its overdue workers are terminated outright instead of stalling
        the close.
        """
        if self._closed:
            return
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if self._timed_out:
            # Abandoned (timed-out) tasks may still be running; do not
            # stall on them — queued tasks are cancelled and the worker
            # processes terminated outright.
            processes = dict(getattr(pool, "_processes", None) or {})
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes.values():
                process.terminate()
        else:
            pool.shutdown(wait=True, cancel_futures=True)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("OptimizerSession is closed")

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self.lp_memo is not None:
                # Each worker gets a private memo living for the pool's
                # lifetime, seeded with whatever the session memo holds.
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self.mp_context,
                    initializer=_worker_init,
                    initargs=(self.lp_memo.export(
                        limit=WORKER_SEED_LIMIT), self.lp_memo.maxsize))
            else:  # cross-run memoization disabled
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=self.mp_context)
            self.pool_spawns += 1
        return self._pool

    def _discard_broken_pool(self) -> None:
        """Drop a broken pool so the next call can respawn one.

        A worker killed hard (OOM, segfault) breaks the whole
        :class:`ProcessPoolExecutor`; unlike the per-batch pools of the
        legacy engine, a persistent pool must recover explicitly or every
        later call would fail forever.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _recycle_pool(self) -> None:
        """Terminate workers stuck on overdue tasks and drop the pool.

        Called after a deadline miss caught tasks still *executing*:
        cancellation cannot stop them, and leaving them running would
        both leak CPU and shrink the capacity every later call sees.  The
        next pooled call respawns a fresh pool lazily.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes.values():
            process.terminate()

    # ------------------------------------------------------------------
    # Submission plumbing
    # ------------------------------------------------------------------

    def _scenario_name(self, scenario: str | None) -> str:
        name = scenario if scenario is not None else self.scenario
        self.registry.get(name)  # raise early for unknown names
        return name

    def _signature(self, query: Query, scenario_name: str) -> str:
        return query_signature(query, scenario=scenario_name,
                               resolution=self.resolution,
                               options=self.options)

    def _shipped_scenario(self, scenario_name: str):
        """Scenario object to embed in pooled payloads (memoized).

        Returns the registry's :class:`Scenario` when it pickles —
        workers then use it directly, independent of their own registry
        state (spawn-safe) — and ``None`` when it does not, selecting the
        worker-side by-name fallback.  The picklability decision is
        memoized per *scenario instance*, so re-registering a name with
        ``replace=True`` mid-session is picked up (the pooled path then
        ships the new scenario exactly as the serial path resolves it).
        """
        scenario = self.registry.get(scenario_name)
        cached = self._ship_cache.get(scenario_name)
        if cached is None or cached[0] is not scenario:
            try:
                pickle.dumps(scenario)
            except Exception:
                cached = (scenario, None)
            else:
                cached = (scenario, scenario)
            self._ship_cache[scenario_name] = cached
        return cached[1]

    def _cached_item(self, index: int, signature: str,
                     scenario_name: str) -> BatchItem | None:
        """Warm-start lookup; ``None`` on miss or undecodable entry."""
        if not self.warm_start:
            return None
        doc = self.cache.get(signature)
        if doc is None:
            return None
        try:
            plan_set = decode_plan_set(doc)
        except Exception:
            # Undecodable cache entry (e.g. older format in a shared
            # directory): fall through and re-optimize.
            return None
        return BatchItem(index=index, signature=signature, status="cached",
                         plan_set=plan_set, scenario=scenario_name)

    def _ok_item(self, index: int, signature: str, scenario_name: str,
                 doc: dict, stats: dict, seconds: float) -> BatchItem:
        """Build an ``"ok"`` item, feeding the warm-start cache."""
        if self.warm_start:
            self.cache.put(signature, doc)
        return BatchItem(index=index, signature=signature, status="ok",
                         plan_set=decode_plan_set(doc), stats=stats,
                         seconds=seconds, scenario=scenario_name)

    def _error_item(self, index: int, signature: str, scenario_name: str,
                    status: str, error: str) -> BatchItem:
        return BatchItem(index=index, signature=signature, status=status,
                         error=error, scenario=scenario_name)

    def _run_serial(self, index: int, signature: str, scenario_name: str,
                    query: Query) -> BatchItem:
        """Optimize in-process, with the session LP memo installed."""
        previous = None
        if self.lp_memo is not None:
            previous = install_shared_lp_cache(self.lp_memo)
        try:
            # Serial runs pass the session registry's scenario object
            # directly (no pickling involved), so custom registries are
            # honored without any default-registry registration.
            __, doc, stats, seconds = _optimize_payload(
                (index, scenario_name, self.registry.get(scenario_name),
                 query, self.resolution, self.options))
        except Exception as exc:  # error isolation per query
            return self._error_item(index, signature, scenario_name,
                                    "error", f"{type(exc).__name__}: {exc}")
        finally:
            if self.lp_memo is not None:
                install_shared_lp_cache(previous)
        return self._ok_item(index, signature, scenario_name, doc, stats,
                             seconds)

    def _submit_pooled(self, index: int, signature: str,
                       scenario_name: str, query: Query
                       ) -> tuple[Future, Future | None]:
        """Submit to the persistent pool.

        Returns ``(item_future, raw_future)``; the item future resolves
        to a :class:`BatchItem` (never raises), the raw future is the
        executor handle (``None`` when submission itself failed) kept for
        deadline-driven cancellation.
        """
        item_future: Future = Future()
        payload = (index, scenario_name,
                   self._shipped_scenario(scenario_name), query,
                   self.resolution, self.options)
        try:
            raw = self._ensure_pool().submit(_optimize_payload, payload)
        except BrokenProcessPool:
            # A previously crashed worker broke the pool; respawn once
            # and retry so one hard crash does not poison the session.
            self._discard_broken_pool()
            try:
                raw = self._ensure_pool().submit(_optimize_payload,
                                                 payload)
            except Exception as exc:
                item_future.set_result(self._error_item(
                    index, signature, scenario_name, "error",
                    f"{type(exc).__name__}: {exc}"))
                return item_future, None
        except Exception as exc:  # e.g. unpicklable query
            item_future.set_result(self._error_item(
                index, signature, scenario_name, "error",
                f"{type(exc).__name__}: {exc}"))
            return item_future, None

        def _complete(done: Future) -> None:
            # Runs on the executor's collector thread.  Late results of
            # timed-out items land here too — they still feed the
            # warm-start cache via _ok_item.
            try:
                if done.cancelled():
                    item = self._error_item(
                        index, signature, scenario_name, "timeout",
                        "cancelled before execution")
                else:
                    exc = done.exception()
                    if exc is not None:
                        item = self._error_item(
                            index, signature, scenario_name, "error",
                            f"{type(exc).__name__}: {exc}")
                    else:
                        __, doc, stats, seconds = done.result()
                        item = self._ok_item(index, signature,
                                             scenario_name, doc, stats,
                                             seconds)
                item_future.set_result(item)
            except Exception as exc:  # decoding/caching failure
                item_future.set_result(self._error_item(
                    index, signature, scenario_name, "error",
                    f"{type(exc).__name__}: {exc}"))

        raw.add_done_callback(_complete)
        return item_future, raw

    # ------------------------------------------------------------------
    # Public submission surface
    # ------------------------------------------------------------------

    def submit(self, query: Query, *, scenario: str | None = None,
               index: int = 0) -> Future:
        """Submit one query; returns a future resolving to a
        :class:`BatchItem`.

        The future never raises for optimization failures — errors are
        reported in the item's ``status``/``error`` fields.  Warm-start
        hits resolve immediately.

        Raises:
            RuntimeError: If the session is closed.
            KeyError: For unknown scenario names.
        """
        self._check_open()
        scenario_name = self._scenario_name(scenario)
        signature = self._signature(query, scenario_name)
        cached = self._cached_item(index, signature, scenario_name)
        if cached is not None:
            future: Future = Future()
            future.set_result(cached)
            return future
        if self.workers > 1:
            item_future, __ = self._submit_pooled(index, signature,
                                                  scenario_name, query)
            return item_future
        future = Future()
        future.set_result(self._run_serial(index, signature, scenario_name,
                                           query))
        return future

    def as_completed(self, queries: Sequence[Query], *,
                     scenario: str | None = None
                     ) -> Iterator[BatchItem]:
        """Optimize ``queries``, yielding items as they finish.

        Duplicate queries (same signature) within the call are optimized
        once; followers are yielded right after their leader as
        ``"cached"`` items.  With a ``timeout_seconds`` deadline, items
        not finished in time are yielded as ``"timeout"`` without tearing
        the pool down.  Every input query yields exactly one item.

        Raises:
            RuntimeError: If the session is closed.
            KeyError: For unknown scenario names.
        """
        self._check_open()
        scenario_name = self._scenario_name(scenario)
        # Plan the batch: warm hits are decoded immediately, one leader is
        # kept per distinct signature, in-batch duplicates become
        # followers of their leader.
        hits: list[BatchItem] = []
        leaders: list[tuple[int, str, Query]] = []
        followers: dict[int, list[int]] = {}
        seen: dict[str, int] = {}
        for index, query in enumerate(queries):
            signature = self._signature(query, scenario_name)
            cached = self._cached_item(index, signature, scenario_name)
            if cached is not None:
                hits.append(cached)
            elif self.warm_start and signature in seen:
                # In-batch duplicate: optimize once, share the result.
                # Gated on warm_start like the cross-batch cache, so
                # warm_start=False keeps forcing every copy to optimize
                # (the legacy contract; benchmarks rely on it).
                followers.setdefault(seen[signature], []).append(index)
            else:
                seen[signature] = index
                leaders.append((index, signature, query))
        # Warm hits are complete already — yield them first.
        yield from hits
        yield from self._drain(leaders, followers, scenario_name)

    def _follower_items(self, item: BatchItem, follower_indexes: list[int],
                        scenario_name: str) -> Iterator[BatchItem]:
        for follower in follower_indexes:
            if item.ok:
                # Plan sets are read-only at run time, so leader and
                # followers can share one decoded instance.
                yield BatchItem(index=follower, signature=item.signature,
                                status="cached", plan_set=item.plan_set,
                                scenario=scenario_name)
            else:
                yield self._error_item(follower, item.signature,
                                       scenario_name, item.status,
                                       item.error or "")

    def _drain(self, leaders: list[tuple], followers: dict,
               scenario_name: str) -> Iterator[BatchItem]:
        """Yield one item per leader (plus its followers), streaming."""
        if self.workers > 1:
            yield from self._drain_pooled(leaders, followers,
                                          scenario_name)
            return
        # Serial: leaders run inline in input order (completion order ==
        # input order).
        for index, signature, query in leaders:
            item = self._run_serial(index, signature, scenario_name, query)
            yield item
            yield from self._follower_items(item, followers.get(index, ()),
                                            scenario_name)

    def _drain_pooled(self, leaders: list[tuple], followers: dict,
                      scenario_name: str) -> Iterator[BatchItem]:
        deadline = (None if self.timeout_seconds is None
                    else time.monotonic() + self.timeout_seconds)
        in_flight: dict[Future, tuple[int, str, Future | None]] = {}
        for index, signature, query in leaders:
            item_future, raw = self._submit_pooled(index, signature,
                                                   scenario_name, query)
            in_flight[item_future] = (index, signature, raw)
        try:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            for done in _futures_as_completed(in_flight,
                                              timeout=remaining):
                index, signature, __ = in_flight.pop(done)
                item = done.result()  # never raises; always a BatchItem
                yield item
                yield from self._follower_items(
                    item, followers.get(index, ()), scenario_name)
        except FutureTimeoutError:
            self._timed_out = True
            still_running = False
            for item_future, (index, signature, raw) in in_flight.items():
                # Unstarted tasks are cancelled to free the pool; a task
                # a worker is already executing cannot be stopped that
                # way and forces a pool recycle below.
                if raw is not None and not raw.cancel() and not raw.done():
                    still_running = True
                item = self._error_item(
                    index, signature, scenario_name, "timeout",
                    f"no result within {self.timeout_seconds}s of call "
                    f"start")
                yield item
                yield from self._follower_items(
                    item, followers.get(index, ()), scenario_name)
            if still_running:
                self._recycle_pool()
            self._timed_out = False

    def map(self, queries: Sequence[Query], *,
            scenario: str | None = None) -> list[BatchItem]:
        """Optimize ``queries``, returning one item per query, in order.

        Deterministic: results are indexed by input position regardless
        of completion order (the legacy ``optimize_batch`` contract).
        """
        items: list[BatchItem | None] = [None] * len(queries)
        for item in self.as_completed(queries, scenario=scenario):
            items[item.index] = item
        return [item for item in items if item is not None]

    def optimize(self, query: Query, *,
                 scenario: str | None = None) -> BatchItem:
        """Optimize one query synchronously; sugar for ``map([query])``."""
        (item,) = self.map([query], scenario=scenario)
        return item
