"""Pluggable scenario registry: named cost-model workloads for sessions.

The paper motivates MPQ with two concrete scenarios — Cloud computing
(time vs. monetary fees, Section 7) and approximate query processing
(time vs. precision loss, Section 1) — and notes the algorithm itself is
generic over the cost model.  This module makes that genericity a
first-class API surface: a *scenario* bundles everything needed to
optimize a query under one cost-model workload (a cost-model factory, the
metric set, and optionally a custom RRPA backend factory), and a registry
maps scenario names to scenarios so that
:class:`repro.api.OptimizerSession` and the benchmark harness can select
workloads by name (``--scenario approx``).

Built-in scenarios:

* ``"cloud"`` — :class:`repro.cloud.CloudCostModel` (Scenario 1, the
  paper's evaluation workload).
* ``"approx"`` — :class:`repro.approx.ApproxCostModel` (Scenario 2,
  non-additive ``max`` accumulation of precision loss).

Registering a new workload is one call::

    from repro.api import register_scenario
    register_scenario("energy", lambda query, resolution: EnergyModel(
        query, resolution=resolution), metrics=ENERGY_METRICS)

Worker processes of a pooled session receive the :class:`Scenario`
object itself inside each task payload whenever it pickles (built-in
scenarios and any registration whose factories are module-level
functions do), so scenario resolution does not depend on fork-inherited
registry state and works under the ``spawn`` start method.  Only
unpicklable registrations (e.g. lambdas or closures) fall back to
by-name resolution from the worker's process-global default registry —
register those in a module the workers import.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Any

from ..core import OptimizationResult, PWLRRPA, PWLRRPAOptions
from ..cost import APPROX_METRICS, CLOUD_METRICS, CostMetric
from ..query import Query


@dataclass(frozen=True)
class Scenario:
    """One named cost-model workload.

    Attributes:
        name: Registry key, e.g. ``"cloud"``.
        cost_model_factory: ``(query, resolution) -> cost model`` — builds
            the cost model object consumed by the backend (must expose the
            protocol of :class:`repro.core.pwl_backend.PWLBackend`'s
            ``cost_model`` argument).
        metrics: The scenario's cost metrics, in reporting order.  Used by
            callers to build selection weights; the cost model remains the
            source of truth during optimization.
        backend_factory: Optional backend constructor forwarded to
            :class:`repro.core.PWLRRPA` (signature ``(cost_model, *,
            options, lp_stats, stats)``); ``None`` selects the standard
            PWL backend.
        description: One-line human-readable summary.
    """

    name: str
    cost_model_factory: Callable[[Query, int], Any]
    metrics: tuple[CostMetric, ...]
    backend_factory: Callable | None = None
    description: str = ""

    def optimizer(self, resolution: int = 2,
                  options: PWLRRPAOptions | None = None) -> PWLRRPA:
        """Build a ready-to-run optimizer for this scenario."""
        return PWLRRPA(
            cost_model_factory=lambda q: self.cost_model_factory(
                q, resolution),
            options=options, backend_factory=self.backend_factory)

    def optimize(self, query: Query, resolution: int = 2,
                 options: PWLRRPAOptions | None = None
                 ) -> OptimizationResult:
        """Optimize one query under this scenario."""
        return self.optimizer(resolution=resolution,
                              options=options).optimize(query)

    def start_run(self, query: Query, resolution: int = 2,
                  options: PWLRRPAOptions | None = None, *,
                  precision_ladder=None, on_event=None,
                  seed_plans=None):
        """Create a resumable anytime run for one query.

        Returns a :class:`repro.core.run.OptimizationRun` that can be
        advanced under :class:`repro.core.run.Budget` limits and
        laddered through successively tighter precisions; see
        :mod:`repro.core.run`.  ``seed_plans`` warm-starts the first
        coarse rung from a similar query's cached Pareto set.
        """
        return self.optimizer(resolution=resolution,
                              options=options).start_run(
            query, precision_ladder=precision_ladder, on_event=on_event,
            seed_plans=seed_plans)

    @property
    def metric_names(self) -> tuple[str, ...]:
        """Names of the scenario's metrics, in reporting order."""
        return tuple(m.name for m in self.metrics)


class ScenarioRegistry:
    """Mutable name -> :class:`Scenario` mapping.

    A process-global default registry (with the built-in scenarios) backs
    the module-level :func:`register_scenario` / :func:`get_scenario`
    functions; independent registries can be created for tests or
    embedding.
    """

    def __init__(self) -> None:
        self._scenarios: dict[str, Scenario] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def names(self) -> tuple[str, ...]:
        """Registered scenario names, sorted."""
        return tuple(sorted(self._scenarios))

    def register(self, name: str,
                 cost_model_factory: Callable[[Query, int], Any],
                 metrics: Sequence[CostMetric],
                 backend_factory: Callable | None = None,
                 description: str = "",
                 replace: bool = False) -> Scenario:
        """Register a scenario and return it.

        Args:
            name: Registry key; must be new unless ``replace`` is set.
            cost_model_factory: ``(query, resolution) -> cost model``.
            metrics: The scenario's cost metrics.
            backend_factory: Optional custom backend constructor.
            description: One-line summary.
            replace: Allow overwriting an existing registration.

        Raises:
            ValueError: If ``name`` is taken and ``replace`` is false.
        """
        if name in self._scenarios and not replace:
            raise ValueError(
                f"scenario {name!r} is already registered "
                f"(pass replace=True to overwrite)")
        scenario = Scenario(name=name,
                            cost_model_factory=cost_model_factory,
                            metrics=tuple(metrics),
                            backend_factory=backend_factory,
                            description=description)
        self._scenarios[name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look up a scenario.

        Raises:
            KeyError: For unknown names, listing what is available.
        """
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; available: "
                f"{', '.join(self.names()) or '(none)'}") from None


# ----------------------------------------------------------------------
# Built-in scenarios (module-level factories: picklable, fork-friendly)
# ----------------------------------------------------------------------

def _cloud_cost_model(query: Query, resolution: int):
    from ..cloud import CloudCostModel
    return CloudCostModel(query, resolution=resolution)


def _approx_cost_model(query: Query, resolution: int):
    from ..approx import ApproxCostModel
    return ApproxCostModel(query, resolution=resolution)


_DEFAULT = ScenarioRegistry()
_DEFAULT.register(
    "cloud", _cloud_cost_model, CLOUD_METRICS,
    description="Cloud computing: execution time vs. monetary fees "
                "(the paper's Section 7 evaluation scenario)")
_DEFAULT.register(
    "approx", _approx_cost_model, APPROX_METRICS,
    description="Approximate query processing: execution time vs. "
                "result-precision loss (Scenario 2)")


def default_registry() -> ScenarioRegistry:
    """The process-global registry holding the built-in scenarios."""
    return _DEFAULT


def register_scenario(name: str,
                      cost_model_factory: Callable[[Query, int], Any],
                      metrics: Sequence[CostMetric],
                      backend_factory: Callable | None = None,
                      description: str = "",
                      replace: bool = False) -> Scenario:
    """Register a scenario in the default registry (see
    :meth:`ScenarioRegistry.register`)."""
    return _DEFAULT.register(name, cost_model_factory, metrics,
                             backend_factory=backend_factory,
                             description=description, replace=replace)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario in the default registry."""
    return _DEFAULT.get(name)


def available_scenarios() -> tuple[str, ...]:
    """Names registered in the default registry, sorted."""
    return _DEFAULT.names()
