"""Deprecated batch engine: a thin wrapper over :class:`OptimizerSession`.

:class:`BatchOptimizer` was the original fan-out engine of this package;
its contract (deterministic ordering, per-query error isolation and
timeouts, warm-start caching) now lives in
:class:`repro.service.session.OptimizerSession`, which additionally keeps
one persistent worker pool across batches, streams results
(:meth:`~repro.service.session.OptimizerSession.as_completed`), and
optimizes under any registered scenario.  This module keeps the old
surface working — construction emits a :class:`DeprecationWarning` and
every batch delegates to a session owned by the wrapper (so consecutive
batches reuse one pool instead of paying worker start-up each time).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..core import PWLRRPAOptions
from ..query import Query
from .cache import WarmStartCache
from .session import STATUSES, BatchItem, OptimizerSession

__all__ = ["STATUSES", "BatchItem", "BatchOptimizer", "BatchOptions"]


@dataclass(frozen=True)
class BatchOptions:
    """Tunables of the legacy batch engine.

    Attributes:
        workers: Worker processes; ``0`` or ``1`` optimizes in-process
            (serial), which is also the portable fallback for
            environments without ``fork``/pickle support.
        resolution: PWL grid resolution of the cloud cost model.
        rrpa_options: Backend options forwarded to every optimization.
        timeout_seconds: Result deadline per query, measured from batch
            start (process mode only; a serial run cannot preempt a
            running optimization).  Queries whose results are not
            available by the deadline are reported ``"timeout"`` and the
            batch returns promptly — workers stuck on overdue tasks are
            terminated (as the original engine did), while timeout-free
            batches keep one pool alive across calls.  ``None`` waits
            indefinitely.
        warm_start: Consult/populate the warm-start cache.
    """

    workers: int = 0
    resolution: int = 2
    rrpa_options: PWLRRPAOptions | None = None
    timeout_seconds: float | None = None
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout must be positive")


@dataclass
class BatchOptimizer:
    """Optimizes batches of queries under the cloud cost model.

    .. deprecated:: 1.1
        Use :class:`repro.api.OptimizerSession` — it exposes the same
        ``map`` contract plus ``submit``/``as_completed`` streaming and
        named scenarios.  This wrapper delegates to a session and keeps
        returning bit-identical plan sets.

    Args:
        options: Engine tunables.
        cache: Warm-start cache shared across batches; a private one is
            created when omitted.
    """

    options: BatchOptions = field(default_factory=BatchOptions)
    cache: WarmStartCache = field(default_factory=WarmStartCache)

    def __post_init__(self) -> None:
        # stacklevel=3: this frame -> the dataclass-generated __init__ ->
        # the caller.  Attributing the warning to the caller's line is
        # what makes Python's default once-per-location filter behave as
        # once per *callsite* (a wrong stacklevel pins every caller to
        # one internal location, so only the first caller ever sees it).
        warnings.warn(
            "BatchOptimizer is deprecated; use repro.api.OptimizerSession",
            DeprecationWarning, stacklevel=3)
        self._session = OptimizerSession(
            "cloud", workers=self.options.workers,
            resolution=self.options.resolution,
            options=self.options.rrpa_options,
            timeout_seconds=self.options.timeout_seconds,
            warm_start=self.options.warm_start,
            cache=self.cache)

    @property
    def session(self) -> OptimizerSession:
        """The session this wrapper delegates to (one pool, kept across
        batches)."""
        return self._session

    def optimize_batch(self, queries: Sequence[Query]) -> list[BatchItem]:
        """Optimize ``queries``, returning one item per query, in order."""
        return self._session.map(queries)
