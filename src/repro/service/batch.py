"""Batch optimization engine: many queries, many workers, one result list.

The paper optimizes one MPQ instance at a time; a serving layer has to
sustain streams of them.  :class:`BatchOptimizer` fans a list of queries
across a :class:`concurrent.futures.ProcessPoolExecutor` (PWL-RRPA is
CPU-bound pure Python, so processes — not threads — buy parallelism),
with:

* **deterministic ordering** — results come back indexed by input
  position, independent of completion order;
* **error isolation** — one failing query yields one failed
  :class:`BatchItem`; the rest of the batch is unaffected;
* **per-query timeouts** — a query that exceeds its budget is reported as
  ``"timeout"`` instead of stalling the batch;
* **warm-start caching** — results are serialized via
  :mod:`repro.core.serialize` and memoized in a :class:`WarmStartCache`
  keyed by :func:`repro.service.signature.query_signature`, so repeated
  query shapes skip optimization entirely.

Workers ship *serialized* plan sets (JSON documents) back to the parent,
which both sidesteps pickling optimizer internals and feeds the cache for
free.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Sequence

from ..core import (PWLRRPAOptions, StoredPlanSet, decode_plan_set,
                    encode_result, optimize_cloud_query)
from ..query import Query
from .cache import WarmStartCache
from .signature import query_signature

#: Result statuses a batch item can end in.
STATUSES = ("ok", "cached", "error", "timeout")


@dataclass(frozen=True)
class BatchOptions:
    """Tunables of the batch engine.

    Attributes:
        workers: Worker processes; ``0`` or ``1`` optimizes in-process
            (serial), which is also the portable fallback for
            environments without ``fork``/pickle support.
        resolution: PWL grid resolution of the cloud cost model.
        rrpa_options: Backend options forwarded to every optimization.
        timeout_seconds: Result deadline per query, measured from batch
            start (process mode only; a serial run cannot preempt a
            running optimization).  Queries whose results are not
            available by the deadline are reported ``"timeout"`` and the
            batch returns promptly — overdue worker processes are
            terminated and their late results discarded.  ``None`` waits
            indefinitely.
        warm_start: Consult/populate the warm-start cache.
    """

    workers: int = 0
    resolution: int = 2
    rrpa_options: PWLRRPAOptions | None = None
    timeout_seconds: float | None = None
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout must be positive")


@dataclass
class BatchItem:
    """Outcome of one query in a batch.

    Attributes:
        index: Position of the query in the input list.
        signature: Warm-start cache key of the query.
        status: One of :data:`STATUSES`.
        plan_set: Run-time-selectable Pareto plan set (``None`` unless the
            status is ``"ok"`` or ``"cached"``).
        stats: Optimizer-stats summary dict (``None`` for cached/failed
            items).
        error: Error description for ``"error"``/``"timeout"`` items.
        seconds: Wall-clock optimization time (0 for cache hits).
    """

    index: int
    signature: str
    status: str
    plan_set: StoredPlanSet | None = None
    stats: dict | None = None
    error: str | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """``True`` when a plan set is available."""
        return self.status in ("ok", "cached")


def _optimize_one(payload: tuple) -> tuple[int, dict, dict, float]:
    """Worker entry point: optimize one query, return serialized output.

    Module-level (not a closure) so process pools can pickle it.
    """
    index, query, resolution, options = payload
    started = time.perf_counter()
    result = optimize_cloud_query(query, resolution=resolution,
                                  options=options)
    elapsed = time.perf_counter() - started
    return index, encode_result(result), result.stats.summary(), elapsed


@dataclass
class BatchOptimizer:
    """Optimizes batches of queries under the cloud cost model.

    Args:
        options: Engine tunables.
        cache: Warm-start cache shared across batches; a private one is
            created when omitted.
    """

    options: BatchOptions = field(default_factory=BatchOptions)
    cache: WarmStartCache = field(default_factory=WarmStartCache)

    def optimize_batch(self, queries: Sequence[Query]) -> list[BatchItem]:
        """Optimize ``queries``, returning one item per query, in order."""
        opts = self.options
        items: list[BatchItem | None] = [None] * len(queries)
        pending: list[tuple] = []
        followers: dict[int, list[int]] = {}
        seen: dict[str, int] = {}
        for index, query in enumerate(queries):
            signature = query_signature(query, resolution=opts.resolution,
                                        options=opts.rrpa_options)
            doc = (self.cache.get(signature) if opts.warm_start else None)
            plan_set = None
            if doc is not None:
                try:
                    plan_set = decode_plan_set(doc)
                except Exception:
                    # Undecodable cache entry (e.g. older format in a
                    # shared directory): fall through and re-optimize.
                    plan_set = None
            if plan_set is not None:
                items[index] = BatchItem(
                    index=index, signature=signature, status="cached",
                    plan_set=plan_set)
            elif opts.warm_start and signature in seen:
                # Duplicate within the batch: optimize once, share the
                # serialized result with every follower index.
                followers.setdefault(seen[signature], []).append(index)
            else:
                seen[signature] = index
                pending.append(
                    (index, query, opts.resolution, opts.rrpa_options,
                     signature))
        if pending:
            if opts.workers > 1:
                self._run_pooled(pending, items, followers)
            else:
                self._run_serial(pending, items, followers)
        return [item for item in items if item is not None]

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------

    def _finish(self, items: list, followers: dict, signature: str,
                index: int, doc: dict, stats: dict, seconds: float) -> None:
        if self.options.warm_start:
            self.cache.put(signature, doc)
        # Plan sets are read-only at run time, so leader and followers
        # can share one decoded instance.
        plan_set = decode_plan_set(doc)
        items[index] = BatchItem(index=index, signature=signature,
                                 status="ok", plan_set=plan_set,
                                 stats=stats, seconds=seconds)
        for follower in followers.get(index, ()):
            items[follower] = BatchItem(
                index=follower, signature=signature, status="cached",
                plan_set=plan_set)

    def _fail(self, items: list, followers: dict, signature: str,
              index: int, status: str, error: str) -> None:
        for failed in (index, *followers.get(index, ())):
            items[failed] = BatchItem(index=failed, signature=signature,
                                      status=status, error=error)

    def _run_serial(self, pending: list[tuple], items: list,
                    followers: dict) -> None:
        for index, query, resolution, options, signature in pending:
            try:
                __, doc, stats, seconds = _optimize_one(
                    (index, query, resolution, options))
            except Exception as exc:  # error isolation per query
                self._fail(items, followers, signature, index, "error",
                           f"{type(exc).__name__}: {exc}")
            else:
                self._finish(items, followers, signature, index, doc,
                             stats, seconds)

    def _run_pooled(self, pending: list[tuple], items: list,
                    followers: dict) -> None:
        opts = self.options
        deadline = (None if opts.timeout_seconds is None
                    else time.monotonic() + opts.timeout_seconds)
        pool = ProcessPoolExecutor(max_workers=opts.workers)
        timed_out = False
        try:
            futures = [
                (pool.submit(_optimize_one,
                             (index, query, resolution, options)),
                 index, signature)
                for index, query, resolution, options, signature in pending]
            for future, index, signature in futures:
                try:
                    remaining = (None if deadline is None
                                 else max(0.0, deadline - time.monotonic()))
                    __, doc, stats, seconds = future.result(
                        timeout=remaining)
                except FutureTimeoutError:
                    future.cancel()
                    timed_out = True
                    self._fail(items, followers, signature, index,
                               "timeout",
                               f"no result within {opts.timeout_seconds}s "
                               f"of batch start")
                except Exception as exc:  # error isolation per query
                    self._fail(items, followers, signature, index, "error",
                               f"{type(exc).__name__}: {exc}")
                else:
                    self._finish(items, followers, signature, index, doc,
                                 stats, seconds)
        finally:
            # Do not stall the batch on overdue workers: queued tasks
            # are cancelled, and after a timeout the worker processes
            # are terminated outright — otherwise they would keep
            # burning CPU and the interpreter's exit hook would still
            # join them.
            workers = dict(getattr(pool, "_processes", None) or {})
            pool.shutdown(wait=False, cancel_futures=True)
            if timed_out:
                for process in workers.values():
                    process.terminate()
