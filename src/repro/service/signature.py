"""Canonical query signatures for warm-start caching.

The optimization service memoizes serialized Pareto plan sets per *query
signature*: a digest of everything the PWL-RRPA output depends on — the
join graph with its selectivities, per-table statistics, indexes,
parametric predicates, the scenario (cost-model family), the cost-model
resolution and the backend options.  Two queries with equal signatures
are guaranteed to produce identical Pareto plan sets (the optimizer is
deterministic), so a cached plan set can stand in for a fresh
optimization run.

For the persistent plan-set store (:mod:`repro.store`) the module also
derives three coarser descriptions of a query:

* the *family digest* (:func:`family_digest`) — everything structural
  (join-graph shape, column layout, indexes, parametric predicates,
  scenario, cost-model config) with the volatile statistics
  (cardinalities, distinct counts, join selectivities) stripped out.
  Recurring queries with drifting statistics share a family.
* the *statistics digest* (:func:`statistics_digest`) — a hash of only
  those volatile statistics, so stores can tell "same family, fresh
  stats" from true duplicates.
* the *feature vector* (:func:`signature_features`) — a fixed-order
  numeric summary of the statistics used for nearest-neighbor lookups
  within a family ("which cached plan set came from the most similar
  statistics?").
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict

from ..core import PWLRRPAOptions
from ..query import Query


def signature_document(query: Query, *, scenario: str = "cloud",
                       resolution: int = 2,
                       options: PWLRRPAOptions | None = None) -> dict:
    """Return the canonical JSON-ready description hashed by the signature.

    Args:
        query: The query to describe.
        scenario: Scenario (cost-model family) name; different scenarios
            produce different plan sets, so it is part of the key.
        resolution: PWL grid resolution of the cost model.
        options: Backend options (defaults hashed when omitted).
    """
    catalog = query.catalog
    tables = []
    for name in sorted(query.tables):
        table = catalog.table(name)
        tables.append({
            "name": name,
            "cardinality": table.cardinality,
            "columns": sorted(
                (c.name, c.distinct_values, c.width_bytes)
                for c in table.columns),
        })
    joins = sorted(
        (min(p.left_table, p.right_table), max(p.left_table, p.right_table),
         p.left_column, p.right_column, p.selectivity)
        for p in query.join_predicates)
    params = sorted((p.table, p.column, p.parameter_index)
                    for p in query.parametric_predicates)
    indexes = sorted((i.table_name, i.column_name) for i in catalog.indexes)
    return {
        "tables": tables,
        "joins": joins,
        "params": params,
        "indexes": indexes,
        "scenario": scenario,
        "resolution": resolution,
        "options": asdict(options or PWLRRPAOptions()),
    }


def query_signature(query: Query, *, scenario: str = "cloud",
                    resolution: int = 2,
                    options: PWLRRPAOptions | None = None) -> str:
    """Hex digest identifying ``(query, scenario, cost-model config)``."""
    doc = signature_document(query, scenario=scenario,
                             resolution=resolution, options=options)
    return _digest(doc)


def _digest(doc: dict) -> str:
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# Family / statistics split (plan-set store lookups)
# ----------------------------------------------------------------------

def family_document(query: Query, *, scenario: str = "cloud",
                    resolution: int = 2,
                    options: PWLRRPAOptions | None = None) -> dict:
    """Structure-only signature document: statistics stripped.

    Keeps the join-graph *shape* (which tables join on which columns),
    the column layout, indexes, parametric predicates, scenario and
    cost-model configuration — and drops everything a statistics refresh
    changes: cardinalities, distinct counts and join selectivities.
    Recurring queries over a drifting database share one family.
    """
    catalog = query.catalog
    tables = []
    for name in sorted(query.tables):
        table = catalog.table(name)
        tables.append({
            "name": name,
            "columns": sorted((c.name, c.width_bytes)
                              for c in table.columns),
        })
    joins = sorted(
        (min(p.left_table, p.right_table), max(p.left_table, p.right_table),
         p.left_column, p.right_column)
        for p in query.join_predicates)
    params = sorted((p.table, p.column, p.parameter_index)
                    for p in query.parametric_predicates)
    indexes = sorted((i.table_name, i.column_name) for i in catalog.indexes)
    return {
        "tables": tables,
        "joins": joins,
        "params": params,
        "indexes": indexes,
        "scenario": scenario,
        "resolution": resolution,
        "options": asdict(options or PWLRRPAOptions()),
    }


def family_digest(query: Query, *, scenario: str = "cloud",
                  resolution: int = 2,
                  options: PWLRRPAOptions | None = None) -> str:
    """Hex digest of :func:`family_document` (the store's family key)."""
    return _digest(family_document(query, scenario=scenario,
                                   resolution=resolution, options=options))


def statistics_digest(query: Query) -> str:
    """Hex digest of only the volatile statistics of a query.

    Two queries of the same family with equal statistics digests are the
    same query as far as the optimizer is concerned; a differing digest
    marks a near-miss candidate for warm-start seeding.
    """
    doc = {
        "cardinalities": sorted(
            (name, query.catalog.table(name).cardinality)
            for name in query.tables),
        "distinct": sorted(
            (name, c.name, c.distinct_values)
            for name in query.tables
            for c in query.catalog.table(name).columns),
        "selectivities": sorted(
            (min(p.left_table, p.right_table),
             max(p.left_table, p.right_table),
             p.left_column, p.right_column, p.selectivity)
            for p in query.join_predicates),
    }
    return _digest(doc)


def signature_features(query: Query) -> tuple[float, ...]:
    """Fixed-order numeric feature vector of a query's statistics.

    Dimensions (all deterministic given the query):

    0. number of tables
    1. number of parameters
    2. number of join predicates
    3. mean log10 base-table cardinality
    4. min log10 base-table cardinality
    5. max log10 base-table cardinality
    6. mean log10 column distinct count
    7. mean log10 join selectivity (0 when the query has no joins)
    8. number of catalog indexes on query tables

    Euclidean distance between vectors of the same family ranks cached
    plan sets by statistics similarity for nearest-neighbor seeding.
    """
    catalog = query.catalog
    cards = [math.log10(max(1, catalog.table(name).cardinality))
             for name in query.tables]
    distincts = [math.log10(max(1, c.distinct_values))
                 for name in query.tables
                 for c in catalog.table(name).columns]
    sels = [math.log10(max(1e-12, p.selectivity))
            for p in query.join_predicates]
    table_set = set(query.tables)
    num_indexes = sum(1 for ix in catalog.indexes
                      if ix.table_name in table_set)
    return (
        float(query.num_tables),
        float(query.num_params),
        float(len(query.join_predicates)),
        sum(cards) / len(cards) if cards else 0.0,
        min(cards) if cards else 0.0,
        max(cards) if cards else 0.0,
        sum(distincts) / len(distincts) if distincts else 0.0,
        sum(sels) / len(sels) if sels else 0.0,
        float(num_indexes),
    )
