"""Canonical query signatures for warm-start caching.

The optimization service memoizes serialized Pareto plan sets per *query
signature*: a digest of everything the PWL-RRPA output depends on — the
join graph with its selectivities, per-table statistics, indexes,
parametric predicates, the scenario (cost-model family), the cost-model
resolution and the backend options.  Two queries with equal signatures
are guaranteed to produce identical Pareto plan sets (the optimizer is
deterministic), so a cached plan set can stand in for a fresh
optimization run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from ..core import PWLRRPAOptions
from ..query import Query


def signature_document(query: Query, *, scenario: str = "cloud",
                       resolution: int = 2,
                       options: PWLRRPAOptions | None = None) -> dict:
    """Return the canonical JSON-ready description hashed by the signature.

    Args:
        query: The query to describe.
        scenario: Scenario (cost-model family) name; different scenarios
            produce different plan sets, so it is part of the key.
        resolution: PWL grid resolution of the cost model.
        options: Backend options (defaults hashed when omitted).
    """
    catalog = query.catalog
    tables = []
    for name in sorted(query.tables):
        table = catalog.table(name)
        tables.append({
            "name": name,
            "cardinality": table.cardinality,
            "columns": sorted(
                (c.name, c.distinct_values, c.width_bytes)
                for c in table.columns),
        })
    joins = sorted(
        (min(p.left_table, p.right_table), max(p.left_table, p.right_table),
         p.left_column, p.right_column, p.selectivity)
        for p in query.join_predicates)
    params = sorted((p.table, p.column, p.parameter_index)
                    for p in query.parametric_predicates)
    indexes = sorted((i.table_name, i.column_name) for i in catalog.indexes)
    return {
        "tables": tables,
        "joins": joins,
        "params": params,
        "indexes": indexes,
        "scenario": scenario,
        "resolution": resolution,
        "options": asdict(options or PWLRRPAOptions()),
    }


def query_signature(query: Query, *, scenario: str = "cloud",
                    resolution: int = 2,
                    options: PWLRRPAOptions | None = None) -> str:
    """Hex digest identifying ``(query, scenario, cost-model config)``."""
    doc = signature_document(query, scenario=scenario,
                             resolution=resolution, options=options)
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
