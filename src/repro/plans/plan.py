"""Query plan trees.

A query plan specifies the join order and the operators executing scan and
join operations (Section 2).  Plans are immutable trees: leaves are
:class:`ScanPlan` nodes (one base table + access path), inner nodes are
:class:`JoinPlan` nodes combining two sub-plans with a join operator — the
paper's ``Combine(p1, p2, o)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from ..errors import PlanError
from .operators import JoinOperator, ScanOperator


class Plan:
    """Base class for plan tree nodes."""

    @property
    def tables(self) -> frozenset[str]:
        """The set of base tables the plan joins."""
        raise NotImplementedError

    def nodes(self) -> Iterator[Plan]:
        """Yield all nodes of the plan tree (pre-order)."""
        raise NotImplementedError

    @property
    def num_joins(self) -> int:
        """Number of join nodes in the tree."""
        return sum(1 for node in self.nodes() if isinstance(node, JoinPlan))

    @property
    def depth(self) -> int:
        """Height of the plan tree (1 for a bare scan)."""
        raise NotImplementedError

    def signature(self) -> tuple:
        """Hashable structural identity (used for de-duplication in tests)."""
        raise NotImplementedError

    def is_left_deep(self) -> bool:
        """``True`` when every right join input is a base-table scan."""
        return all(not isinstance(node, JoinPlan)
                   or isinstance(node.right, ScanPlan)
                   for node in self.nodes())


@dataclass(frozen=True)
class ScanPlan(Plan):
    """A leaf plan scanning one base table.

    Attributes:
        table: The scanned table's name.
        operator: The access path (full scan, index seek, sampled scan).
    """

    table: str
    operator: ScanOperator

    @property
    def tables(self) -> frozenset[str]:
        return frozenset((self.table,))

    def nodes(self) -> Iterator[Plan]:
        yield self

    @property
    def depth(self) -> int:
        return 1

    def signature(self) -> tuple:
        return ("scan", self.table, self.operator.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.operator.name}({self.table})"


@dataclass(frozen=True)
class JoinPlan(Plan):
    """An inner node joining two disjoint sub-plans.

    Attributes:
        left: Sub-plan producing the left (build) input.
        right: Sub-plan producing the right (probe) input.
        operator: The join operator.
    """

    left: Plan
    right: Plan
    operator: JoinOperator

    def __post_init__(self) -> None:
        if self.left.tables & self.right.tables:
            raise PlanError(
                f"join inputs overlap: {sorted(self.left.tables)} vs "
                f"{sorted(self.right.tables)}")

    @property
    def tables(self) -> frozenset[str]:
        return self.left.tables | self.right.tables

    def nodes(self) -> Iterator[Plan]:
        yield self
        yield from self.left.nodes()
        yield from self.right.nodes()

    @property
    def depth(self) -> int:
        return 1 + max(self.left.depth, self.right.depth)

    def signature(self) -> tuple:
        return ("join", self.operator.name, self.left.signature(),
                self.right.signature())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.operator.name}({self.left!r}, {self.right!r})"


def combine(left: Plan, right: Plan, operator: JoinOperator) -> JoinPlan:
    """The paper's ``Combine(p1, p2, o)``: join two disjoint plans."""
    return JoinPlan(left=left, right=right, operator=operator)
