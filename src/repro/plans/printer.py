"""Human-readable rendering of plan trees."""

from __future__ import annotations

from .plan import JoinPlan, Plan, ScanPlan


def render_plan(plan: Plan, indent: str = "  ") -> str:
    """Render a plan as an indented operator tree.

    Args:
        plan: The plan to render.
        indent: Indentation unit per tree level.

    Returns:
        A multi-line string, one operator per line.
    """
    lines: list[str] = []

    def visit(node: Plan, depth: int) -> None:
        pad = indent * depth
        if isinstance(node, ScanPlan):
            lines.append(f"{pad}{node.operator.name} [{node.table}]")
        elif isinstance(node, JoinPlan):
            lines.append(f"{pad}{node.operator.name} "
                         f"[{', '.join(sorted(node.tables))}]")
            visit(node.left, depth + 1)
            visit(node.right, depth + 1)
        else:  # pragma: no cover - future node kinds
            lines.append(f"{pad}{node!r}")

    visit(plan, 0)
    return "\n".join(lines)


def one_line(plan: Plan) -> str:
    """Render a plan as a compact one-line expression."""
    if isinstance(plan, ScanPlan):
        suffix = {"full_scan": "", "index_seek": "*"}.get(
            plan.operator.name, f"~{plan.operator.name}")
        return f"{plan.table}{suffix}"
    if isinstance(plan, JoinPlan):
        symbol = "||" if plan.operator.parallel else "|><|"
        return (f"({one_line(plan.left)} {symbol} "
                f"{one_line(plan.right)})")
    return repr(plan)  # pragma: no cover - future node kinds
