"""Physical operators for scans and joins.

The paper's experimental setup (Section 7) uses:

* a **single-node hash join** and a **parallel hash join** — the parallel
  variant shuffles input data across cluster nodes, decreasing execution
  time for large inputs while always increasing total work (and therefore
  monetary fees);
* **full table scans** and **index seeks** — the seek wins for selective
  parametric predicates, the scan for non-selective ones, forcing the
  optimizer to keep plans for both cases.

Scenario 2 additionally motivates a **sampled scan** that trades result
precision for execution time.  Operators are declarative records; the cost
formulas live in the cost models (:mod:`repro.cloud`, :mod:`repro.approx`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScanOperator:
    """An access-path operator for one base table.

    Attributes:
        name: Operator identifier.
        uses_index: ``True`` for index-based access paths.
        sampling_rate: Fraction of rows read (1.0 = exact; < 1 models the
            approximate-processing sampled scan of Scenario 2).
    """

    name: str
    uses_index: bool = False
    sampling_rate: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.sampling_rate <= 1.0:
            raise ValueError("sampling rate must be in (0, 1]")


@dataclass(frozen=True)
class JoinOperator:
    """A join operator.

    Attributes:
        name: Operator identifier.
        parallel: ``True`` when the operator distributes work over the
            cluster (shuffles inputs, increases total work).
    """

    name: str
    parallel: bool = False


#: Scenario 1 scan operators.
FULL_SCAN = ScanOperator(name="full_scan")
INDEX_SEEK = ScanOperator(name="index_seek", uses_index=True)

#: Scenario 2 sampled scans (10% / 50% samples).
SAMPLED_SCAN_10 = ScanOperator(name="sampled_scan_10", sampling_rate=0.1)
SAMPLED_SCAN_50 = ScanOperator(name="sampled_scan_50", sampling_rate=0.5)

#: Scenario 1 join operators (the two hash joins of Section 7).
SINGLE_NODE_HASH_JOIN = JoinOperator(name="hash_join")
PARALLEL_HASH_JOIN = JoinOperator(name="parallel_hash_join", parallel=True)

#: Additional single-node joins available for richer search spaces.
SORT_MERGE_JOIN = JoinOperator(name="sort_merge_join")
BLOCK_NESTED_LOOP_JOIN = JoinOperator(name="block_nl_join")

#: Default operator sets matching the paper's experiments.
CLOUD_SCAN_OPERATORS = (FULL_SCAN, INDEX_SEEK)
CLOUD_JOIN_OPERATORS = (SINGLE_NODE_HASH_JOIN, PARALLEL_HASH_JOIN)
