"""Plan model: operators, plan trees, rendering."""

from .operators import (BLOCK_NESTED_LOOP_JOIN, CLOUD_JOIN_OPERATORS,
                        CLOUD_SCAN_OPERATORS, FULL_SCAN, INDEX_SEEK,
                        PARALLEL_HASH_JOIN, SAMPLED_SCAN_10, SAMPLED_SCAN_50,
                        SINGLE_NODE_HASH_JOIN, SORT_MERGE_JOIN, JoinOperator,
                        ScanOperator)
from .plan import JoinPlan, Plan, ScanPlan, combine
from .printer import one_line, render_plan

__all__ = [
    "BLOCK_NESTED_LOOP_JOIN",
    "CLOUD_JOIN_OPERATORS",
    "CLOUD_SCAN_OPERATORS",
    "FULL_SCAN",
    "INDEX_SEEK",
    "PARALLEL_HASH_JOIN",
    "SAMPLED_SCAN_10",
    "SAMPLED_SCAN_50",
    "SINGLE_NODE_HASH_JOIN",
    "SORT_MERGE_JOIN",
    "JoinOperator",
    "JoinPlan",
    "Plan",
    "ScanPlan",
    "ScanOperator",
    "combine",
    "one_line",
    "render_plan",
]
