"""The Cloud cost model: execution time and monetary fees (Scenario 1).

This is the cost model of the paper's experimental evaluation (Section 7):

* metrics ``time`` (wall clock, hours) and ``fees`` (USD, proportional to
  total work across nodes);
* scan operators: full table scan vs. index seek on the parametric
  predicate column — the seek wins for low selectivities, the scan for
  high ones, so "plans must often be kept for both cases";
* join operators: single-node hash join vs. parallel hash join — the
  parallel join shuffles its inputs, adding work (fees) while cutting wall
  clock for large inputs (Figure 7).

Costs are computed exactly as polynomials in the selectivity parameters
(:class:`repro.cost.ParamPolynomial`) and PWL-interpolated onto a
:class:`repro.cost.SharedPartition`, so every cost function produced by one
model instance lives on the same region partition (aligned fast paths).
"""

from __future__ import annotations

from ..cost import (CLOUD_METRICS, MultiObjectivePWL, ParamPolynomial,
                    SharedPartition)
from ..errors import PlanError
from ..plans import (CLOUD_JOIN_OPERATORS, FULL_SCAN, INDEX_SEEK, JoinPlan,
                     JoinOperator, Plan, ScanOperator, ScanPlan)
from ..query import Query
from .cluster import DEFAULT_CLUSTER, ClusterSpec
from .pricing import DEFAULT_PRICING, PricingModel


class CloudCostModel:
    """Multi-objective parametric cost model for the Cloud scenario.

    Args:
        query: The query being optimized (provides cardinality polynomials).
        resolution: PWL grid cells per parameter axis.  Resolution 1 is
            exact for affine costs; products of two selectivities need
            resolution >= 2 for a reasonable approximation.
        cluster: Hardware model.
        pricing: Fee model.
        partition: Optional pre-built shared partition (must match the
            query's parameter count); built on demand otherwise.
    """

    metrics = CLOUD_METRICS

    def __init__(self, query: Query, resolution: int = 2,
                 cluster: ClusterSpec = DEFAULT_CLUSTER,
                 pricing: PricingModel = DEFAULT_PRICING,
                 partition: SharedPartition | None = None,
                 extended_operators: bool = False) -> None:
        self.query = query
        self.cluster = cluster
        self.pricing = pricing
        self.extended_operators = extended_operators
        self.num_params = max(1, query.num_params)
        if partition is None:
            partition = SharedPartition([0.0] * self.num_params,
                                        [1.0] * self.num_params,
                                        resolution)
        if partition.dim != self.num_params:
            raise ValueError("partition dimension != query parameter count")
        self.partition = partition
        self._vector_cache: dict[tuple, MultiObjectivePWL] = {}

    # ------------------------------------------------------------------
    # Operator enumeration
    # ------------------------------------------------------------------

    def scan_operators(self, table: str) -> tuple[ScanOperator, ...]:
        """Access paths available for a base table.

        The index seek is offered exactly when the table carries a
        parametric predicate with an index on its column (the paper's
        setup: "Indices are available for each column with a predicate").
        """
        pred = self.query.parametric_predicate_of(table)
        if pred is not None and self.query.catalog.has_index(
                table, pred.column):
            return (FULL_SCAN, INDEX_SEEK)
        return (FULL_SCAN,)

    def join_operators(self) -> tuple[JoinOperator, ...]:
        """Join operators available for any table-set split.

        The paper's experiments use the two hash joins; the optional
        extended set adds a sort-merge join and a block-nested-loop join
        for a richer search space (exercised by the ablation benchmark).
        """
        if self.extended_operators:
            from ..plans import BLOCK_NESTED_LOOP_JOIN, SORT_MERGE_JOIN
            return CLOUD_JOIN_OPERATORS + (SORT_MERGE_JOIN,
                                           BLOCK_NESTED_LOOP_JOIN)
        return CLOUD_JOIN_OPERATORS

    # ------------------------------------------------------------------
    # Exact polynomial cost formulas
    # ------------------------------------------------------------------

    def _lift(self, polys: dict[str, ParamPolynomial]
              ) -> dict[str, ParamPolynomial]:
        """Embed query polynomials into the model's parameter space.

        Only relevant for parameter-free queries, where the optimizer
        still works over one (dummy) parameter dimension.
        """
        return {m: p.lifted(self.num_params) for m, p in polys.items()}

    def scan_cost_polynomials(self, plan: ScanPlan
                              ) -> dict[str, ParamPolynomial]:
        """Exact time/fees polynomials for a scan plan."""
        table = self.query.catalog.table(plan.table)
        raw_rows = float(table.cardinality)
        constant = lambda v: ParamPolynomial.constant(self.num_params, v)
        if plan.operator.name == FULL_SCAN.name:
            # Sequential read of the whole table; the filter is applied on
            # the fly, so the cost does not depend on the selectivity.
            time = constant(self.cluster.scan_hours_per_tuple * raw_rows)
        elif plan.operator.name == INDEX_SEEK.name:
            pred = self.query.parametric_predicate_of(plan.table)
            if pred is None:
                raise PlanError(
                    f"index seek on {plan.table!r} without a parametric "
                    f"predicate")
            # Random access to the sigma * |T| matching rows.
            matched = self.query.base_cardinality(plan.table).lifted(
                self.num_params)
            time = (matched * self.cluster.seek_hours_per_tuple
                    + constant(self.cluster.seek_startup_hours))
        else:
            raise PlanError(f"unknown scan operator {plan.operator.name!r}")
        # Scans run on one node: work equals wall-clock time.
        fees = time * self.pricing.usd_per_node_hour
        return self._lift({"time": time, "fees": fees})

    def join_cost_polynomials(self, left_tables: frozenset[str],
                              right_tables: frozenset[str],
                              operator: JoinOperator
                              ) -> dict[str, ParamPolynomial]:
        """Exact time/fees polynomials for the join operator itself.

        These are the *local* operator costs (``o.w`` / ``o.b`` of
        Algorithm 3); the optimizer accumulates them with the sub-plan
        costs.
        """
        cluster = self.cluster
        constant = lambda v: ParamPolynomial.constant(self.num_params, v)
        left = self.query.cardinality(left_tables).lifted(self.num_params)
        right = self.query.cardinality(right_tables).lifted(self.num_params)
        output = self.query.cardinality(
            left_tables | right_tables).lifted(self.num_params)
        through = left + right + output
        if operator.name == "hash_join":
            time = through * cluster.process_hours_per_tuple
            work = time
        elif operator.name == "sort_merge_join":
            # Sort factor uses the (optimization-time-known) raw input
            # sizes; the parameter-dependent row counts scale linearly.
            import math
            raw = sum(self.query.catalog.table(t).cardinality
                      for t in (left_tables | right_tables))
            log_factor = max(1.0, math.log2(max(raw, 2)))
            time = ((left + right) * (cluster.process_hours_per_tuple
                                      * 0.6 * log_factor)
                    + output * cluster.process_hours_per_tuple)
            work = time
        elif operator.name == "block_nl_join":
            # Quadratic in the inputs: |L| * |R| block probes.  Exercises
            # genuinely nonlinear (degree-2 multilinear) cost functions.
            time = ((left * right)
                    * (cluster.process_hours_per_tuple / 1000.0)
                    + output * cluster.process_hours_per_tuple)
            work = time
        elif operator.name == "parallel_hash_join":
            shuffled = left + right
            time = (constant(cluster.parallel_startup_hours)
                    + (shuffled * cluster.shuffle_hours_per_tuple
                       + through * cluster.process_hours_per_tuple)
                    * (1.0 / cluster.num_nodes))
            work = (constant(cluster.parallel_coordination_work_hours)
                    + shuffled * cluster.shuffle_work_hours_per_tuple
                    + through * cluster.process_hours_per_tuple)
        else:
            raise PlanError(f"unknown join operator {operator.name!r}")
        fees = work * self.pricing.usd_per_node_hour
        return self._lift({"time": time, "fees": fees})

    def plan_cost_polynomials(self, plan: Plan
                              ) -> dict[str, ParamPolynomial]:
        """Exact cost polynomials of a whole plan (recursive sum)."""
        if isinstance(plan, ScanPlan):
            return self.scan_cost_polynomials(plan)
        if isinstance(plan, JoinPlan):
            left = self.plan_cost_polynomials(plan.left)
            right = self.plan_cost_polynomials(plan.right)
            local = self.join_cost_polynomials(
                plan.left.tables, plan.right.tables, plan.operator)
            return {m: left[m] + right[m] + local[m] for m in local}
        raise PlanError(f"unknown plan node {plan!r}")

    # ------------------------------------------------------------------
    # PWL cost functions (what the optimizer consumes)
    # ------------------------------------------------------------------

    def _vector(self, key: tuple, polys: dict[str, ParamPolynomial]
                ) -> MultiObjectivePWL:
        cached = self._vector_cache.get(key)
        if cached is None:
            cached = self.partition.vector_from_polynomials(polys)
            self._vector_cache[key] = cached
        return cached

    def scan_cost(self, plan: ScanPlan) -> MultiObjectivePWL:
        """PWL cost function of a scan plan."""
        key = ("scan", plan.table, plan.operator.name)
        return self._vector(key, self.scan_cost_polynomials(plan))

    def join_local_cost(self, left_tables: frozenset[str],
                        right_tables: frozenset[str],
                        operator: JoinOperator) -> MultiObjectivePWL:
        """PWL cost function of the join operator itself."""
        key = ("join", tuple(sorted(left_tables)),
               tuple(sorted(right_tables)), operator.name)
        return self._vector(key, self.join_cost_polynomials(
            left_tables, right_tables, operator))

    def plan_cost(self, plan: Plan) -> MultiObjectivePWL:
        """PWL cost function of a whole plan.

        Because interpolation onto a fixed partition is linear in the
        interpolated values, this equals the accumulation of per-node PWL
        costs exactly (asserted by the test suite).
        """
        key = ("plan", plan.signature())
        return self._vector(key, self.plan_cost_polynomials(plan))
