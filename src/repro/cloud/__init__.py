"""Cloud scenario substrate: cluster model, EC2-style pricing, cost model."""

from .cluster import DEFAULT_CLUSTER, ClusterSpec
from .costmodel import CloudCostModel
from .memory import MemoryCloudCostModel
from .pricing import (DEFAULT_PRICING, EC2_MEDIUM_2014_USD_PER_HOUR,
                      PricingModel)

__all__ = [
    "DEFAULT_CLUSTER",
    "DEFAULT_PRICING",
    "EC2_MEDIUM_2014_USD_PER_HOUR",
    "CloudCostModel",
    "ClusterSpec",
    "MemoryCloudCostModel",
    "PricingModel",
]
