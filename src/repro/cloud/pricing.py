"""Cloud pricing model.

"Monetary cost are calculated according to the pricing system of Amazon
EC2" (Section 7): nodes are billed per busy hour, so fees are proportional
to the *total work* summed over all nodes.  Parallelization shrinks wall
clock but adds shuffle/coordination work — which is exactly why execution
time and monetary fees are conflicting metrics in Scenario 1.
"""

from __future__ import annotations

from dataclasses import dataclass

#: On-demand price of the 2014 EC2 general-purpose medium instance
#: (m3.medium, US East), in USD per instance hour.
EC2_MEDIUM_2014_USD_PER_HOUR = 0.070


@dataclass(frozen=True)
class PricingModel:
    """Work-proportional pricing.

    Attributes:
        usd_per_node_hour: Billed price per node busy-hour.  The default of
            1.0 keeps fee magnitudes readable in examples; pass
            :data:`EC2_MEDIUM_2014_USD_PER_HOUR` for paper-era absolute
            prices (only the scale changes, never plan comparisons).
    """

    usd_per_node_hour: float = 1.0

    def __post_init__(self) -> None:
        if self.usd_per_node_hour <= 0:
            raise ValueError("price per node hour must be positive")

    def fees_for_work(self, node_hours: float) -> float:
        """Fees charged for a given amount of total work (node-hours)."""
        return self.usd_per_node_hour * node_hours


#: Default pricing used across examples, tests and benchmarks.
DEFAULT_PRICING = PricingModel()
