"""Buffer-size parameters: genuinely piecewise-linear cost functions.

Besides predicate selectivities, the paper names "the amount of buffer
space that is available at run time" as a classic PQ parameter (Sections 1
and 2).  Buffer parameters are qualitatively interesting because they make
operator cost functions *genuinely* PWL — a hash join is linear while its
build side fits in memory and switches to a different linear regime once
it spills — rather than smooth functions that merely get PWL-approximated.

:class:`MemoryCloudCostModel` extends the Cloud scenario with one extra
parameter: the fraction of per-node memory available at run time (the last
component of the parameter vector).  Hash joins pay a spill penalty
``max(0, build_rows - available) * spill_factor`` that is interpolated
onto the shared partition together with the smooth terms; with enough
resolution the kink shows up as adjacent linear pieces with different
gradients, exactly the shape PWL-RRPA is designed for.
"""

from __future__ import annotations

import numpy as np

from ..cost import CLOUD_METRICS, MultiObjectivePWL, SharedPartition
from ..errors import PlanError
from ..plans import (CLOUD_JOIN_OPERATORS, FULL_SCAN, INDEX_SEEK,
                     JoinOperator, ScanOperator, ScanPlan)
from ..query import Query
from .cluster import DEFAULT_CLUSTER, ClusterSpec
from .pricing import DEFAULT_PRICING, PricingModel


class MemoryCloudCostModel:
    """Cloud cost model with selectivity parameters plus a buffer parameter.

    The parameter vector is ``(x_0, ..., x_{k-1}, m)`` where the ``x_i``
    are the query's predicate selectivities and ``m`` in ``[0, 1]`` is the
    fraction of :attr:`ClusterSpec.memory_tuples_per_node` available to
    hash-join builds at run time.

    Args:
        query: The query being optimized.
        resolution: PWL grid resolution per axis (use >= 2 so the spill
            kink is representable).
        cluster: Hardware model.
        pricing: Fee model.
        spill_factor: Extra processing hours per spilled build tuple,
            expressed as a multiple of ``process_hours_per_tuple``.
    """

    metrics = CLOUD_METRICS

    def __init__(self, query: Query, resolution: int = 2,
                 cluster: ClusterSpec = DEFAULT_CLUSTER,
                 pricing: PricingModel = DEFAULT_PRICING,
                 spill_factor: float = 3.0) -> None:
        self.query = query
        self.cluster = cluster
        self.pricing = pricing
        self.spill_factor = float(spill_factor)
        self.num_sel_params = query.num_params
        self.num_params = self.num_sel_params + 1
        self.memory_index = self.num_params - 1
        self.partition = SharedPartition([0.0] * self.num_params,
                                         [1.0] * self.num_params,
                                         resolution)
        self._vector_cache: dict[tuple, MultiObjectivePWL] = {}

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def scan_operators(self, table: str) -> tuple[ScanOperator, ...]:
        """Same access paths as the plain Cloud model."""
        pred = self.query.parametric_predicate_of(table)
        if pred is not None and self.query.catalog.has_index(
                table, pred.column):
            return (FULL_SCAN, INDEX_SEEK)
        return (FULL_SCAN,)

    def join_operators(self) -> tuple[JoinOperator, ...]:
        """Single-node and parallel hash joins."""
        return CLOUD_JOIN_OPERATORS

    # ------------------------------------------------------------------
    # Cost callables (evaluated pointwise, interpolated onto the grid)
    # ------------------------------------------------------------------

    def _sel(self, x) -> np.ndarray:
        return np.asarray(x, dtype=float)[: self.num_sel_params]

    def _memory_tuples(self, x) -> float:
        frac = float(np.asarray(x, dtype=float)[self.memory_index])
        return frac * self.cluster.memory_tuples_per_node

    def _cardinality(self, tables: frozenset[str], x) -> float:
        sel = self._sel(x)
        return self.query.cardinality(tables).evaluate(sel)

    def _scan_values(self, plan: ScanPlan, x) -> dict[str, float]:
        table = self.query.catalog.table(plan.table)
        if plan.operator.name == FULL_SCAN.name:
            time = self.cluster.scan_hours_per_tuple * table.cardinality
        elif plan.operator.name == INDEX_SEEK.name:
            pred = self.query.parametric_predicate_of(plan.table)
            if pred is None:
                raise PlanError(
                    f"index seek on {plan.table!r} without predicate")
            matched = self._cardinality(frozenset((plan.table,)), x)
            time = (self.cluster.seek_startup_hours
                    + self.cluster.seek_hours_per_tuple * matched)
        else:
            raise PlanError(f"unknown scan operator {plan.operator.name!r}")
        return {"time": time,
                "fees": time * self.pricing.usd_per_node_hour}

    def _join_values(self, left_tables, right_tables, operator, x
                     ) -> dict[str, float]:
        cluster = self.cluster
        left = self._cardinality(left_tables, x)
        right = self._cardinality(right_tables, x)
        output = self._cardinality(left_tables | right_tables, x)
        through = left + right + output
        memory = self._memory_tuples(x)
        spill_hours = (self.spill_factor
                       * cluster.process_hours_per_tuple)
        if operator.name == "hash_join":
            spilled = max(0.0, left - memory)
            time = (through * cluster.process_hours_per_tuple
                    + spilled * spill_hours)
            work = time
        elif operator.name == "parallel_hash_join":
            shuffled = left + right
            per_node_build = left / cluster.num_nodes
            spilled = max(0.0, per_node_build - memory)
            time = (cluster.parallel_startup_hours
                    + (shuffled * cluster.shuffle_hours_per_tuple
                       + through * cluster.process_hours_per_tuple)
                    / cluster.num_nodes
                    + spilled * spill_hours)
            work = (cluster.parallel_coordination_work_hours
                    + shuffled * cluster.shuffle_work_hours_per_tuple
                    + through * cluster.process_hours_per_tuple
                    + spilled * spill_hours * cluster.num_nodes)
        else:
            raise PlanError(f"unknown join operator {operator.name!r}")
        return {"time": time,
                "fees": work * self.pricing.usd_per_node_hour}

    # ------------------------------------------------------------------
    # PWL cost functions (backend interface)
    # ------------------------------------------------------------------

    def _vector_from_callable(self, key: tuple, fn) -> MultiObjectivePWL:
        cached = self._vector_cache.get(key)
        if cached is None:
            components = {}
            for metric in ("time", "fees"):
                components[metric] = self.partition.interpolate(
                    lambda v, m=metric: fn(v)[m])
            cached = MultiObjectivePWL(components)
            self._vector_cache[key] = cached
        return cached

    def scan_cost(self, plan: ScanPlan) -> MultiObjectivePWL:
        """PWL cost of a scan (constant along the memory axis)."""
        key = ("scan", plan.table, plan.operator.name)
        return self._vector_from_callable(
            key, lambda x: self._scan_values(plan, x))

    def join_local_cost(self, left_tables: frozenset[str],
                        right_tables: frozenset[str],
                        operator: JoinOperator) -> MultiObjectivePWL:
        """PWL cost of the join, with the spill kink along the memory axis."""
        key = ("join", tuple(sorted(left_tables)),
               tuple(sorted(right_tables)), operator.name)
        return self._vector_from_callable(
            key, lambda x: self._join_values(left_tables, right_tables,
                                             operator, x))

    def plan_cost_values(self, plan, x) -> dict[str, float]:
        """Exact (un-approximated) cost vector of a whole plan at ``x``.

        Used by tests as ground truth; the optimizer itself reasons about
        the PWL interpolations.
        """
        from ..plans import JoinPlan
        if isinstance(plan, ScanPlan):
            return self._scan_values(plan, x)
        if isinstance(plan, JoinPlan):
            left = self.plan_cost_values(plan.left, x)
            right = self.plan_cost_values(plan.right, x)
            local = self._join_values(plan.left.tables, plan.right.tables,
                                      plan.operator, x)
            return {m: left[m] + right[m] + local[m] for m in local}
        raise PlanError(f"unknown plan node {plan!r}")
