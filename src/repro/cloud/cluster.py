"""Cluster hardware model for the Cloud scenario.

The paper's experiments simulate cluster nodes whose properties (main
memory size etc.) "correspond to the ones of the general purpose medium
instance in EC2".  We model the quantities the cost formulas need: per-node
processing throughput, network shuffle throughput, and parallel-job startup
latency.  Absolute values are synthetic but chosen so the trade-offs the
paper describes materialize inside the unit parameter box:

* the parallel hash join beats the single-node join for large inputs but
  loses for small ones (startup + shuffle overhead);
* the index seek beats the full scan for selectivities below ~25%
  (Figure 7's crossover).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterSpec:
    """Simulated cluster parameters.

    Attributes:
        num_nodes: Worker nodes available to parallel operators.
        process_hours_per_tuple: CPU time to process one tuple through a
            hash-join or scan pipeline, in hours.
        scan_hours_per_tuple: Sequential-read time per tuple.
        seek_hours_per_tuple: Random-access read time per matching tuple
            (index seeks pay random I/O, hence > scan cost per tuple).
        seek_startup_hours: B-tree descend / index open latency.
        shuffle_hours_per_tuple: Network time to re-partition one tuple.
        shuffle_work_hours_per_tuple: Aggregate node-busy time added per
            shuffled tuple (serialization + network + deserialization) —
            this is *work*, so it shows up in fees even though the wall
            clock only sees ``shuffle_hours_per_tuple / num_nodes``.
        parallel_startup_hours: Latency to launch a parallel stage.
        parallel_coordination_work_hours: Fixed extra node-busy time per
            parallel stage (scheduling, result collection).
        memory_tuples_per_node: Hash-table capacity per node, used by the
            optional buffer-size parameter extension.
    """

    num_nodes: int = 8
    process_hours_per_tuple: float = 2.0e-6
    scan_hours_per_tuple: float = 2.0e-6
    seek_hours_per_tuple: float = 8.0e-6
    seek_startup_hours: float = 1.0e-4
    shuffle_hours_per_tuple: float = 3.0e-6
    shuffle_work_hours_per_tuple: float = 1.5e-6
    parallel_startup_hours: float = 5.0e-3
    parallel_coordination_work_hours: float = 1.0e-2
    memory_tuples_per_node: int = 1_000_000

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("a cluster needs at least 2 nodes")
        for field_name in ("process_hours_per_tuple", "scan_hours_per_tuple",
                           "seek_hours_per_tuple", "shuffle_hours_per_tuple",
                           "shuffle_work_hours_per_tuple"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


#: Default cluster used across examples, tests and benchmarks.
DEFAULT_CLUSTER = ClusterSpec()
