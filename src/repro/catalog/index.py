"""Index definitions for the synthetic catalog.

The paper's experimental setup states "Indices are available for each
column with a predicate", which is what makes index seeks compete with full
scans and forces the optimizer to keep plans for both cases (low vs. high
selectivity).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Index:
    """A secondary index on one column.

    Attributes:
        table_name: Table the index belongs to.
        column_name: Indexed column.
        clustered: Clustered indexes avoid per-match random I/O.
    """

    table_name: str
    column_name: str
    clustered: bool = False

    @property
    def name(self) -> str:
        """Canonical index name."""
        kind = "cidx" if self.clustered else "idx"
        return f"{kind}_{self.table_name}_{self.column_name}"
