"""Column definitions for the synthetic catalog."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Column:
    """A table column.

    Attributes:
        name: Column name, unique within its table.
        distinct_values: Number of distinct values.  The paper's workload
            generator assumes "unique values occupy up to 10% of a table
            column"; the query generator enforces that bound.
        width_bytes: Storage width used by scan/shuffle cost formulas.
    """

    name: str
    distinct_values: int
    width_bytes: int = 8

    def __post_init__(self) -> None:
        if self.distinct_values < 1:
            raise ValueError(
                f"column {self.name!r} needs >= 1 distinct value")
        if self.width_bytes < 1:
            raise ValueError(f"column {self.name!r} has invalid width")

    def equality_selectivity(self) -> float:
        """Selectivity of ``col = literal`` under uniformity: ``1/distinct``."""
        return 1.0 / self.distinct_values
