"""Cardinality and selectivity estimation over the catalog.

Standard System-R style uniformity assumptions: the selectivity of an
equality join ``R.a = S.b`` is ``1 / max(distinct(a), distinct(b))``, and
the cardinality of a join is the product of input cardinalities and the
join selectivity.  Parameterized predicates contribute their *parameter*
as a symbolic selectivity factor (see :mod:`repro.cost.multilinear`), which
is exactly how the paper turns unknown predicate selectivities into
optimization-time parameters.
"""

from __future__ import annotations

from ..cost.multilinear import ParamPolynomial
from .catalog import Catalog


def join_selectivity(catalog: Catalog, left_table: str, left_column: str,
                     right_table: str, right_column: str) -> float:
    """Equality-join selectivity under the uniformity assumption."""
    left = catalog.table(left_table).column(left_column)
    right = catalog.table(right_table).column(right_column)
    return 1.0 / max(left.distinct_values, right.distinct_values)


def base_cardinality_polynomial(catalog: Catalog, table_name: str,
                                parameter_index: int | None,
                                num_params: int) -> ParamPolynomial:
    """Cardinality of one base table after its (optional) parametric filter.

    Args:
        catalog: The catalog.
        table_name: Table to look up.
        parameter_index: Index of the selectivity parameter attached to the
            table's predicate, or ``None`` when the table is unfiltered.
        num_params: Total number of parameters in the query.

    Returns:
        ``|T|`` as a constant polynomial, or ``|T| * x[parameter_index]``.
    """
    card = float(catalog.table(table_name).cardinality)
    poly = ParamPolynomial.constant(num_params, card)
    if parameter_index is not None:
        poly = poly * ParamPolynomial.variable(num_params, parameter_index)
    return poly
