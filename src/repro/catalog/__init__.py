"""Synthetic database catalog: tables, columns, indexes, statistics."""

from .catalog import Catalog
from .column import Column
from .index import Index
from .statistics import base_cardinality_polynomial, join_selectivity
from .table import Table

__all__ = [
    "Catalog",
    "Column",
    "Index",
    "Table",
    "base_cardinality_polynomial",
    "join_selectivity",
]
