"""The catalog: tables plus indexes, with lookup helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from ..errors import CatalogError
from .index import Index
from .table import Table


@dataclass
class Catalog:
    """A collection of tables and indexes.

    Args:
        tables: The base tables (names must be unique).
        indexes: Secondary indexes (must reference existing table columns).
    """

    tables: dict[str, Table] = field(default_factory=dict)
    indexes: list[Index] = field(default_factory=list)

    @staticmethod
    def from_tables(tables: Iterable[Table],
                    indexes: Iterable[Index] = ()) -> Catalog:
        """Build a catalog, validating uniqueness and references."""
        catalog = Catalog()
        for table in tables:
            catalog.add_table(table)
        for index in indexes:
            catalog.add_index(index)
        return catalog

    def add_table(self, table: Table) -> None:
        """Add a table.

        Raises:
            CatalogError: If a table of that name already exists.
        """
        if table.name in self.tables:
            raise CatalogError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table

    def add_index(self, index: Index) -> None:
        """Add an index.

        Raises:
            CatalogError: If the referenced table or column is missing.
        """
        table = self.table(index.table_name)
        if not table.has_column(index.column_name):
            raise CatalogError(
                f"index references missing column "
                f"{index.table_name}.{index.column_name}")
        self.indexes.append(index)

    def table(self, name: str) -> Table:
        """Look up a table by name.

        Raises:
            CatalogError: For unknown tables.
        """
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_index(self, table_name: str, column_name: str) -> bool:
        """Return whether an index exists on ``table.column``."""
        return any(ix.table_name == table_name
                   and ix.column_name == column_name
                   for ix in self.indexes)

    def table_names(self) -> tuple[str, ...]:
        """All table names in insertion order."""
        return tuple(self.tables)
