"""Table definitions for the synthetic catalog."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError
from .column import Column


@dataclass(frozen=True)
class Table:
    """A base table with cardinality statistics.

    Attributes:
        name: Unique table name.
        cardinality: Number of rows.
        columns: The table's columns.
    """

    name: str
    cardinality: int
    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise ValueError(f"table {self.name!r} needs >= 1 row")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(
                f"table {self.name!r} has duplicate column names")
        object.__setattr__(self, "columns", tuple(self.columns))

    def column(self, name: str) -> Column:
        """Look up a column by name.

        Raises:
            CatalogError: For unknown column names.
        """
        for col in self.columns:
            if col.name == name:
                return col
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """Return whether the table has a column of that name."""
        return any(c.name == name for c in self.columns)

    @property
    def row_bytes(self) -> int:
        """Total row width (sum of column widths, minimum 8)."""
        return max(8, sum(c.width_bytes for c in self.columns))
