"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish error categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class DimensionMismatchError(ReproError):
    """Raised when vectors/matrices of incompatible dimensions are combined.

    Examples include intersecting polytopes that live in parameter spaces of
    different dimensionality, or evaluating a cost function at a parameter
    vector of the wrong length.
    """


class InfeasibleProgramError(ReproError):
    """Raised when a linear program that is expected to be feasible is not."""


class UnboundedProgramError(ReproError):
    """Raised when a linear program is unbounded in the optimized direction."""


class SolverError(ReproError):
    """Raised when the underlying LP solver fails for an unexpected reason."""


class EmptyRegionError(ReproError):
    """Raised when an operation requires a non-empty region but got an empty one."""


class CatalogError(ReproError):
    """Raised for inconsistent catalog definitions (unknown tables, columns...)."""


class QueryError(ReproError):
    """Raised for malformed queries (disconnected predicates, unknown tables...)."""


class PlanError(ReproError):
    """Raised for malformed query plans (overlapping table sets, bad operators)."""


class OptimizationError(ReproError):
    """Raised when an optimizer cannot produce a plan set for a query."""
