"""Synthetic data generation for plan execution.

The paper's evaluation is purely cost-model-driven (a simulated cluster).
To let downstream users *execute* the plans MPQ produces, this module
materializes the synthetic catalog as column arrays whose statistics match
the catalog exactly:

* each table gets ``cardinality`` rows;
* each column draws values uniformly from ``0 .. distinct_values - 1``
  (matching the uniformity assumption of the selectivity model);
* generation is deterministic per (seed, table).

Parametric predicates are instantiated by choosing literals whose actual
selectivity is as close as possible to a requested parameter value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..catalog import Catalog
from ..errors import CatalogError


@dataclass
class MaterializedTable:
    """A generated table: named integer column arrays.

    Attributes:
        name: Table name.
        columns: Mapping column name -> value array (all equal length).
    """

    name: str
    columns: dict[str, np.ndarray]

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        if not self.columns:
            return 0
        return int(next(iter(self.columns.values())).shape[0])

    def column(self, name: str) -> np.ndarray:
        """Column array by name.

        Raises:
            CatalogError: For unknown columns.
        """
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"materialized table {self.name!r} has no column "
                f"{name!r}") from None


@dataclass
class Database:
    """A materialized synthetic database.

    Attributes:
        catalog: The catalog the data was generated from.
        tables: Mapping table name -> materialized data.
    """

    catalog: Catalog
    tables: dict[str, MaterializedTable] = field(default_factory=dict)

    def table(self, name: str) -> MaterializedTable:
        """Materialized table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"no materialized table {name!r}") from None


def generate_database(catalog: Catalog, seed: int = 0) -> Database:
    """Materialize every table of a catalog.

    Args:
        catalog: Source catalog with cardinalities and distinct counts.
        seed: Base RNG seed; data is deterministic per (seed, table name).

    Returns:
        A :class:`Database` with one array per column.
    """
    db = Database(catalog=catalog)
    for name, table in catalog.tables.items():
        rng = np.random.default_rng(
            abs(hash((seed, name))) % (2 ** 32))
        columns = {}
        for col in table.columns:
            columns[col.name] = rng.integers(
                0, col.distinct_values, size=table.cardinality,
                dtype=np.int64)
        db.tables[name] = MaterializedTable(name=name, columns=columns)
    return db


def literal_for_selectivity(db: Database, table: str, column: str,
                            selectivity: float) -> int:
    """Pick the literal whose equality selectivity best matches a target.

    Args:
        db: The materialized database.
        table: Table holding the predicate column.
        column: Predicate column.
        selectivity: Desired fraction of matching rows in ``[0, 1]``.

    Returns:
        The column value whose match fraction is closest to the target.
        (With uniform data each single value matches ~1/distinct of the
        rows, so very high targets are unattainable with one literal —
        callers wanting a *range* of selectivities should use
        :func:`threshold_for_selectivity` instead.)
    """
    values = db.table(table).column(column)
    counts = np.bincount(values)
    fractions = counts / max(1, values.shape[0])
    return int(np.argmin(np.abs(fractions - selectivity)))


def threshold_for_selectivity(db: Database, table: str, column: str,
                              selectivity: float) -> int:
    """Pick a threshold so that ``column < threshold`` matches a target
    fraction of rows.

    Range predicates reach any selectivity in ``[0, 1]``, which is how the
    executor instantiates the paper's *parameterized* predicates at a
    requested parameter value.
    """
    values = db.table(table).column(column)
    if values.shape[0] == 0:
        return 0
    target_rank = selectivity * values.shape[0]
    sorted_values = np.sort(values)
    index = int(np.clip(round(target_rank), 0, values.shape[0] - 1))
    if selectivity >= 1.0:
        return int(sorted_values[-1]) + 1
    return int(sorted_values[index])
