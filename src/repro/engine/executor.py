"""Plan execution over materialized synthetic data.

Executes the plan trees produced by the optimizers against a
:class:`repro.engine.data.Database`, producing actual result rows plus
*simulated* execution costs that follow the same formulas as the Cloud
cost model — but fed with the **actual** intermediate-result sizes rather
than the optimizer's cardinality estimates.

This closes the loop the paper leaves open (its evaluation is optimizer-
only): tests and examples can check that the plans PWL-RRPA keeps really
are the right plans to keep, i.e. that simulated execution reproduces the
cost model's plan ordering wherever estimates are accurate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..cloud.cluster import DEFAULT_CLUSTER, ClusterSpec
from ..cloud.pricing import DEFAULT_PRICING, PricingModel
from ..errors import PlanError
from ..plans import FULL_SCAN, INDEX_SEEK, JoinPlan, Plan, ScanPlan
from ..query import Query
from .data import Database, threshold_for_selectivity


@dataclass
class Relation:
    """An intermediate result: named column arrays of equal length.

    Column names are qualified as ``"table.column"``.
    """

    columns: dict[str, np.ndarray]

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        if not self.columns:
            return 0
        return int(next(iter(self.columns.values())).shape[0])

    def take(self, indices: np.ndarray) -> Relation:
        """Row subset by index array."""
        return Relation({name: arr[indices]
                         for name, arr in self.columns.items()})


@dataclass
class ExecutionResult:
    """Outcome of executing one plan.

    Attributes:
        relation: The result rows.
        time_hours: Simulated wall-clock time.
        work_hours: Simulated total node-busy time (drives fees).
        fees_usd: Monetary fees for the simulated work.
        tuples_processed: Total tuples that flowed through operators.
    """

    relation: Relation
    time_hours: float
    work_hours: float
    fees_usd: float
    tuples_processed: int

    @property
    def num_rows(self) -> int:
        """Rows in the final result."""
        return self.relation.num_rows

    def cost(self) -> dict[str, float]:
        """Cost vector in the Cloud metric space."""
        return {"time": self.time_hours, "fees": self.fees_usd}


class Executor:
    """Executes plan trees over a materialized database.

    Args:
        query: The query whose predicates instantiate filters and joins.
        database: The materialized data.
        cluster: Hardware model for the simulated timing.
        pricing: Fee model.
    """

    def __init__(self, query: Query, database: Database,
                 cluster: ClusterSpec = DEFAULT_CLUSTER,
                 pricing: PricingModel = DEFAULT_PRICING) -> None:
        self.query = query
        self.database = database
        self.cluster = cluster
        self.pricing = pricing

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(self, plan: Plan, x) -> ExecutionResult:
        """Execute ``plan`` with parameter values ``x``.

        Args:
            plan: A plan over (a subset of) the query's tables.
            x: Parameter vector; ``x[i]`` is the requested selectivity of
                the predicate with parameter index ``i``, realized as a
                range filter on the materialized data.

        Returns:
            The result relation plus simulated costs.
        """
        x = np.asarray(x, dtype=float).reshape(-1)
        relation, time_h, work_h, tuples = self._run(plan, x)
        return ExecutionResult(
            relation=relation, time_hours=time_h, work_hours=work_h,
            fees_usd=self.pricing.fees_for_work(work_h),
            tuples_processed=tuples)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _run(self, plan: Plan, x):
        if isinstance(plan, ScanPlan):
            return self._run_scan(plan, x)
        if isinstance(plan, JoinPlan):
            return self._run_join(plan, x)
        raise PlanError(f"unknown plan node {plan!r}")

    def _scan_filter(self, table: str, x):
        """Row mask for the table's parametric predicate (or None)."""
        pred = self.query.parametric_predicate_of(table)
        if pred is None:
            return None
        values = self.database.table(table).column(pred.column)
        threshold = threshold_for_selectivity(
            self.database, table, pred.column,
            float(x[pred.parameter_index]))
        return values < threshold

    def _run_scan(self, plan: ScanPlan, x):
        data = self.database.table(plan.table)
        mask = self._scan_filter(plan.table, x)
        raw_rows = data.num_rows
        if mask is None:
            indices = np.arange(raw_rows)
        else:
            indices = np.nonzero(mask)[0]
        matched = int(indices.shape[0])

        if plan.operator.name == FULL_SCAN.name:
            time_h = self.cluster.scan_hours_per_tuple * raw_rows
            tuples = raw_rows
        elif plan.operator.name == INDEX_SEEK.name:
            if mask is None:
                raise PlanError(
                    f"index seek on {plan.table!r} without a predicate")
            time_h = (self.cluster.seek_startup_hours
                      + self.cluster.seek_hours_per_tuple * matched)
            tuples = matched
        else:
            raise PlanError(
                f"executor does not support scan {plan.operator.name!r}")

        columns = {f"{plan.table}.{name}": arr[indices]
                   for name, arr in data.columns.items()}
        return Relation(columns), time_h, time_h, tuples

    def _join_predicates_between(self, left_tables, right_tables):
        return self.query.join_graph.predicates_between(
            frozenset(left_tables), frozenset(right_tables))

    @staticmethod
    def _hash_join_indices(build: np.ndarray, probe: np.ndarray):
        """Matching (build_idx, probe_idx) arrays via a hash table."""
        table: dict[int, list[int]] = defaultdict(list)
        for i, key in enumerate(build.tolist()):
            table[key].append(i)
        build_out: list[int] = []
        probe_out: list[int] = []
        for j, key in enumerate(probe.tolist()):
            hits = table.get(key)
            if hits:
                build_out.extend(hits)
                probe_out.extend([j] * len(hits))
        return (np.asarray(build_out, dtype=np.int64),
                np.asarray(probe_out, dtype=np.int64))

    def _run_join(self, plan: JoinPlan, x):
        left_rel, lt, lw, l_tuples = self._run(plan.left, x)
        right_rel, rt, rw, r_tuples = self._run(plan.right, x)

        predicates = self._join_predicates_between(plan.left.tables,
                                                   plan.right.tables)
        if predicates:
            first, *rest = predicates
            left_key, right_key = self._orient(first, plan)
            li, ri = self._hash_join_indices(left_rel.columns[left_key],
                                             right_rel.columns[right_key])
            for pred in rest:
                lk, rk = self._orient(pred, plan)
                keep = (left_rel.columns[lk][li]
                        == right_rel.columns[rk][ri])
                li, ri = li[keep], ri[keep]
        else:
            # Cartesian product (postponed joins on disconnected graphs).
            li = np.repeat(np.arange(left_rel.num_rows),
                           right_rel.num_rows)
            ri = np.tile(np.arange(right_rel.num_rows),
                         left_rel.num_rows)

        joined = Relation({**left_rel.take(li).columns,
                           **right_rel.take(ri).columns})

        l_rows, r_rows = left_rel.num_rows, right_rel.num_rows
        out_rows = joined.num_rows
        through = l_rows + r_rows + out_rows
        cluster = self.cluster
        if plan.operator.name == "hash_join":
            local_time = through * cluster.process_hours_per_tuple
            local_work = local_time
            time_h = lt + rt + local_time
        elif plan.operator.name == "parallel_hash_join":
            shuffled = l_rows + r_rows
            local_time = (cluster.parallel_startup_hours
                          + (shuffled * cluster.shuffle_hours_per_tuple
                             + through * cluster.process_hours_per_tuple)
                          / cluster.num_nodes)
            local_work = (cluster.parallel_coordination_work_hours
                          + shuffled * cluster.shuffle_work_hours_per_tuple
                          + through * cluster.process_hours_per_tuple)
            time_h = lt + rt + local_time
        else:
            raise PlanError(
                f"executor does not support join {plan.operator.name!r}")
        work_h = lw + rw + local_work
        tuples = l_tuples + r_tuples + through
        return joined, time_h, work_h, tuples

    @staticmethod
    def _orient(pred, plan: JoinPlan) -> tuple[str, str]:
        """Qualified key columns of a predicate, oriented to (left, right)."""
        if pred.left_table in plan.left.tables:
            return (f"{pred.left_table}.{pred.left_column}",
                    f"{pred.right_table}.{pred.right_column}")
        return (f"{pred.right_table}.{pred.right_column}",
                f"{pred.left_table}.{pred.left_column}")
