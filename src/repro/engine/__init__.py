"""Execution engine: synthetic data generation and plan execution.

Materializes the synthetic catalog as numpy column arrays and executes
optimizer plan trees against them, reporting actual result rows plus
simulated time/work following the Cloud cost model's formulas — fed with
the real intermediate-result sizes instead of estimates.
"""

from .data import (Database, MaterializedTable, generate_database,
                   literal_for_selectivity, threshold_for_selectivity)
from .executor import ExecutionResult, Executor, Relation

__all__ = [
    "Database",
    "ExecutionResult",
    "Executor",
    "MaterializedTable",
    "Relation",
    "generate_database",
    "literal_for_selectivity",
    "threshold_for_selectivity",
]
