"""Small shared utilities.

Currently: the bounded LRU mapping backing every memo cache in the
library (LP results, warm-start plan sets, run-time selection points),
and the process-wide switch that forces the scalar geometry kernels.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable
from typing import Any

from . import config


def scalar_kernels_enabled() -> bool:
    """Whether ``REPRO_SCALAR_KERNELS`` forces the scalar geometry kernels.

    The vectorized kernels (batched emptiness LPs, NumPy unaligned
    dominance and PWL addition) produce bit-identical results to the
    original per-piece-pair Python loops; setting ``REPRO_SCALAR_KERNELS``
    to a non-empty value other than ``0`` selects the scalar loops anyway.
    The equivalence test suite runs both sides of this switch against each
    other, and it doubles as an escape hatch for debugging.

    Read per call (the check is trivially cheap next to any LP) so tests
    can flip the environment variable with ``monkeypatch.setenv``.
    """
    return config.enabled("REPRO_SCALAR_KERNELS")


def deferred_lp_enabled() -> bool:
    """Whether call sites route LPs through the deferred futures queue.

    The deferred queue (:mod:`repro.lp.futures`) accumulates LPs across
    call sites and regions so the stacked simplex kernel sees real
    batches; it is on by default and produces bit-identical results and
    unchanged LP accounting relative to the eager path.  Setting
    ``REPRO_DEFERRED_LP=0`` forces every call site back to eager
    ``solve``/``solve_many`` dispatch (the equivalence suite sweeps both
    sides).  ``REPRO_SCALAR_KERNELS=1`` implies eager dispatch: the
    scalar oracle loops must not depend on any batching machinery.

    Read per call, like :func:`scalar_kernels_enabled`, so tests can flip
    the environment variable with ``monkeypatch.setenv``.
    """
    if scalar_kernels_enabled():
        return False
    return config.enabled("REPRO_DEFERRED_LP")


class BoundedLRU:
    """A mapping bounded to ``maxsize`` entries with LRU eviction.

    Args:
        maxsize: Maximum number of retained entries.  ``0`` disables the
            cache (nothing is ever stored), matching the convention of
            every ``cache_size`` knob in this library.
    """

    __slots__ = ("maxsize", "_data")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ValueError("cache maxsize must be >= 0")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the stored value (refreshing recency) or ``default``."""
        if key not in self._data:
            return default
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh a value, evicting the least recently used."""
        if self.maxsize == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def items(self) -> list[tuple[Hashable, Any]]:
        """Snapshot of ``(key, value)`` pairs, least recently used first."""
        return list(self._data.items())
