"""Central registry of every ``REPRO_*`` environment knob.

Every environment variable the library reads is declared here — name,
default, parse kind and docstring — and read through :func:`enabled` /
:func:`value`.  The registry is the single source of truth in three
ways:

* **Code**: direct ``os.environ`` reads of ``REPRO_*`` names anywhere
  else in the tree are a `reprolint` violation (rule REP201); an
  undeclared name passed to the getters raises :class:`KeyError` at the
  call site (and is caught statically by REP202).
* **Docs**: the knob table in ``docs/architecture.md`` is generated
  from this module (``python -m repro.config``) and checked for
  staleness by REP203.
* **Tests**: knob precedence is *explicit argument > environment >
  declared default*, regression-tested in ``tests/test_config.py``.

Parse kinds (behavior-preserving ports of the historical ad-hoc reads):

* ``flag`` — truthy iff the raw value, stripped, is neither empty nor
  ``"0"`` (so ``REPRO_SCALAR_KERNELS=false`` *enables* the flag, as it
  always has).
* ``switch`` — truthy unless the raw value lower-cases to ``"0"``,
  ``"false"`` or ``"off"``.
* ``float`` — :class:`float` of the raw value; unparseable or unset
  values yield the declared default.
* ``choice`` — the lower-cased raw value when it is one of
  ``choices``, else the declared default.
* ``path`` — the raw string, or the default when unset.

Knobs are re-read from the environment on every call (the reads are
trivially cheap next to any LP) so tests can flip them with
``monkeypatch.setenv``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Knob:
    """Declaration of one environment knob.

    Attributes:
        name: The environment variable, always ``REPRO_``-prefixed.
        default: Raw default applied when the variable is unset (as if
            the environment contained this string); ``None`` means
            "unset" — boolean kinds then parse the empty string, value
            kinds return ``None`` and the caller supplies its own
            fallback (documented in ``doc``).
        kind: Parse semantics — ``flag`` / ``switch`` / ``float`` /
            ``choice`` / ``path`` (see the module docstring).
        doc: One-line effect description (becomes the docs table row).
        choices: Accepted values for ``choice`` knobs.
    """

    name: str
    default: str | None
    kind: str
    doc: str
    choices: tuple[str, ...] = field(default=())


#: Every knob the library reads, in table order.  Keyword arguments are
#: mandatory style here: `reprolint` recovers this registry by parsing
#: the AST of this file, without importing it.
KNOBS: tuple[Knob, ...] = (
    Knob(name="REPRO_SCALAR_KERNELS",
         default=None,
         kind="flag",
         doc="Force the scalar (oracle) geometry/LP kernels; implies "
             "eager LP dispatch.  The equivalence suites sweep both "
             "sides of this switch."),
    Knob(name="REPRO_DEFERRED_LP",
         default="1",
         kind="flag",
         doc="Route LPs through the deferred futures queue so the "
             "stacked kernel sees real batches; set to 0 for eager "
             "per-call-site dispatch."),
    Knob(name="REPRO_STORE_SEED",
         default="1",
         kind="switch",
         doc="Allow sessions to seed anytime runs from the persistent "
             "plan-set store's nearest same-family neighbor."),
    Knob(name="REPRO_STORE_SEED_BREADTH",
         default="auto",
         kind="choice",
         choices=("auto", "all", "one"),
         doc="Seeding breadth policy: adopt the neighbor's whole "
             "frontier (all), one incumbent per table set (one), or "
             "decide from its recorded repair cost (auto)."),
    Knob(name="REPRO_STORE_SEED_ALPHA",
         default=None,
         kind="float",
         doc="Coarsest ladder rung a seeded run still descends "
             "through; unset/unparseable falls back to "
             "repro.core.run.SEED_JUMP_ALPHA (0.05)."),
    Knob(name="REPRO_STORE_PERSIST_DB",
         default=None,
         kind="path",
         doc="Path of an on-disk plan-set store the store test suite "
             "reuses across processes (CI's persistence leg)."),
    Knob(name="REPRO_FAULTS",
         default=None,
         kind="path",
         doc="Deterministic fault-injection schedule "
             "('site:hits[:arg];...', see docs/robustness.md); unset "
             "leaves every repro.faults failpoint inert."),
)

#: Name -> declaration index of :data:`KNOBS`.
REGISTRY: dict[str, Knob] = {k.name: k for k in KNOBS}


def knob(name: str) -> Knob:
    """Return the declaration for ``name``.

    Raises:
        KeyError: If the knob is not declared in :data:`REGISTRY` —
            every ``REPRO_*`` variable must be declared here before
            use.
    """
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"{name} is not a declared REPRO_* knob; add it to "
            f"repro.config.KNOBS first") from None


def _raw(declared: Knob) -> str | None:
    raw = os.environ.get(declared.name)
    if raw is None:
        raw = declared.default
    return raw


def enabled(name: str, override: bool | None = None) -> bool:
    """Parsed boolean state of a ``flag`` or ``switch`` knob.

    Args:
        name: Declared knob name.
        override: Explicit caller argument; when not ``None`` it wins
            over both the environment and the default.
    """
    declared = knob(name)
    if declared.kind not in ("flag", "switch"):
        raise TypeError(f"{name} is a {declared.kind} knob, not boolean")
    if override is not None:
        return bool(override)
    raw = _raw(declared)
    if raw is None:
        raw = ""
    if declared.kind == "flag":
        return raw.strip() not in ("", "0")
    return raw.lower() not in ("0", "false", "off")


def value(name: str, override=None):
    """Parsed value of a ``float`` / ``choice`` / ``path`` knob.

    Args:
        name: Declared knob name.
        override: Explicit caller argument; when not ``None`` it is
            returned as-is (explicit argument > environment > default).

    Returns:
        The parsed value, or the declared default (possibly ``None``)
        when the variable is unset or unparseable.
    """
    declared = knob(name)
    if override is not None:
        return override
    raw = _raw(declared)
    if declared.kind == "float":
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            return float(declared.default) if declared.default else None
    if declared.kind == "choice":
        if raw is None:
            return declared.default
        lowered = raw.lower()
        return lowered if lowered in declared.choices else declared.default
    if declared.kind == "path":
        return raw
    raise TypeError(f"{name} is a {declared.kind} knob; use enabled()")


def declared() -> tuple[Knob, ...]:
    """All declared knobs, in registry (docs table) order."""
    return KNOBS


def knob_table_markdown() -> str:
    """The generated Markdown knob table for ``docs/architecture.md``.

    Regenerate with ``python -m repro.config``; rule REP203 fails when
    the committed table drifts from this output.
    """
    lines = ["| knob | kind | default | effect |",
             "|---|---|---|---|"]
    for declared_knob in KNOBS:
        default = ("*(unset)*" if declared_knob.default is None
                   else f"`{declared_knob.default}`")
        kind = declared_knob.kind
        if declared_knob.choices:
            kind = f"{kind} ({'/'.join(declared_knob.choices)})"
        lines.append(f"| `{declared_knob.name}` | {kind} | {default} "
                     f"| {declared_knob.doc} |")
    return "\n".join(lines)


if __name__ == "__main__":
    print(knob_table_markdown())
