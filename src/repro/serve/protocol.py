"""Wire protocol of the serving gateway: JSON requests over HTTP.

The gateway speaks plain HTTP/1.1 with JSON bodies — no framework, no
client SDK required (``curl`` works).  This module defines everything
both ends agree on:

* the **query document** — a JSON encoding of a :class:`repro.query
  .Query` *including its catalog slice* (table statistics, columns,
  indexes), so a remote client can submit queries without sharing a
  process or a pickle format with the gateway.  The encoding carries
  exactly the statistics the optimizer reads; round-tripping a query
  preserves its signature (:func:`repro.service.signature
  .query_signature`), which is what shard routing keys on;
* the **optimize request** — tenant, query, scenario and the anytime
  controls (``precision``, ``budget``, ``deadline_seconds``,
  ``stream``), validated with field-precise errors (the gateway maps
  :class:`ProtocolError` to HTTP 400);
* **NDJSON framing** for streamed progress events — one JSON object per
  line, ``rung_completed`` lines carrying the rung's full plan-set
  document so a consumer can start serving plans mid-stream.

See ``docs/serving.md`` for the endpoint-by-endpoint contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..catalog import Catalog, Column, Index, Table
from ..core import encode_plan_set
from ..core.run import ProgressEvent
from ..errors import ReproError
from ..query import JoinPredicate, ParametricPredicate, Query

#: Streamed event kinds a consumer may see, in addition to the
#: :data:`repro.core.run.EVENT_KINDS` — ``done`` always terminates a
#: stream, ``error`` precedes ``done`` on failures.
STREAM_KINDS = ("done", "error")


class ProtocolError(ReproError):
    """A malformed or invalid request document (mapped to HTTP 400)."""


# ----------------------------------------------------------------------
# Query documents
# ----------------------------------------------------------------------

def query_to_doc(query: Query) -> dict:
    """Encode a query (with its catalog slice) as a JSON-ready dict.

    Only the tables the query touches are shipped; their statistics are
    copied verbatim, so the gateway-side reconstruction optimizes to the
    same plan sets (and hashes to the same signature) as the original.
    """
    catalog = query.catalog
    tables = []
    for name in query.tables:
        table = catalog.table(name)
        tables.append({
            "name": table.name,
            "cardinality": table.cardinality,
            "columns": [{"name": c.name,
                         "distinct_values": c.distinct_values,
                         "width_bytes": c.width_bytes}
                        for c in table.columns],
        })
    table_set = set(query.tables)
    indexes = [{"table": ix.table_name, "column": ix.column_name,
                "clustered": ix.clustered}
               for ix in catalog.indexes if ix.table_name in table_set]
    joins = [{"left_table": p.left_table, "left_column": p.left_column,
              "right_table": p.right_table,
              "right_column": p.right_column,
              "selectivity": p.selectivity}
             for p in query.join_predicates]
    params = [{"table": p.table, "column": p.column,
               "parameter_index": p.parameter_index}
              for p in query.parametric_predicates]
    return {"tables": tables, "joins": joins, "params": params,
            "indexes": indexes}


def query_from_doc(doc: dict) -> Query:
    """Rebuild a query from its wire document.

    Raises:
        ProtocolError: For structurally invalid documents (missing
            fields, bad statistics, inconsistent predicates) — the
            underlying model validation errors are surfaced verbatim.
    """
    if not isinstance(doc, dict):
        raise ProtocolError("query must be a JSON object")
    try:
        tables = [
            Table(name=t["name"], cardinality=int(t["cardinality"]),
                  columns=tuple(
                      Column(name=c["name"],
                             distinct_values=int(c["distinct_values"]),
                             width_bytes=int(c.get("width_bytes", 8)))
                      for c in t.get("columns", ())))
            for t in doc.get("tables", ())]
        if not tables:
            raise ProtocolError("query has no tables")
        indexes = [Index(table_name=ix["table"],
                         column_name=ix["column"],
                         clustered=bool(ix.get("clustered", False)))
                   for ix in doc.get("indexes", ())]
        catalog = Catalog.from_tables(tables, indexes)
        joins = tuple(
            JoinPredicate(left_table=j["left_table"],
                          left_column=j["left_column"],
                          right_table=j["right_table"],
                          right_column=j["right_column"],
                          selectivity=float(j["selectivity"]))
            for j in doc.get("joins", ()))
        params = tuple(
            ParametricPredicate(table=p["table"], column=p["column"],
                                parameter_index=int(p["parameter_index"]))
            for p in doc.get("params", ()))
        return Query(catalog=catalog,
                     tables=tuple(t.name for t in tables),
                     join_predicates=joins,
                     parametric_predicates=params)
    except ProtocolError:
        raise
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed query document: {exc}") from exc
    except (ValueError, ReproError) as exc:
        raise ProtocolError(f"invalid query: {exc}") from exc


# ----------------------------------------------------------------------
# Optimize requests
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class OptimizeRequest:
    """One parsed, validated ``POST /v1/optimize`` body.

    Attributes:
        tenant: Tenant identity the request is admitted (and rate
            limited, and counted) under.
        query: The reconstructed query.
        scenario: Scenario name, or ``None`` for the gateway default.
        precision: Target alpha for anytime calls (``None`` = exact).
        budget: Anytime budget document (``seconds``/``lps``/``steps``),
            already validated; ``None`` when absent.
        deadline_seconds: Per-request deadline; the gateway folds it
            into the cooperative budget, so expiry returns the
            best-so-far partial result with its guarantee instead of an
            error.
        stream: Stream progress events as NDJSON instead of returning
            one JSON response.
    """

    tenant: str
    query: Query
    scenario: str | None = None
    precision: float | None = None
    budget: dict | None = None
    deadline_seconds: float | None = None
    stream: bool = False

    @property
    def anytime(self) -> bool:
        """Whether the request asked for anytime (budgeted) semantics."""
        return (self.precision is not None or self.budget is not None
                or self.deadline_seconds is not None)


def _positive(doc: dict, key: str) -> float | None:
    value = doc.get(key)
    if value is None:
        return None
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ProtocolError(f"{key} must be a number") from None
    if value <= 0:
        raise ProtocolError(f"{key} must be positive")
    return value


def parse_optimize_request(body: bytes | str) -> OptimizeRequest:
    """Parse and validate an optimize-request body.

    Raises:
        ProtocolError: With a client-actionable message for every way
            the body can be malformed (bad JSON, missing query, invalid
            statistics, non-numeric budget fields, ...).
    """
    try:
        doc = json.loads(body)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") \
            from exc
    if not isinstance(doc, dict):
        raise ProtocolError("request body must be a JSON object")
    if "query" not in doc:
        raise ProtocolError("request is missing 'query'")
    tenant = doc.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("tenant must be a non-empty string")
    scenario = doc.get("scenario")
    if scenario is not None and not isinstance(scenario, str):
        raise ProtocolError("scenario must be a string")
    precision = doc.get("precision")
    if precision is not None:
        try:
            precision = float(precision)
        except (TypeError, ValueError):
            raise ProtocolError("precision must be a number") from None
        if precision < 0:
            raise ProtocolError("precision must be >= 0")
    budget = doc.get("budget")
    if budget is not None:
        if not isinstance(budget, dict):
            raise ProtocolError("budget must be an object")
        unknown = set(budget) - {"seconds", "lps", "steps"}
        if unknown:
            raise ProtocolError(
                f"unknown budget fields: {sorted(unknown)}")
        budget = {"seconds": _positive(budget, "seconds"),
                  "lps": budget.get("lps"),
                  "steps": budget.get("steps")}
        for key in ("lps", "steps"):
            if budget[key] is not None:
                try:
                    budget[key] = int(budget[key])
                except (TypeError, ValueError):
                    raise ProtocolError(
                        f"budget {key} must be an integer") from None
                if budget[key] < 0:
                    raise ProtocolError(f"budget {key} must be >= 0")
    return OptimizeRequest(
        tenant=tenant,
        query=query_from_doc(doc["query"]),
        scenario=scenario,
        precision=precision,
        budget=budget,
        deadline_seconds=_positive(doc, "deadline_seconds"),
        stream=bool(doc.get("stream", False)))


# ----------------------------------------------------------------------
# NDJSON framing
# ----------------------------------------------------------------------

def ndjson_line(doc: dict) -> bytes:
    """One NDJSON frame: compact JSON plus the line terminator."""
    return json.dumps(doc, separators=(",", ":")).encode() + b"\n"


def event_to_wire(event: ProgressEvent) -> dict:
    """Wire form of a progress event.

    ``rung_completed`` events carry the rung's full plan-set document
    under ``plan_set`` — the same JSON a non-streaming response returns
    — so consumers can serve plans from coarse rungs while tighter ones
    are still optimizing.
    """
    doc = event.as_dict()
    if event.plan_set is not None:
        doc["plan_set"] = encode_plan_set(event.plan_set)
    return doc
