"""A minimal blocking client for the serving gateway.

Wraps ``http.client`` (stdlib) so tests, benchmarks and examples can
talk to a gateway without hand-writing HTTP.  One connection per call
— the gateway closes connections after every response anyway — which
also makes the client trivially thread-safe for load generators.

Resilience: :meth:`GatewayClient.optimize` retries transport errors
and retryable statuses (429/500/503) up to ``retries`` times with
capped exponential backoff and *deterministic* jitter (a CRC32 of the
endpoint and attempt number — no entropy, so chaos runs replay
exactly), honoring ``Retry-After`` when the gateway sends one.  A
mid-stream connection loss in :meth:`GatewayClient.stream_optimize`
raises :class:`StreamInterrupted` carrying the last event seen, so a
caller can resume with full knowledge of where the stream cut out.
"""

from __future__ import annotations

import http.client
import json
import time
import zlib
from dataclasses import dataclass
from collections.abc import Iterator

from ..query import Query
from .protocol import query_to_doc

#: HTTP statuses :meth:`GatewayClient.optimize` retries: overload
#: backpressure (429), transient server failure (500) and drain/stop
#: shedding (503).  400-class contract errors are never retried.
RETRYABLE_STATUSES = (429, 500, 503)


class StreamInterrupted(ConnectionError):
    """A stream died before its ``done`` line.

    Raised by :meth:`GatewayClient.stream_optimize` when the connection
    resets (or hits EOF) mid-stream — e.g. a gateway stopping, or an
    injected ``serve.stream.disconnect`` fault.

    Attributes:
        last_event: The last NDJSON document yielded before the cut
            (``None`` when the stream died before its first line).
        events_seen: How many documents were yielded before the cut.
    """

    def __init__(self, message: str, last_event: dict | None,
                 events_seen: int) -> None:
        super().__init__(message)
        self.last_event = last_event
        self.events_seen = events_seen


@dataclass(frozen=True)
class GatewayResponse:
    """One non-streaming gateway response.

    Attributes:
        status_code: HTTP status.
        doc: Parsed JSON body.
        headers: Response headers (lower-cased names).
    """

    status_code: int
    doc: dict
    headers: dict

    @property
    def ok(self) -> bool:
        return self.status_code == 200

    @property
    def retry_after(self) -> float | None:
        """Parsed ``Retry-After`` of a 429, else ``None``."""
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


class GatewayClient:
    """Blocking JSON client for one gateway address.

    Args:
        host: Gateway host.
        port: Gateway port.
        timeout: Socket timeout per request (streaming reads inherit
            it per chunk, not per stream).
        retries: Extra :meth:`optimize` attempts after a transport
            error or a retryable status (:data:`RETRYABLE_STATUSES`).
            The default 0 preserves the historical single-shot
            behavior.
        backoff_base: First retry delay (seconds); attempt ``n`` waits
            ``min(backoff_cap, backoff_base * 2**n)`` plus
            deterministic jitter, or the gateway's ``Retry-After`` if
            that is larger.
        backoff_cap: Upper bound on any single retry delay.
    """

    def __init__(self, host: str, port: int,
                 timeout: float = 60.0, *, retries: int = 0,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: bytes | None = None) -> GatewayResponse:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body \
                else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            doc = json.loads(data) if data else {}
            return GatewayResponse(
                status_code=response.status, doc=doc,
                headers={k.lower(): v
                         for k, v in response.getheaders()})
        finally:
            conn.close()

    def _backoff(self, attempt: int,
                 retry_after: float | None) -> float:
        """Delay before retry ``attempt`` (0-based), deterministic.

        Capped exponential backoff plus jitter derived from a CRC32 of
        the endpoint and attempt number — spread like random jitter,
        but bit-identical across runs, which is what lets the chaos
        benchmark gate retried results exactly.  A gateway-supplied
        ``Retry-After`` is honored as a floor.
        """
        delay = min(self.backoff_cap,
                    self.backoff_base * (2.0 ** attempt))
        seed = f"{self.host}:{self.port}:{attempt}".encode()
        delay += (zlib.crc32(seed) % 997) / 997.0 * self.backoff_base
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay

    @staticmethod
    def _body(query: Query | None, doc: dict | None, tenant: str,
              scenario: str | None, precision: float | None,
              budget: dict | None, deadline_seconds: float | None,
              stream: bool) -> bytes:
        if (query is None) == (doc is None):
            raise ValueError("pass exactly one of query= or doc=")
        payload = {"tenant": tenant,
                   "query": doc if doc is not None
                   else query_to_doc(query),
                   "stream": stream}
        if scenario is not None:
            payload["scenario"] = scenario
        if precision is not None:
            payload["precision"] = precision
        if budget is not None:
            payload["budget"] = budget
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return json.dumps(payload).encode()

    # -- endpoints -----------------------------------------------------

    def optimize(self, query: Query | None = None, *,
                 doc: dict | None = None, tenant: str = "default",
                 scenario: str | None = None,
                 precision: float | None = None,
                 budget: dict | None = None,
                 deadline_seconds: float | None = None
                 ) -> GatewayResponse:
        """``POST /v1/optimize`` (non-streaming).

        Accepts either a :class:`~repro.query.Query` (encoded for you)
        or a ready-made query document via ``doc=``.  With
        ``retries > 0``, transport errors and retryable statuses
        (:data:`RETRYABLE_STATUSES`) are retried with deterministic
        backoff; the last response (or transport error, if every
        attempt died on the wire) wins.
        """
        body = self._body(query, doc, tenant, scenario, precision,
                          budget, deadline_seconds, stream=False)
        last_response: GatewayResponse | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                retry_after = (last_response.retry_after
                               if last_response is not None else None)
                time.sleep(self._backoff(attempt - 1, retry_after))
            try:
                last_response = self._request("POST", "/v1/optimize",
                                              body)
            except (http.client.HTTPException, ConnectionError,
                    OSError):
                if attempt == self.retries:
                    raise
                last_response = None
                continue
            if last_response.status_code not in RETRYABLE_STATUSES:
                return last_response
        assert last_response is not None
        return last_response

    def stream_optimize(self, query: Query | None = None, *,
                        doc: dict | None = None,
                        tenant: str = "default",
                        scenario: str | None = None,
                        precision: float | None = None,
                        budget: dict | None = None,
                        deadline_seconds: float | None = None
                        ) -> Iterator[dict]:
        """``POST /v1/optimize`` with ``stream=true``.

        Yields one dict per NDJSON line as the gateway emits them; the
        last line is always ``{"kind": "done", ...}``.  Non-200
        responses yield a single synthesized
        ``{"kind": "error", "http_status": ..., ...}`` line instead.

        Raises:
            StreamInterrupted: When the connection resets — or hits
                EOF without a ``done`` line — mid-stream.  The
                exception carries the last event yielded, so the
                caller knows exactly where the stream cut out before
                retrying.
        """
        body = self._body(query, doc, tenant, scenario, precision,
                          budget, deadline_seconds, stream=True)
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        last_event: dict | None = None
        events_seen = 0
        saw_done = False
        try:
            try:
                conn.request("POST", "/v1/optimize", body=body,
                             headers={"Content-Type":
                                      "application/json"})
                response = conn.getresponse()
                if response.status != 200:
                    doc_out = json.loads(response.read() or b"{}")
                    doc_out.update(kind="error",
                                   http_status=response.status)
                    yield doc_out
                    return
                buffer = b""
                while True:
                    chunk = response.read(65536)
                    if not chunk:
                        break
                    buffer += chunk
                    while b"\n" in buffer:
                        line, buffer = buffer.split(b"\n", 1)
                        if line.strip():
                            event = json.loads(line)
                            if event.get("kind") == "done":
                                saw_done = True
                            yield event
                            last_event = event
                            events_seen += 1
                if buffer.strip():
                    event = json.loads(buffer)
                    if event.get("kind") == "done":
                        saw_done = True
                    yield event
                    last_event = event
                    events_seen += 1
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                raise StreamInterrupted(
                    f"stream cut after {events_seen} events: "
                    f"{type(exc).__name__}: {exc}",
                    last_event, events_seen) from exc
            if not saw_done:
                # Clean EOF without the terminal line: the gateway was
                # stopped (or the socket was reset without an error
                # surfacing locally) — same contract as a hard cut.
                raise StreamInterrupted(
                    f"stream ended without a done line after "
                    f"{events_seen} events", last_event, events_seen)
        finally:
            conn.close()

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("GET", "/metrics").doc

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz").doc
