"""A minimal blocking client for the serving gateway.

Wraps ``http.client`` (stdlib) so tests, benchmarks and examples can
talk to a gateway without hand-writing HTTP.  One connection per call
— the gateway closes connections after every response anyway — which
also makes the client trivially thread-safe for load generators.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from collections.abc import Iterator

from ..query import Query
from .protocol import query_to_doc


@dataclass(frozen=True)
class GatewayResponse:
    """One non-streaming gateway response.

    Attributes:
        status_code: HTTP status.
        doc: Parsed JSON body.
        headers: Response headers (lower-cased names).
    """

    status_code: int
    doc: dict
    headers: dict

    @property
    def ok(self) -> bool:
        return self.status_code == 200

    @property
    def retry_after(self) -> float | None:
        """Parsed ``Retry-After`` of a 429, else ``None``."""
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


class GatewayClient:
    """Blocking JSON client for one gateway address.

    Args:
        host: Gateway host.
        port: Gateway port.
        timeout: Socket timeout per request (streaming reads inherit
            it per chunk, not per stream).
    """

    def __init__(self, host: str, port: int,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: bytes | None = None) -> GatewayResponse:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body \
                else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            doc = json.loads(data) if data else {}
            return GatewayResponse(
                status_code=response.status, doc=doc,
                headers={k.lower(): v
                         for k, v in response.getheaders()})
        finally:
            conn.close()

    @staticmethod
    def _body(query: Query | None, doc: dict | None, tenant: str,
              scenario: str | None, precision: float | None,
              budget: dict | None, deadline_seconds: float | None,
              stream: bool) -> bytes:
        if (query is None) == (doc is None):
            raise ValueError("pass exactly one of query= or doc=")
        payload = {"tenant": tenant,
                   "query": doc if doc is not None
                   else query_to_doc(query),
                   "stream": stream}
        if scenario is not None:
            payload["scenario"] = scenario
        if precision is not None:
            payload["precision"] = precision
        if budget is not None:
            payload["budget"] = budget
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return json.dumps(payload).encode()

    # -- endpoints -----------------------------------------------------

    def optimize(self, query: Query | None = None, *,
                 doc: dict | None = None, tenant: str = "default",
                 scenario: str | None = None,
                 precision: float | None = None,
                 budget: dict | None = None,
                 deadline_seconds: float | None = None
                 ) -> GatewayResponse:
        """``POST /v1/optimize`` (non-streaming).

        Accepts either a :class:`~repro.query.Query` (encoded for you)
        or a ready-made query document via ``doc=``.
        """
        return self._request(
            "POST", "/v1/optimize",
            self._body(query, doc, tenant, scenario, precision, budget,
                       deadline_seconds, stream=False))

    def stream_optimize(self, query: Query | None = None, *,
                        doc: dict | None = None,
                        tenant: str = "default",
                        scenario: str | None = None,
                        precision: float | None = None,
                        budget: dict | None = None,
                        deadline_seconds: float | None = None
                        ) -> Iterator[dict]:
        """``POST /v1/optimize`` with ``stream=true``.

        Yields one dict per NDJSON line as the gateway emits them; the
        last line is always ``{"kind": "done", ...}``.  Non-200
        responses yield a single synthesized
        ``{"kind": "error", "http_status": ..., ...}`` line instead.
        """
        body = self._body(query, doc, tenant, scenario, precision,
                          budget, deadline_seconds, stream=True)
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("POST", "/v1/optimize", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            if response.status != 200:
                doc_out = json.loads(response.read() or b"{}")
                doc_out.update(kind="error",
                               http_status=response.status)
                yield doc_out
                return
            buffer = b""
            while True:
                chunk = response.read(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
            if buffer.strip():
                yield json.loads(buffer)
        finally:
            conn.close()

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("GET", "/metrics").doc

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz").doc
