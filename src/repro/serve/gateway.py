"""The sharded async serving gateway.

:class:`ServingGateway` turns a set of :class:`repro.service
.OptimizerSession` shards into a network service: an asyncio HTTP/1.1
server (stdlib only — ``asyncio.start_server`` plus a small hand-rolled
request parser) that admits optimize requests under tenant token
buckets, routes them by query signature so recurring queries land on
the shard holding their warm-start state, and streams progress events
live over NDJSON.

Threading model — three kinds of threads, one rule each:

* the **event loop thread** owns every mutable gateway structure
  (admission state, counters, router).  Handlers touch them only from
  coroutines, so there are no locks;
* each **shard thread** (a one-worker ``ThreadPoolExecutor``) owns its
  ``OptimizerSession`` and runs that shard's optimizations strictly
  serially — which is exactly what keeps the warm-start cache, LP memo
  and plan-cost state coherent and hot.  Shard threads never touch
  gateway state; streaming events cross back into the loop via
  ``loop.call_soon_threadsafe``;
* the optional **launcher thread** (:func:`launch`) runs the event loop
  so synchronous callers — tests, benchmarks, notebooks — can drive the
  gateway with plain blocking calls through a :class:`GatewayHandle`.

Deadline semantics: ``deadline_seconds`` folds into the run's
cooperative :class:`~repro.core.Budget`, so a deadline expiry is not an
error — the optimizer descends the precision ladder coarse-rungs-first
and the response is the best completed rung as a ``"partial"`` with its
``(1 + alpha)``-guarantee (HTTP 200).  Only optimizer failures map to
HTTP 500.

Self-healing (see ``docs/robustness.md``): every shard is supervised —
an exception out of the shard *machinery* (as opposed to a per-query
error item) tears the shard down and respawns it with a fresh session,
warm state restored through the shared persistent store, and the
request retries once.  Requests that exhaust their attempts advance a
per-shard circuit breaker; an open breaker sheds requests straight to
the graceful-degradation path — a coarser cached plan set from the
store, served HTTP 200 ``"degraded"`` with its honest guarantee — then
half-open-probes the shard.  ``stop()`` never hangs on a wedged shard:
in-flight requests race the stop event and shed with clean 503s inside
a bounded window.  Every one of these paths has a deterministic
:mod:`repro.faults` failpoint (inert without a ``REPRO_FAULTS``
schedule) so chaos CI exercises them exactly.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from .. import faults
from ..core import (Budget, PWLRRPAOptions, decode_plan_set,
                    encode_plan_set, ladder_to)
from ..service import OptimizerSession, WarmStartCache
from ..service.signature import query_signature
from ..store import PlanSetStore
from .admission import AdmissionController
from .counters import ResilienceCounters, ServingCounters
from .protocol import (OptimizeRequest, ProtocolError, event_to_wire,
                       ndjson_line, parse_optimize_request)
from .router import SignatureRouter

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: HTTP status for each optimizer outcome.  ``partial`` and ``timeout``
#: are successful responses: the deadline contract is best-so-far with
#: a guarantee, not an error.  ``degraded`` is the graceful-degradation
#: outcome: a coarser cached plan set served from the persistent store
#: after shard failure, with its honest guarantee — a valid answer, so
#: HTTP 200, never a dropped connection or an unhandled 500.
_STATUS_HTTP = {"ok": 200, "cached": 200, "partial": 200,
                "timeout": 200, "degraded": 200, "error": 500}

#: Consecutive failed requests (both attempts exhausted) that open a
#: shard's circuit breaker.
BREAKER_THRESHOLD = 3

#: Requests shed straight to the degraded path while a breaker is open,
#: before the next request half-open-probes the shard.  Request-count
#: based, not clock based, so chaos runs are deterministic.
BREAKER_COOLDOWN = 2

#: Bound on the :meth:`ServingGateway.stop` shed window: how long stop
#: waits for in-flight requests to notice the stop event and answer
#: with a clean 503 before tearing the shards down.
STOP_SHED_SECONDS = 1.0


def _discard(future) -> None:
    """Done-callback retrieving an abandoned future's exception.

    Stop/disconnect paths deliberately abandon executor futures (the
    shard thread may be hung on an injected fault); consuming the
    exception here keeps asyncio's "exception was never retrieved"
    warning out of the logs.
    """
    if not future.cancelled():
        future.exception()


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of one gateway instance.

    Attributes:
        host: Bind address.
        port: Bind port (0 = pick a free port; read it back from
            :attr:`ServingGateway.port`).
        shards: Number of optimizer shards (sessions).
        shard_workers: ``workers=`` for each shard's session.  The
            default 0 keeps each session serial inside its shard
            thread, which is the sweet spot for serving: per-shard
            process pools only pay off for single huge queries.
        scenario: Default scenario for requests that name none.
        resolution: Parameter-space resolution of the shard sessions.
        tenant_rate: Token-bucket refill rate per tenant (req/s).
        tenant_burst: Token-bucket capacity per tenant.
        max_pending: Global in-flight bound; arrivals beyond it get 429
            with ``Retry-After`` (overload backpressure).
        default_deadline_seconds: Deadline applied to requests that set
            none (``None`` = unbounded).
        max_body_bytes: Request-body size cap (HTTP 413 above it).
        warm_start: ``warm_start=`` for the shard sessions.
        store_path: Optional path of a :class:`repro.store.PlanSetStore`
            database shared by *all* shards (``":memory:"`` works too —
            one in-process store, still shared).  Routing pins a query
            signature to one shard, but the store makes every shard's
            results visible to every other shard's near-miss seeding,
            so a recurring query family warms the whole gateway.
            ``None`` disables the persistent tier.
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 2
    shard_workers: int = 0
    scenario: str = "cloud"
    resolution: int = 2
    tenant_rate: float = 200.0
    tenant_burst: float = 100.0
    max_pending: int = 64
    default_deadline_seconds: float | None = None
    max_body_bytes: int = 4 * 1024 * 1024
    warm_start: bool = True
    store_path: str | None = None


@dataclass
class _Shard:
    """One optimizer shard: a session plus its single-thread executor.

    The breaker fields implement a per-shard circuit breaker over
    *requests* (not attempts): ``failures`` counts consecutive requests
    whose every attempt failed, ``breaker_open`` marks the breaker
    tripped, ``breaker_shed`` counts requests shed to the degraded path
    since it opened.  All three survive a shard respawn — the breaker
    protects against a shard that keeps dying right after respawn.
    """

    index: int
    session: OptimizerSession
    executor: ThreadPoolExecutor
    requests: int = 0
    failures: int = 0
    breaker_open: bool = False
    breaker_shed: int = 0


class _BadRequest(Exception):
    """Internal: malformed HTTP framing (before the JSON layer)."""


class _StopShed(Exception):
    """Internal: the stop event fired while a request was in flight."""


@dataclass
class _Outcome:
    """What a finished request contributes to the counters."""

    completed: bool = False
    deadline_partial: bool = False
    error: bool = False
    events: int = 0


class ServingGateway:
    """Sharded optimize-serving gateway.  See the module docstring.

    Args:
        config: Gateway tunables (defaults are test-friendly).
        registry: Scenario registry forwarded to every shard session.
    """

    def __init__(self, config: GatewayConfig | None = None,
                 registry=None) -> None:
        self.config = config or GatewayConfig()
        self._registry = registry
        self.router = SignatureRouter(self.config.shards)
        self.admission = AdmissionController(
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
            max_pending=self.config.max_pending)
        self.counters = ServingCounters()
        self.resilience = ResilienceCounters()
        self.shards: list[_Shard] = []
        self.store: PlanSetStore | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None
        self.port: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Build the shard set and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        if self.config.store_path is not None:
            self.store = PlanSetStore(self.config.store_path)
        for index in range(self.config.shards):
            self.shards.append(self._build_shard(index))
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=2 ** 16)
        self.port = self._server.sockets[0].getsockname()[1]

    def _build_shard(self, index: int) -> _Shard:
        """Fresh session + single-thread executor for shard ``index``."""
        cache = (WarmStartCache(store=self.store)
                 if self.store is not None else None)
        session = OptimizerSession(
            scenario=self.config.scenario,
            workers=self.config.shard_workers,
            resolution=self.config.resolution,
            warm_start=self.config.warm_start,
            cache=cache,
            registry=self._registry)
        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{index}")
        return _Shard(index, session, executor)

    def _respawn_shard(self, shard: _Shard) -> _Shard:
        """Replace a fatally failed shard with a fresh one (crash heal).

        The old executor is shut down without waiting (its thread may
        be hung on the very fault that killed the shard) and the old
        session is closed on a daemon thread so the event loop never
        blocks on it.  Request/breaker accounting carries over — the
        breaker must see through respawns to catch a shard that keeps
        dying.  The fresh session shares the persistent store, so warm
        state survives the crash.
        """
        self.resilience.shard_respawns += 1
        shard.executor.shutdown(wait=False, cancel_futures=True)
        threading.Thread(target=shard.session.close, daemon=True,
                         name=f"repro-shard-{shard.index}-reap").start()
        fresh = self._build_shard(shard.index)
        fresh.requests = shard.requests
        fresh.failures = shard.failures
        fresh.breaker_open = shard.breaker_open
        fresh.breaker_shed = shard.breaker_shed
        self.shards[shard.index] = fresh
        return fresh

    @property
    def draining(self) -> bool:
        return self.admission.draining

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting; wait for in-flight requests to finish.

        New arrivals get HTTP 503 immediately.  Returns ``True`` once
        the gateway is idle, ``False`` if ``timeout`` elapsed first
        (drain mode stays on either way).
        """
        self.admission.draining = True
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while self.admission.pending > 0:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.01)
        if self.store is not None:
            # Idle: checkpoint the shared store so its WAL is truncated
            # and the database file alone is complete on disk.
            try:
                self.store.flush()
            except Exception:  # reprolint: disable=REP601
                pass  # drain still succeeded; stop() will retry close
        return True

    async def stop(self) -> None:
        """Close the listener and tear down the shard sessions.

        Never hangs on a wedged shard: stop first raises the stop
        event, which every in-flight request races against (the single
        path answers a clean 503, streams are abandoned), waits up to
        :data:`STOP_SHED_SECONDS` for those responses to go out, then
        tears the shards down without waiting on their threads —
        sessions close on daemon threads, executors shut down with
        ``wait=False``.  A request admitted a microsecond before stop
        therefore completes or gets a clean 503; it is never dropped
        and never blocks shutdown.
        """
        self.admission.draining = True
        if self._stopping is not None:
            self._stopping.set()
        deadline = time.monotonic() + STOP_SHED_SECONDS
        while self.admission.pending > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        shards, self.shards = self.shards, []
        for shard in shards:
            shard.executor.shutdown(wait=False, cancel_futures=True)
            threading.Thread(target=shard.session.close, daemon=True,
                             name=f"repro-shard-{shard.index}-close"
                             ).start()
        if self.store is not None:
            self.store.close()
            self.store = None

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _read_request(self, reader) -> tuple[str, str, dict, bytes]:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise _BadRequest("request line too long") from None
        if not line:
            raise ConnectionResetError
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for _ in range(100):
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                raise _BadRequest("header line too long") from None
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest("malformed header line")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many headers")
        body = b""
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError:
                raise _BadRequest("invalid content-length") from None
            if length < 0:
                raise _BadRequest("invalid content-length")
            if length > self.config.max_body_bytes:
                raise _BadRequest("payload too large", )
            body = await reader.readexactly(length)
        return method, target.split("?", 1)[0], headers, body

    @staticmethod
    def _response_bytes(status: int, payload: dict,
                        extra_headers: tuple = ()) -> bytes:
        body = json.dumps(payload).encode()
        head = (f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n")
        for name, value in extra_headers:
            head += f"{name}: {value}\r\n"
        return head.encode("latin-1") + b"\r\n" + body

    @staticmethod
    def _stream_head() -> bytes:
        return (b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Connection: close\r\n\r\n")

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                method, path, _headers, body = \
                    await self._read_request(reader)
            except _BadRequest as exc:
                status = 413 if "too large" in str(exc) else 400
                writer.write(self._response_bytes(
                    status, {"error": str(exc)}))
                await writer.drain()
                return
            except (ConnectionResetError, asyncio.IncompleteReadError):
                return
            await self._dispatch(method, path, body, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, method: str, path: str, body: bytes,
                        writer) -> None:
        if path == "/healthz":
            if method != "GET":
                await self._simple(writer, 405,
                                   {"error": "method not allowed"})
                return
            await self._simple(writer, 200, self.health_doc())
            return
        if path == "/metrics":
            if method != "GET":
                await self._simple(writer, 405,
                                   {"error": "method not allowed"})
                return
            await self._simple(writer, 200, self.metrics_doc())
            return
        if path == "/v1/optimize":
            if method != "POST":
                await self._simple(writer, 405,
                                   {"error": "method not allowed"})
                return
            await self._handle_optimize(body, writer)
            return
        await self._simple(writer, 404, {"error": f"no route {path}"})

    async def _simple(self, writer, status: int, payload: dict,
                      extra_headers: tuple = ()) -> None:
        writer.write(self._response_bytes(status, payload, extra_headers))
        await writer.drain()

    # ------------------------------------------------------------------
    # /v1/optimize
    # ------------------------------------------------------------------

    @staticmethod
    def _guess_tenant(body: bytes) -> str | None:
        """Best-effort tenant attribution for malformed-request counts."""
        try:
            doc = json.loads(body)
            tenant = doc.get("tenant")
            return tenant if isinstance(tenant, str) and tenant else None
        except (TypeError, ValueError, AttributeError):
            return None

    async def _handle_optimize(self, body: bytes, writer) -> None:
        try:
            request = parse_optimize_request(body)
        except ProtocolError as exc:
            tenant = self._guess_tenant(body)
            if tenant is not None:
                self.counters.tenant(tenant).malformed += 1
            await self._simple(writer, 400, {"error": str(exc)})
            return
        tenant = self.counters.tenant(request.tenant)
        admission = self.admission.admit(request.tenant)
        if not admission.admitted:
            if admission.decision == "draining":
                tenant.rejected_draining += 1
                await self._simple(writer, 503, {"error": "draining"})
                return
            if admission.decision == "capacity":
                tenant.rejected_capacity += 1
            else:
                tenant.rejected_rate += 1
            await self._simple(
                writer, 429,
                {"error": f"rejected: {admission.decision}",
                 "retry_after": admission.retry_after},
                extra_headers=(("Retry-After",
                                f"{admission.retry_after:.2f}"),))
            return
        tenant.admitted += 1
        started = time.monotonic()
        signature = query_signature(request.query,
                                    scenario=self._scenario_name(request))
        shard = self.shards[self.router.route(signature)]
        shard.requests += 1
        outcome = _Outcome()
        try:
            if request.stream:
                tenant.streams += 1
                await self._serve_stream(shard, request, writer, outcome)
            else:
                await self._serve_single(shard, request, writer, outcome)
        finally:
            self.admission.release()
            self.counters.latency.record(time.monotonic() - started)
            if outcome.completed:
                tenant.completed += 1
            if outcome.deadline_partial:
                tenant.deadline_partials += 1
            if outcome.error:
                tenant.errors += 1
            tenant.events_streamed += outcome.events

    def _scenario_name(self, request: OptimizeRequest) -> str:
        return request.scenario or self.config.scenario

    def _request_budget(self, request: OptimizeRequest) -> Budget | None:
        """Fold the request deadline into its cooperative budget."""
        budget = (Budget.from_dict(request.budget)
                  if request.budget else None)
        deadline = request.deadline_seconds
        if deadline is None:
            deadline = self.config.default_deadline_seconds
        if deadline is not None:
            seconds = deadline if budget is None or budget.seconds is None \
                else min(budget.seconds, deadline)
            budget = Budget(seconds=seconds,
                            lps=budget.lps if budget else None,
                            steps=budget.steps if budget else None)
        return budget

    # ----- single-response path ---------------------------------------

    def _optimize_on_shard(self, shard: _Shard,
                           request: OptimizeRequest):
        """Runs on the shard thread: one blocking optimize call."""
        # Chaos failpoints (inert without a REPRO_FAULTS schedule): a
        # slow shard stalls here, a dying shard raises — the loop side
        # treats any exception from this call as shard-fatal.
        faults.failpoint("serve.shard.slow")
        faults.failpoint("serve.shard.die")
        budget = self._request_budget(request)
        if request.precision is not None or budget is not None:
            return shard.session.optimize(
                request.query, scenario=request.scenario,
                precision=request.precision, budget=budget)
        return shard.session.optimize(request.query,
                                      scenario=request.scenario)

    @staticmethod
    def _item_doc(item, shard_index: int) -> dict:
        doc = {"status": item.status,
               "signature": item.signature,
               "scenario": item.scenario,
               "shard": shard_index,
               "alpha": item.alpha,
               "guarantee": item.guarantee,
               "seconds": item.seconds}
        if item.ok:
            doc["plan_set"] = encode_plan_set(item.plan_set)
            doc["plans"] = len(item.plan_set.entries)
        if item.error:
            doc["error"] = item.error
        return doc

    async def _attempt(self, shard: _Shard, request: OptimizeRequest):
        """One optimize attempt on a shard, racing the stop event.

        Returns the shard's :class:`~repro.service.BatchItem`.  Raises
        :class:`_StopShed` when :meth:`stop` fires first (the executor
        future is abandoned — its exception, if any, is consumed by
        :func:`_discard`), and propagates any exception the shard
        machinery raised (shard-fatal: the caller respawns).
        """
        future = self._loop.run_in_executor(
            shard.executor, self._optimize_on_shard, shard, request)
        stop_wait = asyncio.ensure_future(self._stopping.wait())
        try:
            done, __ = await asyncio.wait(
                {future, stop_wait},
                return_when=asyncio.FIRST_COMPLETED)
        finally:
            stop_wait.cancel()
        if future not in done:
            future.add_done_callback(_discard)
            raise _StopShed
        return future.result()

    def _note_shard_success(self, shard: _Shard) -> None:
        """A request succeeded: reset failures, close an open breaker."""
        shard.failures = 0
        if shard.breaker_open:  # successful half-open probe
            shard.breaker_open = False
            shard.breaker_shed = 0

    def _note_shard_failure(self, shard: _Shard) -> None:
        """A request exhausted its attempts: advance the breaker."""
        shard.failures += 1
        if shard.breaker_open:
            # Failed half-open probe: re-open for another cooldown.
            shard.breaker_shed = 0
            self.resilience.breaker_opens += 1
        elif shard.failures >= BREAKER_THRESHOLD:
            shard.breaker_open = True
            shard.breaker_shed = 0
            self.resilience.breaker_opens += 1

    async def _serve_single(self, shard: _Shard,
                            request: OptimizeRequest, writer,
                            outcome: _Outcome) -> None:
        if shard.breaker_open and shard.breaker_shed < BREAKER_COOLDOWN:
            # Open breaker: shed straight to the degraded path without
            # touching the (recently repeatedly failing) shard.
            shard.breaker_shed += 1
            await self._serve_degraded(shard, request, writer, outcome,
                                       error="breaker open")
            return
        item = None
        last_error = None
        for __ in range(2):
            try:
                item = await self._attempt(shard, request)
            except _StopShed:
                self.resilience.stop_sheds += 1
                await self._simple(writer, 503, {"error": "stopping"})
                return
            except Exception as exc:  # reprolint: disable=REP601
                # Shard-fatal (injected death, wedged session, optimizer
                # machinery bug): heal by respawning, then retry once.
                shard = self._respawn_shard(shard)
                item = None
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            if item.status != "error":
                break
            # Error item (e.g. a poisoned worker result): retry once on
            # the same, still-healthy shard.
            last_error = item.error
        if item is not None and item.status != "error":
            self._note_shard_success(shard)
            outcome.completed = True
            outcome.deadline_partial = item.status in ("partial",
                                                       "timeout")
            await self._simple(writer, _STATUS_HTTP[item.status],
                               self._item_doc(item, shard.index))
            return
        self._note_shard_failure(shard)
        await self._serve_degraded(shard, request, writer, outcome,
                                   error=last_error or "shard failure")

    def _session_signature(self, request: OptimizeRequest) -> str:
        """The signature shard sessions cache/store this request under.

        Routing uses a coarser signature (scenario only); the degraded
        path must look the plan set up under the *session's* key, which
        folds in resolution and — for anytime requests — the re-targeted
        approximation factor.
        """
        options = None
        if request.precision is not None or (
                self._request_budget(request) is not None):
            options = PWLRRPAOptions(
                approximation_factor=float(request.precision or 0.0))
        return query_signature(request.query,
                               scenario=self._scenario_name(request),
                               resolution=self.config.resolution,
                               options=options)

    async def _serve_degraded(self, shard: _Shard,
                              request: OptimizeRequest, writer,
                              outcome: _Outcome, *,
                              error: str | None = None) -> None:
        """Last line of defense: serve a cached plan set from the store.

        When the shards cannot answer (repeated death, open breaker),
        any plan set the persistent store holds for the signature — of
        *any* guarantee rung — beats a 500: the response is HTTP 200
        with ``"status": "degraded"`` and the entry's honest
        ``alpha``/``guarantee`` tags, so the client knows exactly what
        it got.  Only when the store has nothing does the request fail
        with a 500 (still a well-formed response, never a dropped
        connection).
        """
        doc = None
        if self.store is not None:
            try:
                doc = self.store.get(self._session_signature(request))
            except Exception:  # reprolint: disable=REP601
                doc = None  # store down too: fall through to 500
        plan_set = None
        if doc is not None:
            try:
                plan_set = decode_plan_set(doc)
            except Exception:  # reprolint: disable=REP601
                plan_set = None  # undecodable entry: fall through
        if plan_set is None:
            outcome.error = True
            await self._simple(writer, 500,
                               {"error": error or "shard unavailable"})
            return
        self.resilience.degraded_responses += 1
        outcome.completed = True
        payload = {"status": "degraded",
                   "signature": self._session_signature(request),
                   "scenario": self._scenario_name(request),
                   "shard": shard.index,
                   "alpha": float(doc.get("alpha", 0.0)),
                   "guarantee": float(doc.get("guarantee", 1.0)),
                   "seconds": 0.0,
                   "plan_set": encode_plan_set(plan_set),
                   "plans": len(plan_set.entries)}
        if error:
            payload["degraded_reason"] = error
        await self._simple(writer, _STATUS_HTTP["degraded"], payload)

    # ----- streaming path ---------------------------------------------

    def _stream_on_shard(self, shard: _Shard, request: OptimizeRequest,
                         queue: asyncio.Queue) -> None:
        """Runs on the shard thread: iterate the run, push wire docs.

        Every pushed object crosses into the event loop through
        ``call_soon_threadsafe``; a ``None`` sentinel terminates the
        stream.  The trailing ``done`` line summarizes the run the way
        a non-streaming response would (status, achieved alpha,
        guarantee).
        """
        push = lambda doc: self._loop.call_soon_threadsafe(  # noqa: E731
            queue.put_nowait, doc)
        ladder = (ladder_to(request.precision)
                  if request.precision is not None else None)
        target = (request.precision if request.precision is not None
                  else 0.0)
        best = None
        status = "timeout"
        try:
            for event in shard.session.optimize_iter(
                    request.query, scenario=request.scenario,
                    precision_ladder=ladder,
                    budget=self._request_budget(request)):
                if event.kind == "rung_completed":
                    best = event
                push(event_to_wire(event))
            if best is not None:
                status = ("ok" if best.alpha <= target + 1e-12
                          else "partial")
        except Exception as exc:  # reprolint: disable=REP601
            # Surfaced to the client as an error line + "error" status.
            status = "error"
            push({"kind": "error", "error": str(exc)})
        done = {"kind": "done", "status": status}
        if best is not None:
            done.update(alpha=best.alpha, guarantee=best.guarantee,
                        plans=best.plan_count)
        push(done)
        push(None)

    async def _serve_stream(self, shard: _Shard,
                            request: OptimizeRequest, writer,
                            outcome: _Outcome) -> None:
        """Relay one NDJSON stream, racing the stop event per line.

        On stop the stream is abandoned mid-flight: the client sees EOF
        before the ``done`` line and raises
        :class:`~repro.serve.client.StreamInterrupted` — a typed,
        retryable signal, never a hang.  The ``serve.stream.disconnect``
        failpoint injects the same mid-stream cut by hard-resetting the
        socket after a written line.
        """
        queue: asyncio.Queue = asyncio.Queue()
        worker = self._loop.run_in_executor(
            shard.executor, self._stream_on_shard, shard, request, queue)
        writer.write(self._stream_head())
        abandoned = False
        stop_wait = asyncio.ensure_future(self._stopping.wait())
        try:
            while True:
                getter = asyncio.ensure_future(queue.get())
                done, __ = await asyncio.wait(
                    {getter, stop_wait},
                    return_when=asyncio.FIRST_COMPLETED)
                if getter not in done:
                    # Stopping: abandon the stream (possibly hung shard
                    # thread) instead of blocking shutdown on it.
                    getter.cancel()
                    abandoned = True
                    self.resilience.stop_sheds += 1
                    return
                doc = getter.result()
                if doc is None:
                    break
                if doc.get("kind") == "done":
                    outcome.completed = doc["status"] in (
                        "ok", "partial")
                    outcome.deadline_partial = doc["status"] == "partial"
                    outcome.error = doc["status"] == "error"
                else:
                    outcome.events += 1
                writer.write(ndjson_line(doc))
                await writer.drain()
                try:
                    faults.failpoint("serve.stream.disconnect")
                except faults.InjectedFault:
                    # Injected mid-stream cut: hard-reset the socket so
                    # the client observes a reset, then keep consuming
                    # the worker's queue below so the shard stays clean.
                    writer.transport.abort()
                    break
        finally:
            stop_wait.cancel()
            if abandoned:
                worker.add_done_callback(_discard)
            else:
                await worker

    # ------------------------------------------------------------------
    # Introspection documents
    # ------------------------------------------------------------------

    def health_doc(self) -> dict:
        return {"status": "draining" if self.draining else "ok",
                "shards": len(self.shards),
                "pending": self.admission.pending}

    def metrics_doc(self) -> dict:
        doc = self.counters.snapshot()
        doc["routing"] = self.router.snapshot()
        doc["draining"] = self.draining
        doc["pending"] = self.admission.pending
        doc["shards"] = [
            {"index": shard.index,
             "requests": shard.requests,
             "breaker_open": shard.breaker_open,
             "pool_spawns": shard.session.pool_spawns,
             "pool_respawns": shard.session.pool_respawns,
             "lp_cache_hits": shard.session.lp_cache_hits_total,
             "store_seed_hits": shard.session.store_seed_hits,
             "store_seed_misses": shard.session.store_seed_misses}
            for shard in self.shards]
        doc["resilience"] = self.resilience.snapshot()
        doc["faults"] = faults.snapshot()
        if self.store is not None:
            doc["store"] = self.store.snapshot()
        return doc


# ----------------------------------------------------------------------
# Synchronous front end
# ----------------------------------------------------------------------

class GatewayHandle:
    """Blocking facade over a gateway running in a background loop.

    Produced by :func:`launch`; usable as a context manager.  All
    methods are thread-safe: they schedule coroutines onto the
    gateway's loop and wait.
    """

    def __init__(self, gateway: ServingGateway,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.gateway = gateway
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.gateway.config.host

    @property
    def port(self) -> int:
        return self.gateway.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Blocking :meth:`ServingGateway.drain`."""
        future = asyncio.run_coroutine_threadsafe(
            self.gateway.drain(timeout), self._loop)
        return future.result(None if timeout is None else timeout + 5)

    def close(self, timeout: float = 30.0) -> None:
        """Stop the gateway, its loop and its thread (idempotent)."""
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.gateway.stop(), self._loop)
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> GatewayHandle:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def launch(config: GatewayConfig | None = None,
           registry=None) -> GatewayHandle:
    """Start a gateway on a background event loop and wait until ready.

    Raises whatever :meth:`ServingGateway.start` raised (e.g. a bind
    failure) in the calling thread.
    """
    gateway = ServingGateway(config, registry)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    boot_error: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(gateway.start())
        except BaseException as exc:  # surface bind errors to launcher
            boot_error.append(exc)
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-gateway",
                              daemon=True)
    thread.start()
    ready.wait()
    if boot_error:
        raise boot_error[0]
    return GatewayHandle(gateway, loop, thread)
