"""repro.serve — the sharded async serving gateway.

Turns :class:`repro.service.OptimizerSession` shards into a network
service: tenant-budgeted admission, signature-affine shard routing,
live NDJSON progress streaming, deadline-as-budget partial results and
a ``/metrics`` counter tree.  Stdlib-only (asyncio + http.client); see
``docs/serving.md`` for the wire contract.

Typical use::

    from repro.serve import GatewayConfig, GatewayClient, launch

    with launch(GatewayConfig(shards=2)) as handle:
        client = GatewayClient(handle.host, handle.port)
        response = client.optimize(query, tenant="team-a",
                                   deadline_seconds=2.0)
        plan_set = decode_plan_set(response.doc["plan_set"])
"""

from .admission import Admission, AdmissionController, TokenBucket
from .client import GatewayClient, GatewayResponse, StreamInterrupted
from .counters import (LATENCY_BUCKETS_MS, LatencyHistogram,
                       ResilienceCounters, ServingCounters,
                       TenantCounters)
from .gateway import GatewayConfig, GatewayHandle, ServingGateway, launch
from .protocol import (OptimizeRequest, ProtocolError, event_to_wire,
                       ndjson_line, parse_optimize_request,
                       query_from_doc, query_to_doc)
from .router import SignatureRouter

__all__ = [
    "Admission",
    "AdmissionController",
    "GatewayClient",
    "GatewayConfig",
    "GatewayHandle",
    "GatewayResponse",
    "LATENCY_BUCKETS_MS",
    "LatencyHistogram",
    "OptimizeRequest",
    "ProtocolError",
    "ResilienceCounters",
    "ServingCounters",
    "ServingGateway",
    "SignatureRouter",
    "StreamInterrupted",
    "TenantCounters",
    "TokenBucket",
    "event_to_wire",
    "launch",
    "ndjson_line",
    "parse_optimize_request",
    "query_from_doc",
    "query_to_doc",
]
