"""Serving counters: per-tenant accounting and latency histograms.

Counters split into two determinism classes, and the split matters for
benchmarking (``bench_compare.py --serving`` gates the first class
across runs and machines, never the second):

* **Deterministic counters** — admitted / rejected / completed /
  deadline-partial counts per tenant, shard hit distributions, sticky
  hits.  With a seeded workload these are pure functions of the request
  mix, so regressions in admission or routing logic show up as exact
  counter mismatches.
* **Timing metrics** — latency histograms, percentile estimates, qps.
  Machine-dependent by nature; reported for operators, never gated.

Everything here is mutated only from the gateway's event-loop thread,
so no locks.  ``snapshot()`` renders the whole tree as a JSON-ready
dict; ``docs/counters.md`` is the field-by-field glossary.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field

#: Upper bounds (milliseconds) of the latency histogram buckets; the
#: last bucket is unbounded.  Geometric-ish spacing keeps percentile
#: estimates within ~2x at every scale from sub-millisecond cache hits
#: to multi-second exact optimizations.
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 20, 50, 100, 200, 500,
                      1000, 2000, 5000, 10000, 30000)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates."""

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.total = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def record(self, seconds: float) -> None:
        """Record one request latency."""
        ms = seconds * 1000.0
        self.counts[bisect.bisect_left(LATENCY_BUCKETS_MS, ms)] += 1
        self.total += 1
        self.sum_ms += ms
        self.max_ms = max(self.max_ms, ms)

    def percentile(self, p: float) -> float:
        """Upper-bound estimate (ms) of the ``p``-th percentile.

        Returns the upper edge of the bucket containing the percentile
        rank (``max_ms`` for the unbounded tail bucket), or 0 when
        empty.
        """
        if self.total == 0:
            return 0.0
        rank = p / 100.0 * self.total
        running = 0
        for i, count in enumerate(self.counts):
            running += count
            if running >= rank:
                if i < len(LATENCY_BUCKETS_MS):
                    return float(LATENCY_BUCKETS_MS[i])
                return self.max_ms
        return self.max_ms

    def snapshot(self) -> dict:
        return {"buckets_ms": list(LATENCY_BUCKETS_MS),
                "counts": list(self.counts),
                "total": self.total,
                "mean_ms": self.sum_ms / self.total if self.total else 0.0,
                "max_ms": self.max_ms,
                "p50_ms": self.percentile(50),
                "p95_ms": self.percentile(95),
                "p99_ms": self.percentile(99)}


@dataclass
class TenantCounters:
    """Deterministic per-tenant request accounting.

    Attributes:
        admitted: Requests past admission (includes still-running).
        rejected_rate: 429s from the tenant's token bucket.
        rejected_capacity: 429s from the global pending bound.
        rejected_draining: 503s during drain.
        completed: Requests finished with a servable plan set
            (statuses ``ok`` / ``cached`` / ``partial`` / ``timeout``).
        deadline_partials: The subset of ``completed`` that hit a
            deadline or budget and returned best-so-far with a
            guarantee (statuses ``partial`` / ``timeout``).
        errors: Requests that failed inside the optimizer (HTTP 500).
        malformed: HTTP 400s attributed to this tenant (when the body
            parsed far enough to name one).
        streams: Admitted requests served over NDJSON streaming.
        events_streamed: Progress-event lines written across streams.
    """

    admitted: int = 0
    rejected_rate: int = 0
    rejected_capacity: int = 0
    rejected_draining: int = 0
    completed: int = 0
    deadline_partials: int = 0
    errors: int = 0
    malformed: int = 0
    streams: int = 0
    events_streamed: int = 0

    def snapshot(self) -> dict:
        return {"admitted": self.admitted,
                "rejected_rate": self.rejected_rate,
                "rejected_capacity": self.rejected_capacity,
                "rejected_draining": self.rejected_draining,
                "completed": self.completed,
                "deadline_partials": self.deadline_partials,
                "errors": self.errors,
                "malformed": self.malformed,
                "streams": self.streams,
                "events_streamed": self.events_streamed}


@dataclass
class ResilienceCounters:
    """Deterministic self-healing event counters of one gateway.

    Like :class:`TenantCounters` these are pure functions of the
    request mix under a fixed fault schedule, so the chaos benchmark
    (``bench_compare.py --chaos``) gates them exactly.  Mutated only
    from the event-loop thread.

    Attributes:
        shard_respawns: Shards torn down and rebuilt after a fatal
            executor/session failure (crash-detect + respawn).
        breaker_opens: Per-shard circuit-breaker open transitions
            (including a failed half-open probe re-opening).
        degraded_responses: Requests answered HTTP 200 ``"degraded"``
            from the persistent store after shard-side failure or
            breaker shedding, with an honest coarser guarantee.
        stop_sheds: In-flight requests shed with a clean 503 during
            the :meth:`~repro.serve.gateway.ServingGateway.stop`
            window instead of hanging on dead executors.
    """

    shard_respawns: int = 0
    breaker_opens: int = 0
    degraded_responses: int = 0
    stop_sheds: int = 0

    def snapshot(self) -> dict:
        return {"shard_respawns": self.shard_respawns,
                "breaker_opens": self.breaker_opens,
                "degraded_responses": self.degraded_responses,
                "stop_sheds": self.stop_sheds}


@dataclass
class ServingCounters:
    """The gateway's full counter tree.

    Aggregates tenant counters, the request-latency histogram and
    wall-clock bookkeeping for qps.  Router counters live on the
    router and are merged into the snapshot by the gateway.
    """

    tenants: dict[str, TenantCounters] = field(default_factory=dict)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    started_monotonic: float = field(default_factory=time.monotonic)

    def tenant(self, name: str) -> TenantCounters:
        counters = self.tenants.get(name)
        if counters is None:
            counters = TenantCounters()
            self.tenants[name] = counters
        return counters

    def totals(self) -> dict:
        """Deterministic counts summed over tenants."""
        total = TenantCounters()
        for counters in self.tenants.values():
            for key in total.snapshot():
                setattr(total, key,
                        getattr(total, key) + getattr(counters, key))
        return total.snapshot()

    def snapshot(self) -> dict:
        uptime = max(time.monotonic() - self.started_monotonic, 1e-9)
        totals = self.totals()
        return {"uptime_seconds": uptime,
                "qps": totals["completed"] / uptime,
                "totals": totals,
                "tenants": {name: counters.snapshot()
                            for name, counters
                            in sorted(self.tenants.items())},
                "latency": self.latency.snapshot()}
