"""Signature-affine shard routing.

The gateway holds a fixed set of shards, each wrapping its own
:class:`repro.service.OptimizerSession`.  A session's value compounds
with repetition: its warm-start cache turns repeat signatures into
instant hits, near-miss precision requests into cheap refinements, and
its LP memo makes even cold optimizations of similar queries faster.
All of that state is *per session*, so the router's one job is making
sure a recurring query signature always lands on the same shard.

Routing is a pure function of the signature — a hash prefix modulo the
shard count — which needs no routing table, no coordination, and gives
every client the same answer.  The router additionally keeps the
serving counters that make the policy observable: per-shard request
counts (the *hit distribution*) and how many requests were repeats of
a signature seen before (*sticky hits*), which is the fraction the
warm-start machinery can accelerate.
"""

from __future__ import annotations

from collections import OrderedDict

#: Bound on the signatures remembered for repeat detection.  Routing
#: itself is stateless; this only caps the stickiness-counter memory.
MAX_TRACKED_SIGNATURES = 65536


class SignatureRouter:
    """Map query signatures to shard indexes, deterministically.

    Args:
        num_shards: Size of the shard set (fixed for the gateway's
            lifetime; resizing would re-home signatures away from their
            accumulated warm-start state).
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = int(num_shards)
        self.shard_hits = [0] * self.num_shards
        self.sticky_hits = 0
        self.total = 0
        self._seen: OrderedDict[str, int] = OrderedDict()

    def shard_for(self, signature: str) -> int:
        """The shard a signature routes to (pure, no counter updates)."""
        return int(signature[:8], 16) % self.num_shards

    def route(self, signature: str) -> int:
        """Route one request: returns the shard index, updates counters."""
        shard = self.shard_for(signature)
        self.total += 1
        self.shard_hits[shard] += 1
        if signature in self._seen:
            self.sticky_hits += 1
            self._seen.move_to_end(signature)
        else:
            self._seen[signature] = shard
            while len(self._seen) > MAX_TRACKED_SIGNATURES:
                self._seen.popitem(last=False)
        return shard

    def distinct_signatures(self) -> int:
        """Distinct signatures currently tracked (bounded)."""
        return len(self._seen)

    def snapshot(self) -> dict:
        """Counter snapshot for the ``/metrics`` document."""
        return {"num_shards": self.num_shards,
                "requests": self.total,
                "sticky_hits": self.sticky_hits,
                "distinct_signatures": self.distinct_signatures(),
                "shard_hits": list(self.shard_hits)}
