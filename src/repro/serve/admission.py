"""Admission control: tenant token buckets and overload backpressure.

Every request passes through one :class:`AdmissionController` check
before any optimizer work is scheduled.  Two independent gates apply,
in order:

1. **Drain** — a draining gateway admits nothing (HTTP 503); in-flight
   requests run to completion.
2. **Capacity** — a global bound on in-flight requests.  Once the
   gateway holds ``max_pending`` admitted-but-unfinished requests, new
   arrivals are shed with HTTP 429 regardless of tenant, because
   queueing them further would only grow latency without growing
   throughput (the shards are already saturated).
3. **Tenant rate** — a classic token bucket per tenant: ``burst``
   tokens capacity, refilled continuously at ``rate`` tokens/second.
   A request costs one token; an empty bucket means HTTP 429 with a
   ``Retry-After`` telling the client when the next token lands.

The controller is deliberately synchronous and lock-free: the gateway
calls it only from its event-loop thread, so plain attribute updates
are safe.  Time is injectable for tests.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass


class TokenBucket:
    """A continuously-refilled token bucket.

    Args:
        rate: Refill rate in tokens per second (must be positive).
        burst: Bucket capacity; also the initial fill, so a quiet
            tenant can burst this many requests instantly.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp: float | None = None

    def _refill(self, now: float) -> None:
        if self._stamp is not None and now > self._stamp:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_acquire(self, now: float) -> float:
        """Take one token if available.

        Returns:
            ``0.0`` on success, else the number of seconds until the
            bucket next holds a full token (the ``Retry-After`` value).
        """
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Tokens currently in the bucket (as of the last acquire)."""
        return self._tokens


@dataclass(frozen=True)
class Admission:
    """Outcome of one admission check.

    Attributes:
        decision: ``"admit"``, ``"rate"`` (tenant bucket empty),
            ``"capacity"`` (global pending bound hit) or ``"draining"``.
        retry_after: Suggested client back-off in seconds for the two
            429 decisions (0 otherwise).
    """

    decision: str
    retry_after: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.decision == "admit"


class AdmissionController:
    """Gatekeeper combining drain state, capacity, and tenant buckets.

    The gateway calls :meth:`admit` on arrival and :meth:`release` when
    a request finishes (any outcome); the difference is the pending
    count the capacity gate reads.
    """

    def __init__(self, tenant_rate: float, tenant_burst: float,
                 max_pending: int,
                 clock=time.monotonic) -> None:
        self.tenant_rate = float(tenant_rate)
        self.tenant_burst = float(tenant_burst)
        self.max_pending = int(max_pending)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.pending = 0
        self.draining = False

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's bucket, created on first sight."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.tenant_rate, self.tenant_burst)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, now: float | None = None) -> Admission:
        """Run the three gates for one request; counts it if admitted."""
        if self.draining:
            return Admission("draining")
        if self.pending >= self.max_pending:
            # Shards drain roughly one request per slot; hint a retry
            # after one bucket-refill interval, floored at a second.
            return Admission("capacity",
                             retry_after=max(1.0, 1.0 / self.tenant_rate))
        wait = self.bucket(tenant).try_acquire(
            self._clock() if now is None else now)
        if wait > 0:
            return Admission("rate", retry_after=math.ceil(wait * 100) / 100)
        self.pending += 1
        return Admission("admit")

    def release(self) -> None:
        """Mark one previously admitted request finished."""
        self.pending = max(0, self.pending - 1)
