"""Set difference of convex polytopes.

The difference ``P \\ Q`` of two convex polytopes is generally non-convex,
but it decomposes into at most ``len(Q.constraints)`` convex pieces: for the
``i``-th constraint ``a_i @ x <= b_i`` of ``Q``, one piece keeps the points
of ``P`` that violate constraint ``i`` while satisfying constraints
``0..i-1``.  This sequential-complement decomposition is the standard
region-difference construction used in parametric programming and is the
workhorse behind relevance-region emptiness checks (Algorithm 2 of the
paper): a relevance region is empty exactly when subtracting all cutouts
from the parameter space leaves nothing (up to measure zero).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from ..lp import LinearProgramSolver
from ..util import scalar_kernels_enabled
from .batchops import (emptiness_many_deferred, has_interior_many_deferred)
from .polytope import INTERIOR_EPS, ConvexPolytope


def exhaust(gen: Iterator):
    """Drive a pass-structured generator to completion, returning its value.

    The geometry generators below ``yield`` between *enqueueing* a pass's
    LPs into the deferred queue and *demanding* their answers, so a
    lockstep driver (:func:`repro.geometry.region.regions_empty_many`)
    can interleave many of them and let same-pass LPs co-flush.  Calling
    sites that only have one instance use this helper to run it alone —
    the demands then simply flush whatever accumulated.
    """
    while True:
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value


def subtract_polytope(base: ConvexPolytope, cut: ConvexPolytope,
                      solver: LinearProgramSolver,
                      interior_eps: float = INTERIOR_EPS
                      ) -> list[ConvexPolytope]:
    """Return full-dimensional convex pieces covering ``base \\ cut``.

    The pieces returned use *closed* complements of the cut constraints, so
    they may overlap ``cut`` on measure-zero boundary sets; pieces whose
    Chebyshev radius is below ``interior_eps`` are dropped.  Consequently
    the result is exact up to lower-dimensional sets, which is the
    tolerance contract documented in DESIGN.md.

    Args:
        base: The polytope to subtract from.
        cut: The polytope to remove.
        solver: LP solver used for emptiness/interior checks.
        interior_eps: Minimum Chebyshev radius for a piece to be kept.

    Returns:
        A list of disjoint-interior convex polytopes whose union equals
        ``base \\ cut`` up to measure zero.  Empty list when ``cut``
        covers ``base``.
    """
    if cut.dim != base.dim:
        raise ValueError("dimension mismatch in polytope subtraction")
    if base.is_empty(solver):
        return []
    if not cut.constraints:
        # Subtracting the universe leaves nothing.
        return []
    # Fast path: a cut that misses the base entirely (no interior overlap)
    # leaves the base unchanged — avoids fragmenting the base into pieces
    # that would immediately be reassembled.
    if not base.intersect(cut).has_interior(solver, eps=interior_eps):
        return [base]
    pieces: list[ConvexPolytope] = []
    prefix = base
    for constraint in cut.constraints:
        piece = prefix.with_constraint(constraint.negation())
        if piece.has_interior(solver, eps=interior_eps):
            pieces.append(piece)
        prefix = prefix.with_constraint(constraint)
        if prefix.is_empty(solver):
            break
    return pieces


def subtract_polytope_many_iter(bases: Sequence[ConvexPolytope],
                                cut: ConvexPolytope,
                                solver: LinearProgramSolver,
                                interior_eps: float = INTERIOR_EPS
                                ) -> Iterator:
    """Pass-structured generator form of :func:`subtract_polytope_many`.

    Runs the same three batched passes, but *enqueues* each pass's LPs
    into the solver's deferred queue, ``yield``\\ s, and demands the
    answers only on resumption.  A lockstep driver advancing many of
    these generators therefore gets all their same-pass LPs into the
    queue before any is demanded — that is where the stacked kernel's
    real batches come from.  Returns (via ``StopIteration.value`` /
    ``yield from``) exactly the list :func:`subtract_polytope_many`
    returns.  With ``REPRO_SCALAR_KERNELS=1`` the scalar loop runs
    instead and the generator finishes on first advance.
    """
    if scalar_kernels_enabled():
        return [subtract_polytope(base, cut, solver,
                                  interior_eps=interior_eps)
                for base in bases]
    for base in bases:
        if cut.dim != base.dim:
            raise ValueError("dimension mismatch in polytope subtraction")
    results: list[list[ConvexPolytope] | None] = [None] * len(bases)
    empty = emptiness_many_deferred(bases, solver)
    yield
    live: list[int] = []
    for i in range(len(bases)):
        if empty[i].get():
            results[i] = []
        elif not cut.constraints:
            # Subtracting the universe leaves nothing.
            results[i] = []
        else:
            live.append(i)
    # Fast path: cuts that miss a base entirely leave it unchanged.
    overlaps = [bases[i].intersect(cut) for i in live]
    overlap_interior = has_interior_many_deferred(overlaps, solver,
                                                  eps=interior_eps)
    yield
    clipped: list[int] = []
    for i, lazy in zip(live, overlap_interior):
        if lazy.get():
            clipped.append(i)
        else:
            results[i] = [bases[i]]
    # Candidate pieces of every clipped base, in the scalar path's order:
    # piece_k keeps the points violating cut constraint k while satisfying
    # constraints 0..k-1.  Construction is LP-free; one batched interior
    # pass decides which candidates survive.
    candidates: list[ConvexPolytope] = []
    spans: list[tuple[int, int, int]] = []  # (base index, start, stop)
    for i in clipped:
        start = len(candidates)
        prefix = bases[i]
        for constraint in cut.constraints:
            candidates.append(prefix.with_constraint(constraint.negation()))
            prefix = prefix.with_constraint(constraint)
        spans.append((i, start, len(candidates)))
    keep = has_interior_many_deferred(candidates, solver, eps=interior_eps)
    yield
    for i, start, stop in spans:
        results[i] = [candidates[k] for k in range(start, stop)
                      if keep[k].get()]
    return [pieces if pieces is not None else [] for pieces in results]


def subtract_polytope_many(bases: Sequence[ConvexPolytope],
                           cut: ConvexPolytope,
                           solver: LinearProgramSolver,
                           interior_eps: float = INTERIOR_EPS
                           ) -> list[list[ConvexPolytope]]:
    """Subtract one cut from many base polytopes with batched LPs.

    Produces, for every base, exactly the piece list
    :func:`subtract_polytope` would return, but assembles the underlying
    LPs into three batched passes instead of interleaving them per base:

    1. base emptiness (usually answered from the per-polytope cache),
    2. the overlap fast path — one interior check per surviving base,
    3. one interior check per candidate piece of every clipped base.

    The scalar loop additionally solves a *prefix emptiness* LP after each
    cut constraint purely to break out early; the batched form decides
    every candidate piece directly, so those LPs disappear entirely
    (pieces past a scalar early-exit lie inside an empty prefix and are
    dropped by their own interior check, leaving the results identical).
    With ``REPRO_SCALAR_KERNELS=1`` the scalar path runs instead.  Under
    deferred dispatch (:func:`repro.util.deferred_lp_enabled`) the passes
    route through the deferred queue; callers that hold several
    independent subtractions should drive
    :func:`subtract_polytope_many_iter` generators in lockstep instead
    of calling this per subtraction.
    """
    return exhaust(subtract_polytope_many_iter(
        bases, cut, solver, interior_eps=interior_eps))


def subtract_polytopes(base: ConvexPolytope,
                       cuts: Iterable[ConvexPolytope],
                       solver: LinearProgramSolver,
                       interior_eps: float = INTERIOR_EPS,
                       stop_when_empty: bool = True
                       ) -> list[ConvexPolytope]:
    """Subtract a sequence of polytopes from ``base``.

    Maintains a worklist of convex pieces and subtracts each cut from every
    piece in turn.

    Args:
        base: Polytope to subtract from.
        cuts: Polytopes to remove, applied in order.
        solver: LP solver for the geometric predicates.
        interior_eps: Minimum Chebyshev radius for pieces to survive.
        stop_when_empty: Return early as soon as no pieces remain.

    Returns:
        Convex pieces covering ``base`` minus the union of ``cuts`` (up to
        measure zero).
    """
    return exhaust(subtract_polytopes_iter(
        base, cuts, solver, interior_eps=interior_eps,
        stop_when_empty=stop_when_empty))


def subtract_polytopes_iter(base: ConvexPolytope,
                            cuts: Iterable[ConvexPolytope],
                            solver: LinearProgramSolver,
                            interior_eps: float = INTERIOR_EPS,
                            stop_when_empty: bool = True) -> Iterator:
    """Generator form of :func:`subtract_polytopes`.

    Yields at every pass boundary of every per-cut subtraction (see
    :func:`subtract_polytope_many_iter`), so lockstep drivers can
    co-flush the cut chains of many independent regions.  Cut chains are
    genuinely sequential *within* one region — each cut subtracts from
    the pieces the previous one left — which is exactly why batching
    across regions, not within one, is where the group sizes are.
    """
    base_empty = emptiness_many_deferred([base], solver)[0]
    yield
    pieces = [base] if not base_empty.get() else []
    for cut in cuts:
        if not pieces and stop_when_empty:
            return []
        groups = yield from subtract_polytope_many_iter(
            pieces, cut, solver, interior_eps=interior_eps)
        pieces = [piece for group in groups for piece in group]
    return pieces


def union_covers(base: ConvexPolytope,
                 cover: Iterable[ConvexPolytope],
                 solver: LinearProgramSolver,
                 interior_eps: float = INTERIOR_EPS) -> bool:
    """Return whether the union of ``cover`` contains ``base`` up to measure zero.

    This implements the emptiness test of Algorithm 2 directly: the
    relevance region (``base`` minus the cutouts) is empty iff the cutouts
    cover the parameter space.
    """
    return not subtract_polytopes(base, cover, solver,
                                  interior_eps=interior_eps)
