"""Set difference of convex polytopes.

The difference ``P \\ Q`` of two convex polytopes is generally non-convex,
but it decomposes into at most ``len(Q.constraints)`` convex pieces: for the
``i``-th constraint ``a_i @ x <= b_i`` of ``Q``, one piece keeps the points
of ``P`` that violate constraint ``i`` while satisfying constraints
``0..i-1``.  This sequential-complement decomposition is the standard
region-difference construction used in parametric programming and is the
workhorse behind relevance-region emptiness checks (Algorithm 2 of the
paper): a relevance region is empty exactly when subtracting all cutouts
from the parameter space leaves nothing (up to measure zero).
"""

from __future__ import annotations

from typing import Iterable

from ..lp import LinearProgramSolver
from .polytope import INTERIOR_EPS, ConvexPolytope


def subtract_polytope(base: ConvexPolytope, cut: ConvexPolytope,
                      solver: LinearProgramSolver,
                      interior_eps: float = INTERIOR_EPS
                      ) -> list[ConvexPolytope]:
    """Return full-dimensional convex pieces covering ``base \\ cut``.

    The pieces returned use *closed* complements of the cut constraints, so
    they may overlap ``cut`` on measure-zero boundary sets; pieces whose
    Chebyshev radius is below ``interior_eps`` are dropped.  Consequently
    the result is exact up to lower-dimensional sets, which is the
    tolerance contract documented in DESIGN.md.

    Args:
        base: The polytope to subtract from.
        cut: The polytope to remove.
        solver: LP solver used for emptiness/interior checks.
        interior_eps: Minimum Chebyshev radius for a piece to be kept.

    Returns:
        A list of disjoint-interior convex polytopes whose union equals
        ``base \\ cut`` up to measure zero.  Empty list when ``cut``
        covers ``base``.
    """
    if cut.dim != base.dim:
        raise ValueError("dimension mismatch in polytope subtraction")
    if base.is_empty(solver):
        return []
    if not cut.constraints:
        # Subtracting the universe leaves nothing.
        return []
    # Fast path: a cut that misses the base entirely (no interior overlap)
    # leaves the base unchanged — avoids fragmenting the base into pieces
    # that would immediately be reassembled.
    if not base.intersect(cut).has_interior(solver, eps=interior_eps):
        return [base]
    pieces: list[ConvexPolytope] = []
    prefix = base
    for constraint in cut.constraints:
        piece = prefix.with_constraint(constraint.negation())
        if piece.has_interior(solver, eps=interior_eps):
            pieces.append(piece)
        prefix = prefix.with_constraint(constraint)
        if prefix.is_empty(solver):
            break
    return pieces


def subtract_polytopes(base: ConvexPolytope,
                       cuts: Iterable[ConvexPolytope],
                       solver: LinearProgramSolver,
                       interior_eps: float = INTERIOR_EPS,
                       stop_when_empty: bool = True
                       ) -> list[ConvexPolytope]:
    """Subtract a sequence of polytopes from ``base``.

    Maintains a worklist of convex pieces and subtracts each cut from every
    piece in turn.

    Args:
        base: Polytope to subtract from.
        cuts: Polytopes to remove, applied in order.
        solver: LP solver for the geometric predicates.
        interior_eps: Minimum Chebyshev radius for pieces to survive.
        stop_when_empty: Return early as soon as no pieces remain.

    Returns:
        Convex pieces covering ``base`` minus the union of ``cuts`` (up to
        measure zero).
    """
    pieces = [base] if not base.is_empty(solver) else []
    for cut in cuts:
        if not pieces and stop_when_empty:
            return []
        next_pieces: list[ConvexPolytope] = []
        for piece in pieces:
            next_pieces.extend(
                subtract_polytope(piece, cut, solver,
                                  interior_eps=interior_eps))
        pieces = next_pieces
    return pieces


def union_covers(base: ConvexPolytope,
                 cover: Iterable[ConvexPolytope],
                 solver: LinearProgramSolver,
                 interior_eps: float = INTERIOR_EPS) -> bool:
    """Return whether the union of ``cover`` contains ``base`` up to measure zero.

    This implements the emptiness test of Algorithm 2 directly: the
    relevance region (``base`` minus the cutouts) is empty iff the cutouts
    cover the parameter space.
    """
    return not subtract_polytopes(base, cover, solver,
                                  interior_eps=interior_eps)
