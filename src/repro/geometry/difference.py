"""Set difference of convex polytopes.

The difference ``P \\ Q`` of two convex polytopes is generally non-convex,
but it decomposes into at most ``len(Q.constraints)`` convex pieces: for the
``i``-th constraint ``a_i @ x <= b_i`` of ``Q``, one piece keeps the points
of ``P`` that violate constraint ``i`` while satisfying constraints
``0..i-1``.  This sequential-complement decomposition is the standard
region-difference construction used in parametric programming and is the
workhorse behind relevance-region emptiness checks (Algorithm 2 of the
paper): a relevance region is empty exactly when subtracting all cutouts
from the parameter space leaves nothing (up to measure zero).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..lp import LinearProgramSolver
from ..util import scalar_kernels_enabled
from .batchops import emptiness_many, has_interior_many
from .polytope import INTERIOR_EPS, ConvexPolytope


def subtract_polytope(base: ConvexPolytope, cut: ConvexPolytope,
                      solver: LinearProgramSolver,
                      interior_eps: float = INTERIOR_EPS
                      ) -> list[ConvexPolytope]:
    """Return full-dimensional convex pieces covering ``base \\ cut``.

    The pieces returned use *closed* complements of the cut constraints, so
    they may overlap ``cut`` on measure-zero boundary sets; pieces whose
    Chebyshev radius is below ``interior_eps`` are dropped.  Consequently
    the result is exact up to lower-dimensional sets, which is the
    tolerance contract documented in DESIGN.md.

    Args:
        base: The polytope to subtract from.
        cut: The polytope to remove.
        solver: LP solver used for emptiness/interior checks.
        interior_eps: Minimum Chebyshev radius for a piece to be kept.

    Returns:
        A list of disjoint-interior convex polytopes whose union equals
        ``base \\ cut`` up to measure zero.  Empty list when ``cut``
        covers ``base``.
    """
    if cut.dim != base.dim:
        raise ValueError("dimension mismatch in polytope subtraction")
    if base.is_empty(solver):
        return []
    if not cut.constraints:
        # Subtracting the universe leaves nothing.
        return []
    # Fast path: a cut that misses the base entirely (no interior overlap)
    # leaves the base unchanged — avoids fragmenting the base into pieces
    # that would immediately be reassembled.
    if not base.intersect(cut).has_interior(solver, eps=interior_eps):
        return [base]
    pieces: list[ConvexPolytope] = []
    prefix = base
    for constraint in cut.constraints:
        piece = prefix.with_constraint(constraint.negation())
        if piece.has_interior(solver, eps=interior_eps):
            pieces.append(piece)
        prefix = prefix.with_constraint(constraint)
        if prefix.is_empty(solver):
            break
    return pieces


def subtract_polytope_many(bases: Sequence[ConvexPolytope],
                           cut: ConvexPolytope,
                           solver: LinearProgramSolver,
                           interior_eps: float = INTERIOR_EPS
                           ) -> list[list[ConvexPolytope]]:
    """Subtract one cut from many base polytopes with batched LPs.

    Produces, for every base, exactly the piece list
    :func:`subtract_polytope` would return, but assembles the underlying
    LPs into three batched passes instead of interleaving them per base:

    1. base emptiness (usually answered from the per-polytope cache),
    2. the overlap fast path — one interior check per surviving base,
    3. one interior check per candidate piece of every clipped base.

    The scalar loop additionally solves a *prefix emptiness* LP after each
    cut constraint purely to break out early; the batched form decides
    every candidate piece directly, so those LPs disappear entirely
    (pieces past a scalar early-exit lie inside an empty prefix and are
    dropped by their own interior check, leaving the results identical).
    With ``REPRO_SCALAR_KERNELS=1`` the scalar path runs instead.
    """
    if scalar_kernels_enabled():
        return [subtract_polytope(base, cut, solver,
                                  interior_eps=interior_eps)
                for base in bases]
    for base in bases:
        if cut.dim != base.dim:
            raise ValueError("dimension mismatch in polytope subtraction")
    results: list[list[ConvexPolytope] | None] = [None] * len(bases)
    empty = emptiness_many(bases, solver)
    live: list[int] = []
    for i, base in enumerate(bases):
        if empty[i]:
            results[i] = []
        elif not cut.constraints:
            # Subtracting the universe leaves nothing.
            results[i] = []
        else:
            live.append(i)
    # Fast path: cuts that miss a base entirely leave it unchanged.
    overlaps = [bases[i].intersect(cut) for i in live]
    overlap_interior = has_interior_many(overlaps, solver,
                                         eps=interior_eps)
    clipped: list[int] = []
    for i, has_overlap in zip(live, overlap_interior):
        if has_overlap:
            clipped.append(i)
        else:
            results[i] = [bases[i]]
    # Candidate pieces of every clipped base, in the scalar path's order:
    # piece_k keeps the points violating cut constraint k while satisfying
    # constraints 0..k-1.  Construction is LP-free; one batched interior
    # pass decides which candidates survive.
    candidates: list[ConvexPolytope] = []
    spans: list[tuple[int, int, int]] = []  # (base index, start, stop)
    for i in clipped:
        start = len(candidates)
        prefix = bases[i]
        for constraint in cut.constraints:
            candidates.append(prefix.with_constraint(constraint.negation()))
            prefix = prefix.with_constraint(constraint)
        spans.append((i, start, len(candidates)))
    keep = has_interior_many(candidates, solver, eps=interior_eps)
    for i, start, stop in spans:
        results[i] = [candidates[k] for k in range(start, stop) if keep[k]]
    return [pieces if pieces is not None else [] for pieces in results]


def subtract_polytopes(base: ConvexPolytope,
                       cuts: Iterable[ConvexPolytope],
                       solver: LinearProgramSolver,
                       interior_eps: float = INTERIOR_EPS,
                       stop_when_empty: bool = True
                       ) -> list[ConvexPolytope]:
    """Subtract a sequence of polytopes from ``base``.

    Maintains a worklist of convex pieces and subtracts each cut from every
    piece in turn.

    Args:
        base: Polytope to subtract from.
        cuts: Polytopes to remove, applied in order.
        solver: LP solver for the geometric predicates.
        interior_eps: Minimum Chebyshev radius for pieces to survive.
        stop_when_empty: Return early as soon as no pieces remain.

    Returns:
        Convex pieces covering ``base`` minus the union of ``cuts`` (up to
        measure zero).
    """
    pieces = [base] if not base.is_empty(solver) else []
    for cut in cuts:
        if not pieces and stop_when_empty:
            return []
        pieces = [piece
                  for group in subtract_polytope_many(
                      pieces, cut, solver, interior_eps=interior_eps)
                  for piece in group]
    return pieces


def union_covers(base: ConvexPolytope,
                 cover: Iterable[ConvexPolytope],
                 solver: LinearProgramSolver,
                 interior_eps: float = INTERIOR_EPS) -> bool:
    """Return whether the union of ``cover`` contains ``base`` up to measure zero.

    This implements the emptiness test of Algorithm 2 directly: the
    relevance region (``base`` minus the cutouts) is empty iff the cutouts
    cover the parameter space.
    """
    return not subtract_polytopes(base, cover, solver,
                                  interior_eps=interior_eps)
