"""Convex polytopes in H-representation.

A :class:`ConvexPolytope` is the intersection of finitely many closed
halfspaces (Figure 3 in the paper).  This is the representation PWL-RRPA
uses for linear regions of cost functions, dominance regions and relevance
region cutouts.  All non-trivial predicates (emptiness, containment,
redundancy) are decided by linear programs routed through a
:class:`repro.lp.LinearProgramSolver`, so they are counted in the LP
statistics — reproducing the paper's "#solved linear programs" metric.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Sequence

import numpy as np

from ..errors import DimensionMismatchError, EmptyRegionError
from ..lp import LinearProgramSolver
from .constraints import GEOMETRY_EPS, LinearConstraint, constraints_to_arrays

#: Chebyshev radius below which a polytope is treated as lower-dimensional
#: (i.e. "empty up to measure zero") by interior-emptiness checks.
INTERIOR_EPS = 1e-7


def _dedupe(constraints: Iterable[LinearConstraint]) -> list[LinearConstraint]:
    """Drop exact duplicates and trivially-satisfied constraints."""
    seen: set[tuple] = set()
    out: list[LinearConstraint] = []
    for c in constraints:
        if c.is_trivial():
            continue
        key = c.key()
        if key in seen:
            continue
        seen.add(key)
        out.append(c)
    return out


class ConvexPolytope:
    """A convex polytope ``{x in R^dim : A @ x <= b}``.

    Instances are immutable; all operations return new polytopes.

    Args:
        dim: Dimensionality of the ambient (parameter) space.
        constraints: Iterable of :class:`LinearConstraint` of dimension
            ``dim``.  Duplicates and trivial constraints are dropped.
    """

    __slots__ = ("dim", "constraints", "_a", "_b", "_empty_cache",
                 "_cheb_cache", "vertex_hint", "cell_tag")

    def __init__(self, dim: int,
                 constraints: Iterable[LinearConstraint] = ()) -> None:
        #: Optional exact vertex list attached by constructors that know
        #: the polytope's V-representation (e.g. simplicial grid cells).
        #: Purely an acceleration hint — never required for correctness.
        self.vertex_hint: np.ndarray | None = None
        #: Optional hashable tag identifying the partition cell this
        #: polytope is a subset of.  Two polytopes with different non-None
        #: tags have disjoint interiors; used to skip subtraction work.
        self.cell_tag = None
        self.dim = int(dim)
        cons = _dedupe(constraints)
        for c in cons:
            if c.dim != self.dim and not c.is_infeasible_trivial():
                raise DimensionMismatchError(
                    f"constraint dim {c.dim} != polytope dim {self.dim}")
        self.constraints: tuple[LinearConstraint, ...] = tuple(cons)
        self._a, self._b = constraints_to_arrays(self.constraints)
        if self._a.shape[1] == 0 and self.constraints:
            # All constraints were trivial-infeasible zero rows.
            self._a = np.zeros((len(self.constraints), self.dim))
        self._empty_cache: bool | None = None
        self._cheb_cache: tuple[np.ndarray | None, float] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def universe(dim: int) -> ConvexPolytope:
        """The whole space ``R^dim`` (no constraints)."""
        return ConvexPolytope(dim, ())

    @staticmethod
    def from_arrays(a, b) -> ConvexPolytope:
        """Build a polytope from stacked arrays ``A @ x <= b``."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float).reshape(-1)
        if a.ndim != 2 or a.shape[0] != b.shape[0]:
            raise DimensionMismatchError("A and b shapes are inconsistent")
        cons = [LinearConstraint.make(a[i], b[i]) for i in range(a.shape[0])]
        return ConvexPolytope(a.shape[1], cons)

    @staticmethod
    def box(lows: Sequence[float], highs: Sequence[float]) -> ConvexPolytope:
        """Axis-aligned box ``lows <= x <= highs``.

        Raises:
            ValueError: If the bounds have different lengths or a low bound
                exceeds its high bound.
        """
        lows = list(lows)
        highs = list(highs)
        if len(lows) != len(highs):
            raise ValueError("lows and highs must have equal length")
        dim = len(lows)
        cons = []
        for i, (lo, hi) in enumerate(zip(lows, highs)):
            if lo > hi:
                raise ValueError(f"box bound {i}: low {lo} > high {hi}")
            e = np.zeros(dim)
            e[i] = 1.0
            cons.append(LinearConstraint.make(e, hi))
            cons.append(LinearConstraint.make(-e, -lo))
        return ConvexPolytope(dim, cons)

    @staticmethod
    def unit_box(dim: int) -> ConvexPolytope:
        """The unit hypercube ``[0, 1]^dim`` — the default parameter space."""
        return ConvexPolytope.box([0.0] * dim, [1.0] * dim)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def num_constraints(self) -> int:
        """Number of stored (de-duplicated) constraints."""
        return len(self.constraints)

    def contains_point(self, x, tol: float = GEOMETRY_EPS) -> bool:
        """Return whether point ``x`` lies in the polytope (within ``tol``)."""
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"point dim {x.shape[0]} != polytope dim {self.dim}")
        if not self.constraints:
            return True
        return bool(np.all(self._a @ x <= self._b + tol))

    def has_trivially_infeasible(self) -> bool:
        """``True`` if any stored constraint is syntactically infeasible."""
        return any(c.is_infeasible_trivial() for c in self.constraints)

    def is_empty(self, solver: LinearProgramSolver,
                 tol: float = GEOMETRY_EPS) -> bool:
        """Decide emptiness via a feasibility LP (result cached)."""
        if self._empty_cache is not None:
            return self._empty_cache
        if self.has_trivially_infeasible():
            self._empty_cache = True
            return True
        if not self.constraints:
            self._empty_cache = False
            return False
        result = solver.solve(np.zeros(self.dim), self._a, self._b,
                              purpose="emptiness")
        self._empty_cache = result.is_infeasible
        return self._empty_cache

    def chebyshev(self, solver: LinearProgramSolver
                  ) -> tuple[np.ndarray | None, float]:
        """Return ``(center, radius)`` of the largest inscribed ball.

        The radius is the standard measure of "how full-dimensional" the
        polytope is: radius ``<= 0`` (within tolerance) means the polytope
        is empty or contained in a hyperplane.  For an unbounded polytope
        the radius is ``inf`` and the center is ``None``.
        Results are cached per instance.
        """
        if self._cheb_cache is not None:
            return self._cheb_cache
        if self.has_trivially_infeasible():
            self._cheb_cache = (None, -np.inf)
            return self._cheb_cache
        if not self.constraints:
            self._cheb_cache = (None, np.inf)
            return self._cheb_cache
        # Variables (x, r): maximize r subject to a_i @ x + r <= b_i
        # (constraint normals are unit vectors, so ||a_i|| = 1).
        m = self._a.shape[0]
        a_ext = np.hstack([self._a, np.ones((m, 1))])
        c = np.zeros(self.dim + 1)
        c[-1] = -1.0  # maximize r
        result = solver.solve(c, a_ext, self._b, purpose="chebyshev")
        if result.is_infeasible:
            self._cheb_cache = (None, -np.inf)
        elif result.status == "unbounded":
            self._cheb_cache = (None, np.inf)
        else:
            x = result.x[: self.dim]
            r = float(result.x[-1])
            self._cheb_cache = (x, r)
        return self._cheb_cache

    def has_interior(self, solver: LinearProgramSolver,
                     eps: float = INTERIOR_EPS) -> bool:
        """Return whether the polytope is full-dimensional (radius > eps)."""
        __, radius = self.chebyshev(solver)
        return radius > eps

    def interior_point(self, solver: LinearProgramSolver) -> np.ndarray:
        """Return a point in the (relative) interior.

        Raises:
            EmptyRegionError: If the polytope is empty or lower-dimensional
                and no Chebyshev center exists.
        """
        center, radius = self.chebyshev(solver)
        if center is None or radius < 0:
            raise EmptyRegionError("polytope has no interior point")
        return center

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------

    def intersect(self, other: ConvexPolytope) -> ConvexPolytope:
        """Intersection with another polytope (constraint union)."""
        if other.dim != self.dim:
            raise DimensionMismatchError(
                f"cannot intersect dims {self.dim} and {other.dim}")
        result = ConvexPolytope(self.dim,
                                self.constraints + other.constraints)
        # The intersection is a subset of both operands, so it inherits
        # either cell tag (prefer ours).
        result.cell_tag = (self.cell_tag if self.cell_tag is not None
                           else other.cell_tag)
        return result

    def with_constraint(self, constraint: LinearConstraint) -> ConvexPolytope:
        """Return this polytope with one extra constraint added."""
        result = ConvexPolytope(self.dim, self.constraints + (constraint,))
        result.cell_tag = self.cell_tag
        return result

    def contains_polytope(self, other: ConvexPolytope,
                          solver: LinearProgramSolver,
                          tol: float = 1e-7) -> bool:
        """Decide ``other ⊆ self`` by maximizing each constraint over ``other``.

        ``other`` is contained in ``self`` iff for every constraint
        ``a @ x <= b`` of ``self`` the maximum of ``a @ x`` over ``other``
        does not exceed ``b``.  An empty ``other`` is contained in anything.
        """
        if other.dim != self.dim:
            raise DimensionMismatchError("containment across dimensions")
        if other.is_empty(solver):
            return True
        for c in self.constraints:
            result = solver.solve(-c.a, other._a, other._b,
                                  purpose="containment")
            if result.status == "unbounded":
                return False
            if result.is_infeasible:  # pragma: no cover - guarded above
                return True
            max_val = -result.objective
            if max_val > c.b + tol:
                return False
        return True

    def remove_redundant(self, solver: LinearProgramSolver,
                         tol: float = 1e-7) -> ConvexPolytope:
        """Drop constraints implied by the remaining ones.

        This is the first refinement of Section 6.2 of the paper
        ("we simplify the internal representation of convex polytopes ...
        by deleting redundant linear constraints").  Each constraint is
        tested with one LP: maximize its left-hand side subject to all
        *other* kept constraints; if the maximum stays below the right-hand
        side the constraint is redundant.
        """
        kept = list(self.constraints)
        i = 0
        while i < len(kept):
            candidate = kept[i]
            others = kept[:i] + kept[i + 1:]
            if not others:
                break
            a, b = constraints_to_arrays(others)
            result = solver.solve(-candidate.a, a, b, purpose="redundancy")
            if result.is_optimal and -result.objective <= candidate.b + tol:
                kept.pop(i)
            else:
                i += 1
        return ConvexPolytope(self.dim, kept)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------

    def bounding_box(self, solver: LinearProgramSolver
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Return per-axis ``(lows, highs)`` of the polytope.

        Raises:
            EmptyRegionError: For an empty polytope.
        """
        if self.is_empty(solver):
            raise EmptyRegionError("bounding box of empty polytope")
        lows = np.empty(self.dim)
        highs = np.empty(self.dim)
        for i in range(self.dim):
            e = np.zeros(self.dim)
            e[i] = 1.0
            lo = solver.solve(e, self._a, self._b, purpose="bbox")
            hi = solver.solve(-e, self._a, self._b, purpose="bbox")
            lows[i] = -np.inf if lo.status == "unbounded" else lo.objective
            highs[i] = np.inf if hi.status == "unbounded" else -hi.objective
        return lows, highs

    def vertices(self, solver: LinearProgramSolver,
                 tol: float = 1e-7) -> list[np.ndarray]:
        """Enumerate the vertices of a (bounded, low-dimensional) polytope.

        Every vertex of a polytope in ``R^d`` is the intersection of ``d``
        linearly independent active constraints; this brute-force
        enumeration over constraint subsets is exponential in ``d`` and
        intended for the small parameter-space dimensions (1–3) used in the
        paper's experiments and in plotting/analysis code.

        Returns:
            De-duplicated list of vertex coordinate arrays.
        """
        if self.dim == 0 or not self.constraints:
            return []
        verts: list[np.ndarray] = []
        for subset in combinations(range(len(self.constraints)), self.dim):
            a = self._a[list(subset)]
            b = self._b[list(subset)]
            if abs(np.linalg.det(a)) < 1e-10:
                continue
            x = np.linalg.solve(a, b)
            if self.contains_point(x, tol=tol) and not any(
                    np.allclose(x, v, atol=1e-6) for v in verts):
                verts.append(x)
        return verts

    def sample_grid_points(self, solver: LinearProgramSolver,
                           per_axis: int = 4) -> list[np.ndarray]:
        """Return grid points of the bounding box that lie inside the polytope."""
        lows, highs = self.bounding_box(solver)
        axes = [np.linspace(lo, hi, per_axis) for lo, hi in zip(lows, highs)]
        mesh = np.meshgrid(*axes, indexing="ij")
        pts = np.stack([m.reshape(-1) for m in mesh], axis=1)
        return [p for p in pts if self.contains_point(p)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ConvexPolytope(dim={self.dim}, "
                f"constraints={len(self.constraints)})")
