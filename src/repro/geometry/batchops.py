"""Batched geometric predicates: one LP pass over many polytopes.

The emptiness and interior checks behind relevance-region maintenance are
the optimizer's dominant cost center (see ``bench_ablation_refinements``):
each is one tiny LP, and the scalar code paths solve them one Python call
at a time.  The helpers here assemble the same LPs for a whole batch of
polytopes and hand them to :meth:`repro.lp.LinearProgramSolver.solve_many`,
which answers in-batch duplicates from the LP-result memo.

Every helper replicates the corresponding :class:`ConvexPolytope` method
decision for decision — same trivial fast paths, same LP formulation, same
per-instance result caching — so batched and scalar callers observe
identical predicate outcomes (the bit-identical-plan-set contract of the
vectorized kernels).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..lp import LazyValue, LinearProgramSolver
from ..util import deferred_lp_enabled
from .polytope import INTERIOR_EPS, ConvexPolytope


def emptiness_many(polytopes: Sequence[ConvexPolytope],
                   solver: LinearProgramSolver) -> list[bool]:
    """Batched :meth:`ConvexPolytope.is_empty` over many polytopes.

    Cached and trivially decidable instances answer without an LP exactly
    as the scalar method does; the remaining feasibility LPs are solved in
    one :meth:`~repro.lp.LinearProgramSolver.solve_many` pass.  Results
    are cached on each polytope, so interleaving batched and scalar calls
    is safe.
    """
    pending: list[ConvexPolytope] = []
    for poly in polytopes:
        if poly._empty_cache is not None:
            continue
        if poly.has_trivially_infeasible():
            poly._empty_cache = True
        elif not poly.constraints:
            poly._empty_cache = False
        else:
            pending.append(poly)
    if pending:
        results = solver.solve_many(
            [(np.zeros(poly.dim), poly._a, poly._b, None)
             for poly in pending],
            purpose="emptiness")
        for poly, result in zip(pending, results):
            poly._empty_cache = result.is_infeasible
    return [poly._empty_cache for poly in polytopes]


def chebyshev_many(polytopes: Sequence[ConvexPolytope],
                   solver: LinearProgramSolver
                   ) -> list[tuple[np.ndarray | None, float]]:
    """Batched :meth:`ConvexPolytope.chebyshev` over many polytopes.

    Assembles the largest-inscribed-ball LPs of all uncached polytopes
    into one ``solve_many`` pass; per-instance ``(center, radius)`` caches
    are populated exactly as by the scalar method.
    """
    pending: list[ConvexPolytope] = []
    for poly in polytopes:
        if poly._cheb_cache is not None:
            continue
        if poly.has_trivially_infeasible():
            poly._cheb_cache = (None, -np.inf)
        elif not poly.constraints:
            poly._cheb_cache = (None, np.inf)
        else:
            pending.append(poly)
    if pending:
        problems = []
        for poly in pending:
            m = poly._a.shape[0]
            a_ext = np.hstack([poly._a, np.ones((m, 1))])
            c = np.zeros(poly.dim + 1)
            c[-1] = -1.0  # maximize r
            problems.append((c, a_ext, poly._b, None))
        results = solver.solve_many(problems, purpose="chebyshev")
        for poly, result in zip(pending, results):
            if result.is_infeasible:
                poly._cheb_cache = (None, -np.inf)
            elif result.status == "unbounded":
                poly._cheb_cache = (None, np.inf)
            else:
                poly._cheb_cache = (result.x[: poly.dim],
                                    float(result.x[-1]))
    return [poly._cheb_cache for poly in polytopes]


def has_interior_many(polytopes: Sequence[ConvexPolytope],
                      solver: LinearProgramSolver,
                      eps: float = INTERIOR_EPS) -> list[bool]:
    """Batched :meth:`ConvexPolytope.has_interior` over many polytopes."""
    return [radius > eps
            for __, radius in chebyshev_many(polytopes, solver)]


def _emptiness_from_result(result) -> bool:
    return result.is_infeasible


def emptiness_many_deferred(polytopes: Sequence[ConvexPolytope],
                            solver: LinearProgramSolver
                            ) -> list[LazyValue]:
    """Deferred-queue :func:`emptiness_many`: enqueue now, decide later.

    Returns one :class:`~repro.lp.LazyValue` of ``bool`` per polytope.
    Trivially decidable and cached instances resolve immediately with no
    LP (exactly the scalar decisions); the rest enqueue their feasibility
    LP into the solver's deferred queue and resolve at flush, when a
    callback also fills the polytope's own emptiness cache so later
    direct ``is_empty`` calls see the answer just as they would under
    eager dispatch.

    Accounting matches the eager helper bit for bit: a polytope whose LP
    is *still pending* from an earlier call reuses the pending future
    (the eager path would have had the instance cache filled by then —
    zero LPs, zero cache hits either way), while duplicates of one
    instance *within* a single call enqueue duplicate LPs, just as the
    eager helper hands ``solve_many`` an in-batch duplicate (one memo
    hit when a cache is installed).

    With the queue disabled (``REPRO_DEFERRED_LP=0`` or the scalar
    oracle active) this delegates to :func:`emptiness_many` and returns
    already-resolved values, so generator-style call sites work
    unchanged in eager mode.
    """
    if not deferred_lp_enabled():
        return [LazyValue.resolved(empty)
                for empty in emptiness_many(polytopes, solver)]
    queue = solver.deferred_queue()
    out: list[LazyValue | None] = [None] * len(polytopes)
    enqueued_here: set[int] = set()
    for position, poly in enumerate(polytopes):
        if poly._empty_cache is not None:
            out[position] = LazyValue.resolved(poly._empty_cache)
            continue
        if poly.has_trivially_infeasible():
            poly._empty_cache = True
            out[position] = LazyValue.resolved(True)
            continue
        if not poly.constraints:
            poly._empty_cache = False
            out[position] = LazyValue.resolved(False)
            continue
        note_key = ("empty", id(poly))
        if id(poly) not in enqueued_here and note_key in queue.notes:
            # Pending from an earlier call: share its future (the eager
            # path would find the instance cache already filled here).
            __, future = queue.notes[note_key]
            out[position] = LazyValue.deferred(future,
                                               _emptiness_from_result)
            continue

        def _install(result, poly=poly):
            poly._empty_cache = result.is_infeasible

        future = queue.enqueue(np.zeros(poly.dim), poly._a, poly._b, None,
                               purpose="emptiness", on_resolve=_install)
        if id(poly) not in enqueued_here:
            enqueued_here.add(id(poly))
            queue.notes[note_key] = (poly, future)
        out[position] = LazyValue.deferred(future, _emptiness_from_result)
    return out


def chebyshev_many_deferred(polytopes: Sequence[ConvexPolytope],
                            solver: LinearProgramSolver
                            ) -> list[LazyValue]:
    """Deferred-queue :func:`chebyshev_many`; see
    :func:`emptiness_many_deferred` for the shared contract.

    Each returned :class:`~repro.lp.LazyValue` yields the
    ``(center, radius)`` pair of the scalar method.
    """
    if not deferred_lp_enabled():
        return [LazyValue.resolved(pair)
                for pair in chebyshev_many(polytopes, solver)]
    queue = solver.deferred_queue()
    out: list[LazyValue | None] = [None] * len(polytopes)
    enqueued_here: set[int] = set()
    for position, poly in enumerate(polytopes):
        if poly._cheb_cache is not None:
            out[position] = LazyValue.resolved(poly._cheb_cache)
            continue
        if poly.has_trivially_infeasible():
            poly._cheb_cache = (None, -np.inf)
            out[position] = LazyValue.resolved(poly._cheb_cache)
            continue
        if not poly.constraints:
            poly._cheb_cache = (None, np.inf)
            out[position] = LazyValue.resolved(poly._cheb_cache)
            continue

        def _read(result, dim=poly.dim):
            if result.is_infeasible:
                return (None, -np.inf)
            if result.status == "unbounded":
                return (None, np.inf)
            return (result.x[:dim], float(result.x[-1]))

        note_key = ("cheb", id(poly))
        if id(poly) not in enqueued_here and note_key in queue.notes:
            __, future = queue.notes[note_key]
            out[position] = LazyValue.deferred(future, _read)
            continue

        def _install(result, poly=poly, read=_read):
            poly._cheb_cache = read(result)

        m = poly._a.shape[0]
        a_ext = np.hstack([poly._a, np.ones((m, 1))])
        c = np.zeros(poly.dim + 1)
        c[-1] = -1.0  # maximize r
        future = queue.enqueue(c, a_ext, poly._b, None,
                               purpose="chebyshev", on_resolve=_install)
        if id(poly) not in enqueued_here:
            enqueued_here.add(id(poly))
            queue.notes[note_key] = (poly, future)
        out[position] = LazyValue.deferred(future, _read)
    return out


def has_interior_many_deferred(polytopes: Sequence[ConvexPolytope],
                               solver: LinearProgramSolver,
                               eps: float = INTERIOR_EPS
                               ) -> list[LazyValue]:
    """Deferred-queue :func:`has_interior_many` (lazy ``bool`` per input)."""
    return [lazy.map(lambda pair, eps=eps: pair[1] > eps)
            for lazy in chebyshev_many_deferred(polytopes, solver)]
