"""Batched geometric predicates: one LP pass over many polytopes.

The emptiness and interior checks behind relevance-region maintenance are
the optimizer's dominant cost center (see ``bench_ablation_refinements``):
each is one tiny LP, and the scalar code paths solve them one Python call
at a time.  The helpers here assemble the same LPs for a whole batch of
polytopes and hand them to :meth:`repro.lp.LinearProgramSolver.solve_many`,
which answers in-batch duplicates from the LP-result memo.

Every helper replicates the corresponding :class:`ConvexPolytope` method
decision for decision — same trivial fast paths, same LP formulation, same
per-instance result caching — so batched and scalar callers observe
identical predicate outcomes (the bit-identical-plan-set contract of the
vectorized kernels).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..lp import LinearProgramSolver
from .polytope import INTERIOR_EPS, ConvexPolytope


def emptiness_many(polytopes: Sequence[ConvexPolytope],
                   solver: LinearProgramSolver) -> list[bool]:
    """Batched :meth:`ConvexPolytope.is_empty` over many polytopes.

    Cached and trivially decidable instances answer without an LP exactly
    as the scalar method does; the remaining feasibility LPs are solved in
    one :meth:`~repro.lp.LinearProgramSolver.solve_many` pass.  Results
    are cached on each polytope, so interleaving batched and scalar calls
    is safe.
    """
    pending: list[ConvexPolytope] = []
    for poly in polytopes:
        if poly._empty_cache is not None:
            continue
        if poly.has_trivially_infeasible():
            poly._empty_cache = True
        elif not poly.constraints:
            poly._empty_cache = False
        else:
            pending.append(poly)
    if pending:
        results = solver.solve_many(
            [(np.zeros(poly.dim), poly._a, poly._b, None)
             for poly in pending],
            purpose="emptiness")
        for poly, result in zip(pending, results):
            poly._empty_cache = result.is_infeasible
    return [poly._empty_cache for poly in polytopes]


def chebyshev_many(polytopes: Sequence[ConvexPolytope],
                   solver: LinearProgramSolver
                   ) -> list[tuple[np.ndarray | None, float]]:
    """Batched :meth:`ConvexPolytope.chebyshev` over many polytopes.

    Assembles the largest-inscribed-ball LPs of all uncached polytopes
    into one ``solve_many`` pass; per-instance ``(center, radius)`` caches
    are populated exactly as by the scalar method.
    """
    pending: list[ConvexPolytope] = []
    for poly in polytopes:
        if poly._cheb_cache is not None:
            continue
        if poly.has_trivially_infeasible():
            poly._cheb_cache = (None, -np.inf)
        elif not poly.constraints:
            poly._cheb_cache = (None, np.inf)
        else:
            pending.append(poly)
    if pending:
        problems = []
        for poly in pending:
            m = poly._a.shape[0]
            a_ext = np.hstack([poly._a, np.ones((m, 1))])
            c = np.zeros(poly.dim + 1)
            c[-1] = -1.0  # maximize r
            problems.append((c, a_ext, poly._b, None))
        results = solver.solve_many(problems, purpose="chebyshev")
        for poly, result in zip(pending, results):
            if result.is_infeasible:
                poly._cheb_cache = (None, -np.inf)
            elif result.status == "unbounded":
                poly._cheb_cache = (None, np.inf)
            else:
                poly._cheb_cache = (result.x[: poly.dim],
                                    float(result.x[-1]))
    return [poly._cheb_cache for poly in polytopes]


def has_interior_many(polytopes: Sequence[ConvexPolytope],
                      solver: LinearProgramSolver,
                      eps: float = INTERIOR_EPS) -> list[bool]:
    """Batched :meth:`ConvexPolytope.has_interior` over many polytopes."""
    return [radius > eps
            for __, radius in chebyshev_many(polytopes, solver)]
