"""Relevance regions: complements of convex-polytope cutouts.

Figure 8 of the paper specifies the data structure: a relevance region (RR)
is stored as a set of convex polytopes, the *cutouts*, such that a point
belongs to the RR iff it is contained in no cutout (Theorem 4 proves every
RR arising in PWL-RRPA has this shape).  Algorithm 2 gives the two
elementary operations — subtracting polytopes (just add them as cutouts)
and the emptiness check.

This module implements both emptiness strategies:

* ``"difference"`` — subtract all cutouts from the parameter space and test
  whether full-dimensional pieces remain (robust default).
* ``"convexity"`` — the paper's Algorithm 2: only when the union of the
  cutouts is recognized as convex (Bemporad et al.) is a containment check
  against the parameter space performed; otherwise the region is reported
  non-empty.  This strategy is *sound for pruning* (it never declares a
  non-empty region empty) but may keep extra plans; the ablation benchmark
  compares both.

It also implements the third refinement of Section 6.2: each region carries
*relevance points* spread over the parameter space; cutouts delete the
points they contain, and as long as points survive, no LP needs to be
solved to prove non-emptiness.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..errors import DimensionMismatchError
from ..lp import LinearProgramSolver
from .batchops import emptiness_many_deferred
from .convexity import union_as_polytope
from .difference import (exhaust, subtract_polytope_many_iter,
                         subtract_polytopes, subtract_polytopes_iter)
from .polytope import INTERIOR_EPS, ConvexPolytope

#: Emptiness-check strategies accepted by :meth:`RelevanceRegion.is_empty`.
EMPTINESS_STRATEGIES = ("difference", "convexity")


def default_relevance_points(space: ConvexPolytope,
                             solver: LinearProgramSolver,
                             per_axis: int = 3) -> list[np.ndarray]:
    """Generate relevance points spread across the parameter space.

    Uses an interior-shrunk grid of the bounding box so the points avoid
    the boundary (boundary points are too easily contained in cutouts that
    merely touch the space).
    """
    lows, highs = space.bounding_box(solver)
    axes = []
    for lo, hi in zip(lows, highs):
        span = hi - lo
        axes.append(np.linspace(lo + 0.08 * span, hi - 0.08 * span,
                                per_axis))
    mesh = np.meshgrid(*axes, indexing="ij")
    pts = np.stack([m.reshape(-1) for m in mesh], axis=1)
    return [p for p in pts if space.contains_point(p)]


class RelevanceRegion:
    """The set ``space \\ (C_1 ∪ ... ∪ C_k)`` for cutout polytopes ``C_i``.

    Args:
        space: The parameter space (a convex polytope, per PWL-MPQ).
        cutouts: Initial cutouts (normally empty — a fresh plan's RR is the
            whole parameter space, Algorithm 1 line 36).
        relevance_points: Optional pre-computed witness points; pass the
            result of :func:`default_relevance_points` to enable the
            LP-avoidance refinement, or ``None`` to disable it.
    """

    def __init__(self, space: ConvexPolytope,
                 cutouts: Iterable[ConvexPolytope] = (),
                 relevance_points: Sequence[np.ndarray] | None = None,
                 initial_pieces: Sequence[ConvexPolytope] | None = None
                 ) -> None:
        self.space = space
        self.cutouts: list[ConvexPolytope] = []
        self._points: list[np.ndarray] | None = (
            [np.asarray(p, dtype=float) for p in relevance_points]
            if relevance_points is not None else None)
        self._known_empty = False
        # Incremental acceleration structure: convex pieces covering the
        # region (None until first materialized by an emptiness check),
        # plus the cutouts not yet applied to it.  Callers that know a
        # convex decomposition of the space (e.g. the cells of a shared
        # partition, ideally cell-tagged) can seed it via
        # ``initial_pieces`` so the first emptiness check skips the full
        # difference computation and cell-tagged cutouts only touch the
        # pieces of their own cell.
        self._residual: list[ConvexPolytope] | None = (
            list(initial_pieces) if initial_pieces is not None else None)
        self._pending: list[ConvexPolytope] = []
        self._cutout_keys: set[frozenset] = set()
        for cut in cutouts:
            self.subtract(cut)

    @property
    def dim(self) -> int:
        """Dimensionality of the parameter space."""
        return self.space.dim

    @property
    def num_cutouts(self) -> int:
        """Number of stored cutouts."""
        return len(self.cutouts)

    @property
    def relevance_points(self) -> list[np.ndarray] | None:
        """Surviving witness points, or ``None`` when the refinement is off."""
        return self._points

    def copy(self) -> RelevanceRegion:
        """Return an independent copy (cutouts list and points are copied)."""
        clone = RelevanceRegion(self.space)
        clone.cutouts = list(self.cutouts)
        clone._points = None if self._points is None else [
            p.copy() for p in self._points]
        clone._known_empty = self._known_empty
        clone._residual = (None if self._residual is None
                           else list(self._residual))
        clone._pending = list(self._pending)
        clone._cutout_keys = set(self._cutout_keys)
        return clone

    # ------------------------------------------------------------------
    # Algorithm 2 operations
    # ------------------------------------------------------------------

    def subtract(self, cutout: ConvexPolytope) -> None:
        """Subtract a convex polytope (procedure ``SubtractPolys``).

        Per Algorithm 2, subtraction just records the polytope as a cutout.
        Surviving relevance points contained in the new cutout are removed.
        """
        if cutout.dim != self.dim:
            raise DimensionMismatchError("cutout dimension mismatch")
        if not cutout.constraints:
            # Cutting out the universe empties the region immediately.
            self.cutouts.append(cutout)
            if self._points is not None:
                self._points = []
            self._known_empty = True
            self._residual = []
            self._pending = []
            return
        key = frozenset(c.key() for c in cutout.constraints)
        if key in self._cutout_keys:
            # A syntactically identical cutout was already subtracted;
            # subtracting it again cannot change the region.
            return
        self._cutout_keys.add(key)
        self.cutouts.append(cutout)
        self._pending.append(cutout)
        if self._points is not None:
            self._points = [p for p in self._points
                            if not cutout.contains_point(p)]

    def subtract_many(self, cutouts: Iterable[ConvexPolytope]) -> None:
        """Subtract several polytopes in sequence."""
        for cut in cutouts:
            self.subtract(cut)

    def contains_point(self, x) -> bool:
        """Return whether ``x`` is in the space and in no cutout."""
        if not self.space.contains_point(x):
            return False
        return not any(cut.contains_point(x) for cut in self.cutouts)

    def is_empty(self, solver: LinearProgramSolver, *,
                 strategy: str = "difference",
                 interior_eps: float = INTERIOR_EPS) -> bool:
        """Decide emptiness (function ``IsEmpty`` of Algorithm 2).

        Args:
            solver: LP solver charged for all geometric predicates.
            strategy: ``"difference"`` (exact up to measure zero) or
                ``"convexity"`` (the paper's Algorithm 2; sound but may
                answer "non-empty" for regions that are actually empty when
                the cutout union is non-convex).
            interior_eps: Chebyshev-radius tolerance below which leftover
                pieces count as empty.

        Returns:
            ``True`` when the region contains no full-dimensional subset.
        """
        if self._known_empty:
            return True
        if self._points:
            # Refinement 3 (Section 6.2): a surviving relevance point
            # witnesses non-emptiness without solving any LP.
            return False
        if not self.cutouts:
            empty = self.space.is_empty(solver)
            self._known_empty = empty
            return empty
        if strategy == "difference":
            self._refresh_residual(solver, interior_eps)
            if not self._residual:
                self._known_empty = True
            return self._known_empty
        if strategy == "convexity":
            union = union_as_polytope(self.cutouts, solver,
                                      interior_eps=interior_eps)
            if union is None:
                return False
            if union.contains_polytope(self.space, solver):
                self._known_empty = True
                return True
            return False
        raise ValueError(f"unknown emptiness strategy: {strategy!r}")

    def _refresh_residual(self, solver: LinearProgramSolver,
                          interior_eps: float = INTERIOR_EPS) -> None:
        """Bring the incremental residual decomposition up to date.

        The first call materializes the full difference; later calls only
        subtract the cutouts added since the previous refresh, which keeps
        the amortized cost of repeated emptiness checks low.
        """
        exhaust(self._refresh_iter(solver, interior_eps))

    def _refresh_iter(self, solver: LinearProgramSolver,
                      interior_eps: float = INTERIOR_EPS):
        """Generator form of :meth:`_refresh_residual`.

        Yields at the pass boundaries of the underlying subtractions
        (see :func:`repro.geometry.difference.subtract_polytope_many_iter`)
        so :func:`regions_empty_many` can advance many regions' refreshes
        in lockstep and co-flush their same-pass LPs.  One region's cut
        chain stays strictly sequential — each cut subtracts from what
        the previous one left — so across-region interleaving is the
        only batching opportunity, and it is taken here.
        """
        if self._residual is None:
            self._residual = yield from subtract_polytopes_iter(
                self.space, self.cutouts, solver,
                interior_eps=interior_eps)
            self._pending = []
            return
        while self._pending and self._residual:
            cut = self._pending.pop(0)
            next_pieces: list[ConvexPolytope] = []
            touched: list[ConvexPolytope] = []
            for piece in self._residual:
                if (piece.cell_tag is not None
                        and cut.cell_tag is not None
                        and piece.cell_tag != cut.cell_tag):
                    # Different partition cells: disjoint interiors, the
                    # piece is untouched — no LP needed.
                    next_pieces.append(piece)
                    continue
                if (cut.vertex_hint is not None
                        and cut.cell_tag is not None
                        and piece.cell_tag == cut.cell_tag):
                    # The cut is an entire partition cell and the piece
                    # lies inside that cell: the piece disappears.
                    continue
                # Placeholder keeping the piece's position; the batched
                # subtraction below fills it in.
                next_pieces.append(None)
                touched.append(piece)
            if touched:
                groups = iter((yield from subtract_polytope_many_iter(
                    touched, cut, solver, interior_eps=interior_eps)))
                flattened: list[ConvexPolytope] = []
                for entry in next_pieces:
                    if entry is None:
                        flattened.extend(next(groups))
                    else:
                        flattened.append(entry)
                next_pieces = flattened
            self._residual = next_pieces
        if not self._residual:
            self._pending = []

    def _is_empty_iter(self, solver: LinearProgramSolver,
                       strategy: str = "difference",
                       interior_eps: float = INTERIOR_EPS):
        """Generator form of :meth:`is_empty` for lockstep drivers.

        Returns (via ``StopIteration.value``) exactly what
        :meth:`is_empty` returns, with the same shortcut order and cache
        updates; LP passes go through the deferred queue so many regions'
        checks can co-flush.  The ``"convexity"`` strategy has no batched
        form and falls back to the eager method on first advance.
        """
        if self._known_empty:
            return True
        if self._points:
            # Refinement 3 (Section 6.2): a surviving relevance point
            # witnesses non-emptiness without solving any LP.
            return False
        if not self.cutouts:
            lazy = emptiness_many_deferred([self.space], solver)[0]
            yield
            empty = lazy.get()
            self._known_empty = empty
            return empty
        if strategy == "difference":
            yield from self._refresh_iter(solver, interior_eps)
            if not self._residual:
                self._known_empty = True
            return self._known_empty
        return self.is_empty(solver, strategy=strategy,
                             interior_eps=interior_eps)

    def witness(self, solver: LinearProgramSolver,
                interior_eps: float = INTERIOR_EPS) -> np.ndarray | None:
        """Return an interior point of the region, or ``None`` when empty."""
        if self._points:
            return self._points[0]
        self._refresh_residual(solver, interior_eps)
        if not self._residual:
            return None
        return self._residual[0].interior_point(solver)

    def remove_redundant_cutouts(self, solver: LinearProgramSolver) -> int:
        """Drop cutouts covered by the union of the remaining cutouts.

        This is the second refinement of Section 6.2.  A cutout is
        redundant when subtracting all *other* cutouts from it leaves
        nothing.  Returns the number of removed cutouts.
        """
        removed = 0
        i = 0
        while i < len(self.cutouts):
            candidate = self.cutouts[i]
            others = self.cutouts[:i] + self.cutouts[i + 1:]
            if others and not subtract_polytopes(candidate, others, solver):
                self.cutouts.pop(i)
                removed += 1
            else:
                i += 1
        if removed:
            # The residual decomposition is still valid (the region is
            # unchanged), but pending cuts may reference removed cutouts;
            # rebuild lazily to stay simple and correct.
            self._residual = None
            self._pending = []
        return removed

    def to_polytopes(self, solver: LinearProgramSolver,
                     interior_eps: float = INTERIOR_EPS
                     ) -> list[ConvexPolytope]:
        """Materialize the region as a list of convex pieces."""
        return subtract_polytopes(self.space, self.cutouts, solver,
                                  interior_eps=interior_eps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pts = "off" if self._points is None else len(self._points)
        return (f"RelevanceRegion(dim={self.dim}, "
                f"cutouts={len(self.cutouts)}, points={pts})")


def regions_empty_many(regions: Sequence[RelevanceRegion],
                       solver: LinearProgramSolver, *,
                       strategy: str = "difference",
                       interior_eps: float = INTERIOR_EPS) -> list[bool]:
    """Decide emptiness of many regions with lockstep-batched LPs.

    Semantically identical to ``[r.is_empty(solver, ...) for r in
    regions]`` — same answers, same caches filled, same LP multiset —
    but advances all the regions' :meth:`RelevanceRegion._is_empty_iter`
    generators round-robin: every round, each still-running region
    enqueues its next LP pass into the deferred queue before any region
    demands an answer.  Independent regions' same-round LPs therefore
    flush together, which is what feeds the stacked simplex kernel
    groups wide enough to engage (each region alone is a dependent LP
    chain that no amount of within-region batching can widen).

    Under eager dispatch (``REPRO_DEFERRED_LP=0`` or the scalar oracle)
    the generators resolve their passes immediately and this degrades to
    the sequential loop.
    """
    gens = [region._is_empty_iter(solver, strategy=strategy,
                                  interior_eps=interior_eps)
            for region in regions]
    results: list[bool | None] = [None] * len(gens)
    active = list(range(len(gens)))
    while active:
        still_running: list[int] = []
        for index in active:
            try:
                next(gens[index])
            except StopIteration as stop:
                results[index] = stop.value
            else:
                still_running.append(index)
        active = still_running
    return results
