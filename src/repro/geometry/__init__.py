"""Polytope geometry substrate for PWL-RRPA.

Public API:

* :class:`LinearConstraint` — closed halfspace ``a @ x <= b``.
* :class:`ConvexPolytope` — H-representation polytope with LP-backed
  predicates (emptiness, containment, redundancy removal, Chebyshev
  centers, vertex enumeration).
* :func:`subtract_polytope` / :func:`subtract_polytopes` /
  :func:`union_covers` — region differences; :func:`subtract_polytope_many`
  batches one cut across many bases with batched emptiness LPs.
* :func:`emptiness_many` / :func:`chebyshev_many` /
  :func:`has_interior_many` — batched polytope predicates backed by
  :meth:`repro.lp.LinearProgramSolver.solve_many`; the ``*_deferred``
  variants enqueue into the deferred LP futures queue and return
  :class:`repro.lp.LazyValue` handles (see ``docs/lp-substrate.md``).
* :func:`regions_empty_many` — lockstep-batched emptiness over many
  relevance regions, the driver that feeds the stacked simplex kernel
  its cross-region batches.
* :func:`envelope` / :func:`union_as_polytope` — Bemporad-style convexity
  recognition of polytope unions (used by Algorithm 2's ``IsEmpty``).
* :class:`RelevanceRegion` — complement-of-cutouts region with the paper's
  relevance-point refinement.
* :class:`Simplex`, :func:`box_simplices` — simplicial grids for PWL
  approximation of nonlinear cost functions.
"""

from .batchops import (chebyshev_many, chebyshev_many_deferred,
                       emptiness_many, emptiness_many_deferred,
                       has_interior_many, has_interior_many_deferred)
from .constraints import GEOMETRY_EPS, LinearConstraint, constraints_to_arrays
from .convexity import constraint_valid_for, envelope, union_as_polytope
from .difference import (exhaust, subtract_polytope, subtract_polytope_many,
                         subtract_polytope_many_iter, subtract_polytopes,
                         subtract_polytopes_iter, union_covers)
from .polytope import INTERIOR_EPS, ConvexPolytope
from .region import (EMPTINESS_STRATEGIES, RelevanceRegion,
                     default_relevance_points, regions_empty_many)
from .simplex_grid import (Simplex, box_simplices, interval_pieces,
                           kuhn_triangulation_unit_cell)

__all__ = [
    "EMPTINESS_STRATEGIES",
    "GEOMETRY_EPS",
    "INTERIOR_EPS",
    "ConvexPolytope",
    "LinearConstraint",
    "RelevanceRegion",
    "Simplex",
    "box_simplices",
    "chebyshev_many",
    "chebyshev_many_deferred",
    "constraint_valid_for",
    "constraints_to_arrays",
    "default_relevance_points",
    "emptiness_many",
    "emptiness_many_deferred",
    "envelope",
    "exhaust",
    "has_interior_many",
    "has_interior_many_deferred",
    "interval_pieces",
    "kuhn_triangulation_unit_cell",
    "regions_empty_many",
    "subtract_polytope",
    "subtract_polytope_many",
    "subtract_polytope_many_iter",
    "subtract_polytopes",
    "subtract_polytopes_iter",
    "union_as_polytope",
    "union_covers",
]
