"""Polytope geometry substrate for PWL-RRPA.

Public API:

* :class:`LinearConstraint` — closed halfspace ``a @ x <= b``.
* :class:`ConvexPolytope` — H-representation polytope with LP-backed
  predicates (emptiness, containment, redundancy removal, Chebyshev
  centers, vertex enumeration).
* :func:`subtract_polytope` / :func:`subtract_polytopes` /
  :func:`union_covers` — region differences; :func:`subtract_polytope_many`
  batches one cut across many bases with batched emptiness LPs.
* :func:`emptiness_many` / :func:`chebyshev_many` /
  :func:`has_interior_many` — batched polytope predicates backed by
  :meth:`repro.lp.LinearProgramSolver.solve_many`.
* :func:`envelope` / :func:`union_as_polytope` — Bemporad-style convexity
  recognition of polytope unions (used by Algorithm 2's ``IsEmpty``).
* :class:`RelevanceRegion` — complement-of-cutouts region with the paper's
  relevance-point refinement.
* :class:`Simplex`, :func:`box_simplices` — simplicial grids for PWL
  approximation of nonlinear cost functions.
"""

from .batchops import chebyshev_many, emptiness_many, has_interior_many
from .constraints import GEOMETRY_EPS, LinearConstraint, constraints_to_arrays
from .convexity import constraint_valid_for, envelope, union_as_polytope
from .difference import (subtract_polytope, subtract_polytope_many,
                         subtract_polytopes, union_covers)
from .polytope import INTERIOR_EPS, ConvexPolytope
from .region import (EMPTINESS_STRATEGIES, RelevanceRegion,
                     default_relevance_points)
from .simplex_grid import (Simplex, box_simplices, interval_pieces,
                           kuhn_triangulation_unit_cell)

__all__ = [
    "EMPTINESS_STRATEGIES",
    "GEOMETRY_EPS",
    "INTERIOR_EPS",
    "ConvexPolytope",
    "LinearConstraint",
    "RelevanceRegion",
    "Simplex",
    "box_simplices",
    "chebyshev_many",
    "constraint_valid_for",
    "constraints_to_arrays",
    "default_relevance_points",
    "emptiness_many",
    "envelope",
    "has_interior_many",
    "interval_pieces",
    "kuhn_triangulation_unit_cell",
    "subtract_polytope",
    "subtract_polytope_many",
    "subtract_polytopes",
    "union_as_polytope",
    "union_covers",
]
