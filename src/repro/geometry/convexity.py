"""Convexity recognition for unions of convex polytopes.

Algorithm 2 of the paper checks relevance-region emptiness by testing
whether the union of the cutouts *forms a convex polytope* that covers the
parameter space, citing Bemporad, Fukuda and Torrisi ("Convexity
Recognition of the Union of Polyhedra", Computational Geometry 2001).

The algorithm implemented here follows that paper's envelope construction:

1. The **envelope** of polytopes ``P_1 .. P_n`` is the polyhedron described
   by every constraint of every ``P_i`` that is *valid* for (i.e. satisfied
   by all points of) every other ``P_j``.  The envelope always contains the
   union.
2. The union is convex **iff** the envelope equals the union, i.e. iff
   ``envelope \\ (P_1 ∪ ... ∪ P_n)`` is empty.  In that case the envelope
   *is* the union's polytope representation.

Validity of a constraint for a polytope is one LP; the final difference
check reuses :mod:`repro.geometry.difference`.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..lp import LinearProgramSolver
from .constraints import LinearConstraint
from .difference import subtract_polytopes
from .polytope import INTERIOR_EPS, ConvexPolytope


def constraint_valid_for(constraint: LinearConstraint,
                         polytope: ConvexPolytope,
                         solver: LinearProgramSolver,
                         tol: float = 1e-7) -> bool:
    """Return whether every point of ``polytope`` satisfies ``constraint``.

    Decided by maximizing ``constraint.a @ x`` over the polytope.  An empty
    polytope satisfies everything; an unbounded maximum violates any
    constraint with a non-trivial normal.
    """
    if polytope.is_empty(solver):
        return True
    result = solver.solve(-constraint.a, polytope._a, polytope._b,
                          purpose="envelope")
    if result.status == "unbounded":
        return False
    return -result.objective <= constraint.b + tol


def envelope(polytopes: Sequence[ConvexPolytope],
             solver: LinearProgramSolver) -> ConvexPolytope:
    """Return the envelope polyhedron of a set of polytopes.

    The envelope keeps exactly those facet constraints that are valid for
    *all* the polytopes; it is the tightest polyhedron describable by the
    input constraints that contains the union.

    Raises:
        ValueError: If ``polytopes`` is empty or dimensions disagree.
    """
    if not polytopes:
        raise ValueError("envelope of no polytopes is undefined")
    dim = polytopes[0].dim
    if any(p.dim != dim for p in polytopes):
        raise ValueError("mixed dimensions in envelope computation")
    kept: list[LinearConstraint] = []
    seen: set[tuple] = set()
    for i, poly in enumerate(polytopes):
        for constraint in poly.constraints:
            key = constraint.key()
            if key in seen:
                continue
            seen.add(key)
            if all(constraint_valid_for(constraint, other, solver)
                   for j, other in enumerate(polytopes) if j != i):
                kept.append(constraint)
    return ConvexPolytope(dim, kept)


def union_as_polytope(polytopes: Sequence[ConvexPolytope],
                      solver: LinearProgramSolver,
                      interior_eps: float = INTERIOR_EPS
                      ) -> ConvexPolytope | None:
    """Recognize whether a union of polytopes is convex.

    Args:
        polytopes: Non-empty sequence of convex polytopes.
        solver: LP solver for validity and difference checks.
        interior_eps: Tolerance under which leftover slivers are ignored
            (the union is treated as convex up to measure zero, consistent
            with the pruning tolerances documented in DESIGN.md).

    Returns:
        The convex polytope equal to the union when the union is convex,
        otherwise ``None``.
    """
    polys = [p for p in polytopes if not p.is_empty(solver)]
    if not polys:
        return None
    if len(polys) == 1:
        return polys[0]
    env = envelope(polys, solver)
    leftover = subtract_polytopes(env, polys, solver,
                                  interior_eps=interior_eps)
    if leftover:
        return None
    return env
