"""Linear constraints (halfspaces) in parameter space.

A constraint represents the closed halfspace ``{x : a @ x <= b}``.  The
paper's data structures (Figures 3 and 8) build convex polytopes as finite
intersections of such halfspaces; this module provides the normalized
constraint primitive those polytopes are made of.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DimensionMismatchError

#: Numerical tolerance used for constraint comparisons throughout geometry.
GEOMETRY_EPS = 1e-8


@dataclass(frozen=True)
class LinearConstraint:
    """A closed halfspace ``a @ x <= b``.

    The coefficient vector is stored normalized (unit Euclidean norm) so
    that syntactic comparison and de-duplication of constraints behaves
    geometrically: two constraints describing the same halfspace compare
    equal after normalization.

    Attributes:
        a: Normalized coefficient vector (read-only numpy array).
        b: Right-hand side after normalization.
    """

    a: np.ndarray
    b: float

    @staticmethod
    def make(a, b: float) -> LinearConstraint:
        """Create a normalized constraint ``a @ x <= b``.

        Args:
            a: Coefficient vector (any sequence of floats, not all zero
                unless representing a trivial constraint).
            b: Right-hand side.

        Returns:
            The normalized constraint.  A zero coefficient vector is kept
            as-is and represents either the full space (``b >= 0``) or the
            empty set (``b < 0``).
        """
        vec = np.asarray(a, dtype=float).reshape(-1)
        norm = float(np.linalg.norm(vec))
        if norm > GEOMETRY_EPS:
            vec = vec / norm
            b = float(b) / norm
        frozen = vec.copy()
        frozen.setflags(write=False)
        return LinearConstraint(a=frozen, b=float(b))

    @property
    def dim(self) -> int:
        """Dimensionality of the ambient space."""
        return int(self.a.shape[0])

    def is_trivial(self) -> bool:
        """``True`` for the degenerate zero-coefficient constraint ``0 <= b``, b>=0."""
        return bool(np.all(np.abs(self.a) <= GEOMETRY_EPS)
                    and self.b >= -GEOMETRY_EPS)

    def is_infeasible_trivial(self) -> bool:
        """``True`` for the degenerate constraint ``0 <= b`` with ``b < 0``."""
        return bool(np.all(np.abs(self.a) <= GEOMETRY_EPS)
                    and self.b < -GEOMETRY_EPS)

    def contains(self, x, tol: float = GEOMETRY_EPS) -> bool:
        """Return whether point ``x`` satisfies the constraint (within ``tol``)."""
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape[0] != self.dim:
            raise DimensionMismatchError(
                f"point dim {x.shape[0]} != constraint dim {self.dim}")
        return bool(float(self.a @ x) <= self.b + tol)

    def slack(self, x) -> float:
        """Return ``b - a @ x`` (positive inside, negative outside)."""
        x = np.asarray(x, dtype=float).reshape(-1)
        return float(self.b - self.a @ x)

    def negation(self) -> LinearConstraint:
        """Return the closed complement halfspace ``a @ x >= b``.

        The complement of an open halfspace is closed; we return the
        *closure* ``-a @ x <= -b``, which overlaps the original on the
        boundary hyperplane.  Callers that need a strict complement handle
        the measure-zero overlap via interior-emptiness tolerances (see
        DESIGN.md, "Closed dominance regions").
        """
        return LinearConstraint.make(-self.a, -self.b)

    def same_halfspace(self, other: LinearConstraint,
                       tol: float = 1e-6) -> bool:
        """Return whether two normalized constraints describe the same halfspace."""
        if self.dim != other.dim:
            return False
        return bool(np.allclose(self.a, other.a, atol=tol)
                    and abs(self.b - other.b) <= tol)

    def key(self, decimals: int = 9) -> tuple:
        """Hashable rounding-based key for de-duplication inside polytopes."""
        return (tuple(np.round(self.a, decimals)), round(self.b, decimals))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(f"{coef:.3g}*x{i}"
                           for i, coef in enumerate(self.a)
                           if abs(coef) > GEOMETRY_EPS)
        terms = terms or "0"
        return f"<{terms} <= {self.b:.3g}>"


def constraints_to_arrays(constraints) -> tuple[np.ndarray, np.ndarray]:
    """Stack constraints into ``(A, b)`` arrays suitable for an LP solver.

    Args:
        constraints: Iterable of :class:`LinearConstraint` of equal dimension.

    Returns:
        Matrix ``A`` of shape ``(m, n)`` and vector ``b`` of length ``m``.
        For an empty iterable, returns ``(0, 0)``-shaped arrays.
    """
    constraints = list(constraints)
    if not constraints:
        return np.zeros((0, 0)), np.zeros(0)
    dim = constraints[0].dim
    for c in constraints:
        if c.dim != dim:
            raise DimensionMismatchError("mixed constraint dimensions")
    a = np.vstack([c.a for c in constraints])
    b = np.array([c.b for c in constraints], dtype=float)
    return a, b
