"""Simplicial partitions of axis-aligned boxes.

The paper's PWL-MPQ variant requires every cost function to be
piecewise-linear over a partition of the parameter space into convex
polytopes.  Real operator cost functions in the Cloud scenario are
*multilinear* in the selectivity parameters (products of selectivities);
they are approximated by interpolation on a simplicial grid:

* The box is divided into ``resolution`` cells per axis.
* Each cell is split into ``d!`` simplices via the Kuhn (Freudenthal)
  triangulation.
* On each simplex, the unique affine function interpolating the target
  function at the ``d+1`` vertices is the PWL piece.

For ``d = 1`` the simplices are intervals; for ``d = 2`` each grid square
yields two triangles, matching the construction sketched in the paper
("PWL functions can approximate arbitrary cost functions up to an
arbitrary degree of detail").
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations, product

import numpy as np

from .constraints import LinearConstraint
from .polytope import ConvexPolytope


@dataclass(frozen=True)
class Simplex:
    """A ``d``-simplex given by its ``d+1`` vertices.

    Attributes:
        vertices: Array of shape ``(d+1, d)``.
    """

    vertices: np.ndarray

    @property
    def dim(self) -> int:
        """Ambient dimension."""
        return int(self.vertices.shape[1])

    def to_polytope(self) -> ConvexPolytope:
        """Return the H-representation of the simplex.

        Each facet is the hyperplane through all vertices but one, oriented
        to contain the omitted vertex.
        """
        verts = self.vertices
        d = self.dim
        constraints = []
        for omit in range(d + 1):
            face = np.delete(verts, omit, axis=0)
            base = face[0]
            if d == 1:
                normal = np.array([1.0])
            else:
                # Null space of the face's spanning directions.
                directions = face[1:] - base
                __, __, vh = np.linalg.svd(
                    np.vstack([directions, np.zeros((1, d))]))
                normal = vh[-1]
            offset = float(normal @ base)
            # Orient so the omitted vertex satisfies normal @ x <= offset.
            if float(normal @ verts[omit]) > offset:
                normal, offset = -normal, -offset
            constraints.append(LinearConstraint.make(normal, offset))
        polytope = ConvexPolytope(d, constraints)
        polytope.vertex_hint = np.array(verts, dtype=float)
        return polytope

    def affine_interpolant(self, values) -> tuple[np.ndarray, float]:
        """Return ``(w, b)`` with ``w @ v_i + b = values[i]`` at each vertex.

        Args:
            values: Function values at the ``d+1`` vertices.

        Returns:
            Weight vector ``w`` and offset ``b`` of the unique affine
            interpolant.
        """
        verts = self.vertices
        d = self.dim
        lhs = np.hstack([verts, np.ones((d + 1, 1))])
        sol = np.linalg.solve(lhs, np.asarray(values, dtype=float))
        return sol[:d], float(sol[d])

    def contains_point(self, x, tol: float = 1e-9) -> bool:
        """Return whether ``x`` lies in the simplex (barycentric test)."""
        verts = self.vertices
        d = self.dim
        lhs = np.vstack([verts.T, np.ones(d + 1)])
        rhs = np.concatenate([np.asarray(x, dtype=float), [1.0]])
        try:
            lam = np.linalg.solve(lhs, rhs)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate
            return False
        return bool(np.all(lam >= -tol))


def kuhn_triangulation_unit_cell(dim: int) -> list[np.ndarray]:
    """Kuhn triangulation of the unit cube ``[0,1]^dim`` into ``dim!`` simplices.

    For each permutation ``π`` of the axes, one simplex has vertices
    ``0, e_{π(1)}, e_{π(1)}+e_{π(2)}, ...`` — the classic Freudenthal
    construction covering the cube with simplices that share vertices,
    guaranteeing a continuous interpolant across simplex boundaries.
    """
    simplices = []
    for perm in permutations(range(dim)):
        verts = np.zeros((dim + 1, dim))
        current = np.zeros(dim)
        for i, axis in enumerate(perm):
            current = current.copy()
            current[axis] = 1.0
            verts[i + 1] = current
        simplices.append(verts)
    return simplices


def box_simplices(lows, highs, resolution: int) -> list[Simplex]:
    """Triangulate the box ``[lows, highs]`` with ``resolution`` cells per axis.

    Args:
        lows: Per-axis lower bounds.
        highs: Per-axis upper bounds.
        resolution: Number of grid cells per axis (>= 1).

    Returns:
        ``resolution^d * d!`` simplices covering the box.
    """
    lows = np.asarray(lows, dtype=float)
    highs = np.asarray(highs, dtype=float)
    dim = lows.shape[0]
    if resolution < 1:
        raise ValueError("resolution must be >= 1")
    cell_templates = kuhn_triangulation_unit_cell(dim)
    widths = (highs - lows) / resolution
    simplices: list[Simplex] = []
    for cell_index in product(range(resolution), repeat=dim):
        origin = lows + widths * np.asarray(cell_index, dtype=float)
        for template in cell_templates:
            verts = origin + template * widths
            simplices.append(Simplex(vertices=verts))
    return simplices


def interval_pieces(lo: float, hi: float, resolution: int) -> list[Simplex]:
    """One-dimensional convenience wrapper around :func:`box_simplices`."""
    return box_simplices([lo], [hi], resolution)
