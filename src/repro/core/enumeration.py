"""Table-set and split enumeration for the dynamic program.

RRPA treats "table sets in ascending order of cardinality" and considers
"all possible splits of q into two non-empty subsets" (Algorithm 1).  The
search space is bushy plans; Cartesian product joins are postponed as much
as possible, the heuristic "commonly applied in state-of-the-art optimizers
such as the Postgres optimizer" (Section 7):

* when the query's join graph is connected, only *connected* table sets
  are materialized and only *connected* splits (at least one join predicate
  crossing the split) are enumerated;
* for disconnected join graphs, Cartesian products are re-admitted exactly
  where no connected alternative exists.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterator

from ..query import Query


def subsets_in_size_order(query: Query) -> Iterator[frozenset[str]]:
    """Yield the table sets the DP must fill, smallest first.

    Connected-graph queries yield only connected subsets; otherwise all
    subsets are yielded (Cartesian products are then unavoidable).
    """
    graph = query.join_graph
    connected_only = graph.is_connected()
    tables = query.tables
    for size in range(2, len(tables) + 1):
        for combo in combinations(tables, size):
            subset = frozenset(combo)
            if connected_only and not graph.is_connected(subset):
                continue
            yield subset


def splits(query: Query, subset: frozenset[str]
           ) -> Iterator[tuple[frozenset[str], frozenset[str]]]:
    """Yield unordered splits ``(q1, q2)`` of ``subset`` for the last join.

    Each unordered split is yielded exactly once (the smaller side is
    canonically the one containing the lexicographically smallest table).
    Connected splits are preferred; Cartesian-product splits are yielded
    only when the subset admits no connected split at all.
    """
    members = sorted(subset)
    anchor = members[0]
    rest = members[1:]
    graph = query.join_graph
    # For connected join graphs, only proper csg-cmp pairs (both sides
    # internally connected) can have plans in the DP table; for
    # disconnected graphs every subset is materialized, so disconnected
    # sides are legitimate split operands.
    require_connected_sides = graph.is_connected()
    connected: list[tuple[frozenset[str], frozenset[str]]] = []
    cartesian: list[tuple[frozenset[str], frozenset[str]]] = []
    for size in range(0, len(rest)):
        for combo in combinations(rest, size):
            left = frozenset((anchor,) + combo)
            right = subset - left
            if not right:
                continue
            if require_connected_sides and not (
                    graph.is_connected(left)
                    and graph.is_connected(right)):
                continue
            target = (connected
                      if graph.split_is_connected(left, right)
                      else cartesian)
            target.append((left, right))
    pool = connected if connected else cartesian
    yield from pool


def count_considered_splits(query: Query) -> int:
    """Total number of splits the DP will enumerate (for sanity checks)."""
    return sum(1 for subset in subsets_in_size_order(query)
               for __ in splits(query, subset))
