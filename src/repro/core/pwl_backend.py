"""PWL-RRPA backend: Algorithms 2 and 3 of the paper.

This backend specializes the generic RRPA to piecewise-linear cost
functions:

* cost objects are :class:`repro.cost.MultiObjectivePWL` functions;
* relevance regions are :class:`repro.geometry.RelevanceRegion` objects
  (complements of convex-polytope cutouts, Theorem 4 / Figure 8);
* ``Dom`` produces convex polytopes per linear region (Theorem 2,
  Algorithm 3) which are subtracted from RRs by adding them as cutouts
  (Algorithm 2);
* emptiness checks follow Algorithm 2, with all three refinements of
  Section 6.2 individually switchable for the ablation benchmarks:
  redundant-constraint elimination, redundant-cutout elimination, and
  relevance points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from ..cost import (MultiObjectivePWL, accumulator_map,
                    batch_dominance_aligned)
from ..geometry import (ConvexPolytope, RelevanceRegion,
                        default_relevance_points)
from ..geometry import regions_empty_many as geometry_regions_empty_many
from ..lp import LinearProgramSolver, LPStats
from ..plans import JoinOperator, ScanOperator, ScanPlan
from ..util import deferred_lp_enabled
from .backend import RRPABackend
from .stats import OptimizerStats


@dataclass(frozen=True)
class PWLRRPAOptions:
    """Tunables of the PWL backend.

    Attributes:
        emptiness_strategy: ``"difference"`` (exact up to measure zero) or
            ``"convexity"`` (the paper's Algorithm 2 via union-convexity
            recognition; sound for pruning, may retain extra plans).
        use_relevance_points: Enable refinement 3 of Section 6.2 (witness
            points that avoid emptiness LPs).
        relevance_points_per_axis: Witness-grid density per parameter axis.
        simplify_polytopes: Enable refinement 1 (drop redundant linear
            constraints from dominance polytopes before they become
            cutouts).  Off by default: with cell-tagged dominance
            polytopes the constraint sets are already near-minimal and
            the redundancy LPs dominate the run time (see the ablation
            benchmark).
        remove_redundant_cutouts: Enable refinement 2 (drop cutouts covered
            by the other cutouts of the same RR) — applied lazily when a
            region accumulates more than ``cutout_cleanup_threshold``
            cutouts.
        cutout_cleanup_threshold: See above.
        vectorized_pruning: Decide aligned-partition dominance against all
            incumbents in one NumPy array pass instead of one Python loop
            per incumbent.  Produces identical polytope sets to the scalar
            path (falls back to it whenever the batch preconditions do not
            hold); off only for ablation/regression comparisons.
        lp_cache_size: Size of the per-run LP-result memo cache keyed by
            canonicalized constraint sets (0 disables).  Cache hits are
            not counted as solved LPs.
        approximation_factor: Alpha >= 0 for *alpha-dominance* pruning
            (the approximation-scheme idea of the paper's companion work,
            citation [31]): a plan is pruned wherever an alternative is
            within a ``(1 + alpha)`` factor on every metric.  Shrinks the
            plan set; the kept set then guarantees a multiplicative cost
            regret of at most ``(1 + alpha)`` per pruning comparison
            chain (bounded by the number of DP levels).  0 reproduces the
            paper's exact algorithm.
    """

    emptiness_strategy: str = "difference"
    use_relevance_points: bool = True
    relevance_points_per_axis: int = 3
    simplify_polytopes: bool = False
    remove_redundant_cutouts: bool = False
    cutout_cleanup_threshold: int = 12
    vectorized_pruning: bool = True
    lp_cache_size: int = 4096
    approximation_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.approximation_factor < 0:
            raise ValueError("approximation factor must be >= 0")
        if self.lp_cache_size < 0:
            raise ValueError("LP cache size must be >= 0")


class PWLBackend(RRPABackend):
    """Backend implementing Algorithms 2 and 3 on a PWL cost model.

    Args:
        cost_model: Object exposing ``scan_operators``, ``join_operators``,
            ``scan_cost``, ``join_local_cost``, ``metrics`` and
            ``partition`` (e.g. :class:`repro.cloud.CloudCostModel`).
        options: Backend tunables.
        lp_stats: LP counter shared with the optimizer statistics; a fresh
            one is created when omitted.
        stats: Optional optimizer stats for emptiness-check accounting.
    """

    def __init__(self, cost_model, options: PWLRRPAOptions | None = None,
                 lp_stats: LPStats | None = None,
                 stats: OptimizerStats | None = None) -> None:
        self.cost_model = cost_model
        self.options = options or PWLRRPAOptions()
        self.lp_stats = lp_stats if lp_stats is not None else LPStats()
        self.solver = LinearProgramSolver(
            stats=self.lp_stats, cache_size=self.options.lp_cache_size)
        self.stats = stats
        self.space: ConvexPolytope = cost_model.partition.space
        self._accumulators = accumulator_map(cost_model.metrics)
        self._point_template = None

    # ------------------------------------------------------------------
    # Operator / cost plumbing (delegated to the cost model)
    # ------------------------------------------------------------------

    def scan_operators(self, table: str) -> Sequence[ScanOperator]:
        return self.cost_model.scan_operators(table)

    def join_operators(self) -> Sequence[JoinOperator]:
        return self.cost_model.join_operators()

    def scan_cost(self, plan: ScanPlan) -> MultiObjectivePWL:
        return self.cost_model.scan_cost(plan)

    def join_local_cost(self, left_tables: frozenset[str],
                        right_tables: frozenset[str],
                        operator: JoinOperator) -> MultiObjectivePWL:
        return self.cost_model.join_local_cost(left_tables, right_tables,
                                               operator)

    def accumulate(self, local_cost: MultiObjectivePWL,
                   sub_costs: Sequence[MultiObjectivePWL]
                   ) -> MultiObjectivePWL:
        total = local_cost
        for sub in sub_costs:
            total = total.add(sub, self.solver,
                              accumulators=self._accumulators)
        return total

    # ------------------------------------------------------------------
    # Relevance regions (Algorithm 2)
    # ------------------------------------------------------------------

    def full_region(self) -> RelevanceRegion:
        points = None
        if self.options.use_relevance_points:
            if self._point_template is None:
                self._point_template = default_relevance_points(
                    self.space, self.solver,
                    per_axis=self.options.relevance_points_per_axis)
            points = [p.copy() for p in self._point_template]
        # Seed the region's residual decomposition with the shared
        # partition's cells: cell-tagged dominance cutouts then only touch
        # pieces of their own cell (no cross-cell LP work).
        return RelevanceRegion(
            self.space, relevance_points=points,
            initial_pieces=self.cost_model.partition.regions)

    def dominance(self, cost_a: MultiObjectivePWL,
                  cost_b: MultiObjectivePWL) -> list[ConvexPolytope]:
        polys = cost_a.dominance_polytopes(
            cost_b, self.solver, relax=self.options.approximation_factor)
        return self._simplified(polys)

    def _simplified(self, polys: list[ConvexPolytope]
                    ) -> list[ConvexPolytope]:
        if self.options.simplify_polytopes:
            # Whole grid cells (recognizable by their vertex hint) are
            # already minimal; only simplify polytopes that gained
            # dominance constraints.
            polys = [p if p.vertex_hint is not None
                     else p.remove_redundant(self.solver)
                     for p in polys]
        return polys

    def dominance_many(self, costs_a, cost_b) -> list[list[ConvexPolytope]]:
        """Vectorized ``Dom(a_k, b)`` over all aligned incumbents at once.

        Unaligned batches fall back to pairwise ``Dom``, where each pair
        runs the NumPy general-path kernel with batched emptiness LPs
        (:meth:`MultiObjectivePWL._dominance_general_vectorized`) unless
        ``REPRO_SCALAR_KERNELS=1`` forces the scalar piece-pair loops.
        """
        if self.options.vectorized_pruning:
            batch = batch_dominance_aligned(
                costs_a, cost_b, self.solver,
                relax=self.options.approximation_factor, many_first=True)
            if batch is not None:
                return [self._simplified(polys) for polys in batch]
        return [self.dominance(cost_a, cost_b) for cost_a in costs_a]

    def dominance_many_rev(self, cost_a, costs_b
                           ) -> list[list[ConvexPolytope]]:
        """Vectorized ``Dom(a, b_k)`` over all aligned incumbents at once."""
        if self.options.vectorized_pruning:
            batch = batch_dominance_aligned(
                costs_b, cost_a, self.solver,
                relax=self.options.approximation_factor, many_first=False)
            if batch is not None:
                return [self._simplified(polys) for polys in batch]
        return [self.dominance(cost_a, cost_b) for cost_b in costs_b]

    @property
    def approximation_factor(self) -> float:
        """Alpha of the backend's alpha-dominance pruning (0 = exact)."""
        return self.options.approximation_factor

    def set_approximation_factor(self, alpha: float) -> None:
        """Re-target the backend's alpha-dominance pruning.

        Used by precision-ladder runs between rungs; every other option
        (and the solver with its LP memo) is kept, so LP results from
        coarser rungs keep hitting.
        """
        self.options = replace(self.options, approximation_factor=alpha)

    def reduce_region(self, region: RelevanceRegion,
                      dominated: list[ConvexPolytope]) -> None:
        region.subtract_many(dominated)
        if (self.options.remove_redundant_cutouts
                and region.num_cutouts
                > self.options.cutout_cleanup_threshold):
            region.remove_redundant_cutouts(self.solver)

    def region_is_empty(self, region: RelevanceRegion) -> bool:
        if region.relevance_points:
            # Witness point present: non-empty without any LP.
            if self.stats is not None:
                self.stats.emptiness_checks_skipped += 1
            return False
        if self.stats is not None:
            self.stats.emptiness_checks += 1
        return region.is_empty(
            self.solver, strategy=self.options.emptiness_strategy)

    def regions_empty_many(self, regions: Sequence[RelevanceRegion]
                           ) -> list[bool]:
        """Lockstep-batched :meth:`region_is_empty` over many regions.

        Witness-point shortcuts and the per-check stats are applied
        per region exactly as in the sequential loop; the remaining
        checks run through :func:`repro.geometry.regions_empty_many`,
        which co-flushes their same-round LPs through the deferred
        queue.  Falls back to the sequential loop under eager dispatch.
        """
        if not deferred_lp_enabled():
            return [self.region_is_empty(region) for region in regions]
        results: list[bool | None] = [None] * len(regions)
        needs_lp: list[int] = []
        for index, region in enumerate(regions):
            if region.relevance_points:
                if self.stats is not None:
                    self.stats.emptiness_checks_skipped += 1
                results[index] = False
                continue
            if self.stats is not None:
                self.stats.emptiness_checks += 1
            needs_lp.append(index)
        if needs_lp:
            answers = geometry_regions_empty_many(
                [regions[i] for i in needs_lp], self.solver,
                strategy=self.options.emptiness_strategy)
            for index, empty in zip(needs_lp, answers):
                results[index] = empty
        return results

    def on_run_start(self) -> None:
        self._point_template = None
