"""Backend interface for the generic RRPA.

Algorithm 1 of the paper is deliberately generic: "The implementation of
elementary RRPA operations such as adding cost functions and intersecting
RRs depends on the considered class of cost functions" (Section 5).  This
module captures exactly those elementary operations as an abstract base
class; :mod:`repro.core.pwl_backend` implements them for PWL cost functions
(Algorithms 2 and 3) and :mod:`repro.core.grid` for arbitrary cost
functions over a finite parameter grid.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Any

from ..plans import JoinOperator, ScanOperator, ScanPlan


class RRPABackend(ABC):
    """Elementary operations RRPA needs, specialized per cost-function class."""

    @abstractmethod
    def scan_operators(self, table: str) -> Sequence[ScanOperator]:
        """Access paths available for a base table."""

    @abstractmethod
    def join_operators(self) -> Sequence[JoinOperator]:
        """Join operators available for combining two sub-plans."""

    @abstractmethod
    def scan_cost(self, plan: ScanPlan) -> Any:
        """Cost object of a scan plan."""

    @abstractmethod
    def join_local_cost(self, left_tables: frozenset[str],
                        right_tables: frozenset[str],
                        operator: JoinOperator) -> Any:
        """Cost object of the join operator itself (``o.w`` / ``o.b``)."""

    @abstractmethod
    def accumulate(self, local_cost: Any, sub_costs: Sequence[Any]) -> Any:
        """``AccumulateCost``: combine operator and sub-plan costs."""

    @abstractmethod
    def full_region(self) -> Any:
        """A fresh relevance region covering the whole parameter space."""

    @abstractmethod
    def dominance(self, cost_a: Any, cost_b: Any) -> Any:
        """``Dom(a, b)``: region where cost ``a`` dominates cost ``b``."""

    def dominance_many(self, costs_a: Sequence[Any], cost_b: Any
                       ) -> list[Any]:
        """``Dom(a_k, b)`` for a batch of costs against one cost.

        The default delegates to pairwise :meth:`dominance`; backends with
        a vectorized batch path (see :class:`repro.core.pwl_backend.
        PWLBackend`) override this.  Results must equal the pairwise ones.
        """
        return [self.dominance(cost_a, cost_b) for cost_a in costs_a]

    def dominance_many_rev(self, cost_a: Any, costs_b: Sequence[Any]
                           ) -> list[Any]:
        """``Dom(a, b_k)`` for one cost against a batch of costs."""
        return [self.dominance(cost_a, cost_b) for cost_b in costs_b]

    @property
    def approximation_factor(self) -> float:
        """Alpha the backend currently prunes with (0 = exact).

        Backends without alpha-dominance support report 0 (their pruning
        is exact by construction).
        """
        return 0.0

    def set_approximation_factor(self, alpha: float) -> None:
        """Switch the backend to alpha-dominance pruning at ``alpha``.

        Required only for multi-rung precision ladders
        (:class:`repro.core.run.OptimizationRun`); backends without
        alpha support simply cannot be laddered.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support precision ladders "
            f"(no alpha-dominance pruning)")

    @abstractmethod
    def reduce_region(self, region: Any, dominated: Any) -> None:
        """Reduce ``region`` by a dominance region, in place."""

    @abstractmethod
    def region_is_empty(self, region: Any) -> bool:
        """Decide whether a relevance region became empty."""

    def regions_empty_many(self, regions: Sequence[Any]) -> list[bool]:
        """:meth:`region_is_empty` for a batch of independent regions.

        The default delegates to the per-region check; backends whose
        emptiness tests bottom out in LPs (see :class:`repro.core
        .pwl_backend.PWLBackend`) override this to drive the checks in
        lockstep so their LPs batch.  Results — and any stats the
        per-region check records — must equal the sequential loop's.
        """
        return [self.region_is_empty(region) for region in regions]

    def on_run_start(self) -> None:
        """Hook invoked once per optimization run (cache resets etc.)."""
