"""The Relevance Region Pruning Algorithm (RRPA), Algorithm 1 of the paper.

RRPA is a dynamic program over table sets: Pareto plan sets for joining a
table set are built from Pareto plan sets of its subsets.  Pruning is based
on *relevance regions* (RRs): every plan is associated with the parameter-
space region for which no known alternative dominates it.  A new plan's RR
starts as the full parameter space and is reduced by ``Dom(old, new)`` for
every incumbent plan; if it empties, the plan is discarded (Algorithm 1,
lines 36–44).  Otherwise the incumbents' RRs are reduced by ``Dom(new,
old)`` and incumbents with empty RRs are displaced (lines 47–54).

Theorem 3 proves RRPA generates a complete Pareto plan set for arbitrary
MPQ instances (given the Principle of Optimality per metric); the
integration test-suite verifies this against brute-force enumeration.

The class is generic over an :class:`repro.core.backend.RRPABackend`; see
:mod:`repro.core.pwl_backend` (PWL cost functions, the paper's Section 6)
and :mod:`repro.core.grid` (arbitrary cost functions on a finite grid).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import OptimizationError
from ..plans import Plan, ScanPlan, combine
from ..query import Query
from .backend import RRPABackend
from .entry import PlanEntry
from .enumeration import splits, subsets_in_size_order
from .stats import OptimizerStats


@dataclass
class OptimizationResult:
    """Outcome of one RRPA run.

    Attributes:
        query: The optimized query.
        entries: Pareto plan set for the full table set, with cost
            functions and relevance regions.
        stats: Run statistics (plans created, LPs solved, wall time).
        dp_table: The full DP table (table set -> surviving entries);
            useful for analysis and debugging.
    """

    query: Query
    entries: list[PlanEntry]
    stats: OptimizerStats
    dp_table: dict[frozenset[str], list[PlanEntry]] = field(
        default_factory=dict)

    @property
    def pareto_plans(self) -> list[Plan]:
        """The plans of the final Pareto plan set."""
        return [e.plan for e in self.entries]

    def plans_for(self, x) -> list[PlanEntry]:
        """Entries whose relevance region contains parameter vector ``x``.

        The relevance-mapping property guarantees the returned entries
        contain a dominating plan for every possible plan at ``x``.
        Falls back to all entries when a backend's region type does not
        expose point membership.
        """
        x = np.asarray(x, dtype=float)
        selected = []
        for entry in self.entries:
            contains = getattr(entry.region, "contains_point", None)
            if contains is None or contains(x):
                selected.append(entry)
        return selected or list(self.entries)

    def frontier_at(self, x, evaluate=None) -> list[tuple[Plan, dict]]:
        """Non-dominated ``(plan, cost_dict)`` pairs at parameter ``x``.

        Args:
            x: Parameter vector.
            evaluate: Optional ``(cost_object, x) -> dict`` override for
                backends whose cost objects lack an ``evaluate`` method.
        """
        costed = []
        for entry in self.plans_for(x):
            if evaluate is not None:
                values = evaluate(entry.cost, x)
            else:
                values = entry.cost.evaluate(x)
            costed.append((entry.plan, values))
        frontier = []
        for plan, values in costed:
            dominated = any(
                all(other[m] <= values[m] for m in values)
                and any(other[m] < values[m] for m in values)
                for __, other in costed if other is not values)
            if not dominated:
                frontier.append((plan, values))
        return frontier


class RRPA:
    """Generic MPQ optimizer (Algorithm 1).

    Args:
        backend: Implementation of the elementary operations for the
            desired cost-function class.
    """

    def __init__(self, backend: RRPABackend) -> None:
        self.backend = backend

    # ------------------------------------------------------------------
    # Pruning (Algorithm 1, procedure Prune)
    # ------------------------------------------------------------------

    #: Incumbents per vectorized dominance batch while reducing the new
    #: plan's RR.  Chunking bounds the work wasted when the RR empties
    #: early (the scalar loop would have stopped at that incumbent).
    PRUNE_CHUNK = 8

    def _prune(self, entries: list[PlanEntry], new_plan: Plan,
               new_cost: Any, stats: OptimizerStats) -> None:
        """Insert ``new_plan`` into ``entries`` unless it is irrelevant."""
        backend = self.backend
        stats.plans_created += 1
        new_region = backend.full_region()
        # Reduce the new plan's RR by every incumbent's dominance region.
        for start in range(0, len(entries), self.PRUNE_CHUNK):
            chunk = entries[start:start + self.PRUNE_CHUNK]
            dom_lists = backend.dominance_many(
                [old.cost for old in chunk], new_cost)
            for dominated in dom_lists:
                stats.pruning_comparisons += 1
                backend.reduce_region(new_region, dominated)
                if backend.region_is_empty(new_region):
                    stats.plans_discarded_new += 1
                    return
        # The new plan is relevant somewhere: displace dominated incumbents.
        survivors = []
        dom_lists = backend.dominance_many_rev(
            new_cost, [old.cost for old in entries])
        for old, dominated in zip(entries, dom_lists):
            stats.pruning_comparisons += 1
            backend.reduce_region(old.region, dominated)
            if backend.region_is_empty(old.region):
                stats.plans_displaced_old += 1
            else:
                survivors.append(old)
        entries[:] = survivors
        entries.append(PlanEntry(plan=new_plan, cost=new_cost,
                                 region=new_region))
        stats.plans_inserted += 1

    # ------------------------------------------------------------------
    # Main loop (Algorithm 1, function GenericMPQ)
    # ------------------------------------------------------------------

    def optimize(self, query: Query) -> OptimizationResult:
        """Compute a Pareto plan set for ``query``.

        Raises:
            OptimizationError: If some table set ends up with no plans
                (indicates an inconsistent cost model or backend).
        """
        backend = self.backend
        backend.on_run_start()
        stats = OptimizerStats()
        if hasattr(backend, "lp_stats"):
            stats.lp_stats = backend.lp_stats
        started = time.perf_counter()

        dp: dict[frozenset[str], list[PlanEntry]] = {}

        # Base tables: all scan plans, pruned against each other.
        for table in query.tables:
            key = frozenset((table,))
            dp[key] = []
            for operator in backend.scan_operators(table):
                plan = ScanPlan(table=table, operator=operator)
                cost = backend.scan_cost(plan)
                self._prune(dp[key], plan, cost, stats)
            if not dp[key]:
                raise OptimizationError(
                    f"no scan plans survived for table {table!r}")

        # Table sets of increasing cardinality.
        for subset in subsets_in_size_order(query):
            entries: list[PlanEntry] = []
            dp[subset] = entries
            for left_set, right_set in splits(query, subset):
                left_entries = dp.get(left_set)
                right_entries = dp.get(right_set)
                if not left_entries or not right_entries:
                    continue
                for operator in backend.join_operators():
                    local = backend.join_local_cost(left_set, right_set,
                                                    operator)
                    for left in left_entries:
                        for right in right_entries:
                            plan = combine(left.plan, right.plan, operator)
                            cost = backend.accumulate(
                                local, (left.cost, right.cost))
                            self._prune(entries, plan, cost, stats)
            if not entries:
                raise OptimizationError(
                    f"no plans survived for table set {sorted(subset)}")

        stats.optimization_seconds = time.perf_counter() - started
        final = dp[query.table_set] if query.num_tables > 1 else dp[
            frozenset((query.tables[0],))]
        return OptimizationResult(query=query, entries=list(final),
                                  stats=stats, dp_table=dp)


def optimize_with(backend: RRPABackend, query: Query) -> OptimizationResult:
    """One-shot convenience wrapper around :class:`RRPA`.

    .. deprecated:: 1.1
        Use :class:`repro.api.OptimizerSession` with a registered scenario
        (or ``RRPA(backend).optimize(query)`` directly for a hand-built
        backend).
    """
    warnings.warn(
        "optimize_with is deprecated; use repro.api.OptimizerSession with "
        "a registered scenario, or RRPA(backend).optimize(query)",
        DeprecationWarning, stacklevel=2)
    return RRPA(backend).optimize(query)
