"""The Relevance Region Pruning Algorithm (RRPA), Algorithm 1 of the paper.

RRPA is a dynamic program over table sets: Pareto plan sets for joining a
table set are built from Pareto plan sets of its subsets.  Pruning is based
on *relevance regions* (RRs): every plan is associated with the parameter-
space region for which no known alternative dominates it.  A new plan's RR
starts as the full parameter space and is reduced by ``Dom(old, new)`` for
every incumbent plan; if it empties, the plan is discarded (Algorithm 1,
lines 36–44).  Otherwise the incumbents' RRs are reduced by ``Dom(new,
old)`` and incumbents with empty RRs are displaced (lines 47–54).

Theorem 3 proves RRPA generates a complete Pareto plan set for arbitrary
MPQ instances (given the Principle of Optimality per metric); the
integration test-suite verifies this against brute-force enumeration.

The class is generic over an :class:`repro.core.backend.RRPABackend`; see
:mod:`repro.core.pwl_backend` (PWL cost functions, the paper's Section 6)
and :mod:`repro.core.grid` (arbitrary cost functions on a finite grid).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..plans import Plan
from ..query import Query
from .backend import RRPABackend
from .entry import PlanEntry
from .stats import OptimizerStats


@dataclass
class OptimizationResult:
    """Outcome of one RRPA run.

    Attributes:
        query: The optimized query.
        entries: Pareto plan set for the full table set, with cost
            functions and relevance regions.
        stats: Run statistics (plans created, LPs solved, wall time).
        dp_table: The full DP table (table set -> surviving entries);
            useful for analysis and debugging.
        achieved_alpha: Approximation factor the plan set was pruned
            with (``0.0`` for the paper's exact algorithm).
        guarantee: Multiplicative end-to-end cost bound: every possible
            plan is covered by a returned plan within this factor on all
            metrics (``1.0`` for exact runs; see
            :func:`repro.core.run.guarantee_bound`).
    """

    query: Query
    entries: list[PlanEntry]
    stats: OptimizerStats
    dp_table: dict[frozenset[str], list[PlanEntry]] = field(
        default_factory=dict)
    achieved_alpha: float = 0.0
    guarantee: float = 1.0

    @property
    def pareto_plans(self) -> list[Plan]:
        """The plans of the final Pareto plan set."""
        return [e.plan for e in self.entries]

    def plans_for(self, x) -> list[PlanEntry]:
        """Entries whose relevance region contains parameter vector ``x``.

        The relevance-mapping property guarantees the returned entries
        contain a dominating plan for every possible plan at ``x``.
        Falls back to all entries when a backend's region type does not
        expose point membership.
        """
        x = np.asarray(x, dtype=float)
        selected = []
        for entry in self.entries:
            contains = getattr(entry.region, "contains_point", None)
            if contains is None or contains(x):
                selected.append(entry)
        return selected or list(self.entries)

    def frontier_at(self, x, evaluate=None) -> list[tuple[Plan, dict]]:
        """Non-dominated ``(plan, cost_dict)`` pairs at parameter ``x``.

        Args:
            x: Parameter vector.
            evaluate: Optional ``(cost_object, x) -> dict`` override for
                backends whose cost objects lack an ``evaluate`` method.
        """
        costed = []
        for entry in self.plans_for(x):
            if evaluate is not None:
                values = evaluate(entry.cost, x)
            else:
                values = entry.cost.evaluate(x)
            costed.append((entry.plan, values))
        frontier = []
        for plan, values in costed:
            dominated = any(
                all(other[m] <= values[m] for m in values)
                and any(other[m] < values[m] for m in values)
                for __, other in costed if other is not values)
            if not dominated:
                frontier.append((plan, values))
        return frontier


#: Incumbents per vectorized dominance batch while reducing the new
#: plan's RR.  Chunking bounds the work wasted when the RR empties
#: early (the scalar loop would have stopped at that incumbent).
PRUNE_CHUNK = 8


def prune_into(backend: RRPABackend, entries: list[PlanEntry],
               new_plan: Plan, new_cost: Any, stats: OptimizerStats,
               chunk_size: int = PRUNE_CHUNK) -> None:
    """Insert ``new_plan`` into ``entries`` unless it is irrelevant.

    Algorithm 1's procedure ``Prune``, shared by :class:`RRPA` and the
    resumable :class:`repro.core.run.OptimizationRun` engine.
    """
    stats.plans_created += 1
    new_region = backend.full_region()
    # Reduce the new plan's RR by every incumbent's dominance region.
    for start in range(0, len(entries), chunk_size):
        chunk = entries[start:start + chunk_size]
        dom_lists = backend.dominance_many(
            [old.cost for old in chunk], new_cost)
        for dominated in dom_lists:
            stats.pruning_comparisons += 1
            backend.reduce_region(new_region, dominated)
            if backend.region_is_empty(new_region):
                stats.plans_discarded_new += 1
                return
    # The new plan is relevant somewhere: displace dominated incumbents.
    # Reductions are LP-free (they only record cutouts), so apply them
    # all first and then decide every incumbent's emptiness in one
    # lockstep pass — each region's check is an independent LP chain,
    # which is exactly the shape the deferred queue batches across.
    survivors = []
    dom_lists = backend.dominance_many_rev(
        new_cost, [old.cost for old in entries])
    for old, dominated in zip(entries, dom_lists):
        stats.pruning_comparisons += 1
        backend.reduce_region(old.region, dominated)
    empties = backend.regions_empty_many([old.region for old in entries])
    for old, empty in zip(entries, empties):
        if empty:
            stats.plans_displaced_old += 1
        else:
            survivors.append(old)
    entries[:] = survivors
    entries.append(PlanEntry(plan=new_plan, cost=new_cost,
                             region=new_region))
    stats.plans_inserted += 1


class RRPA:
    """Generic MPQ optimizer (Algorithm 1).

    Since the anytime redesign this is a thin run-to-completion wrapper
    over the resumable :class:`repro.core.run.OptimizationRun` engine —
    one rung at the backend's configured approximation factor, which
    performs exactly the operations of the classic loop in the same
    order (bit-identical plan sets and statistics).

    Args:
        backend: Implementation of the elementary operations for the
            desired cost-function class.
    """

    #: Per-instance/subclass override of the dominance batch size,
    #: honored by :meth:`_prune` (the module-level :data:`PRUNE_CHUNK`
    #: is the default).
    PRUNE_CHUNK = PRUNE_CHUNK

    def __init__(self, backend: RRPABackend) -> None:
        self.backend = backend

    def _prune(self, entries: list[PlanEntry], new_plan: Plan,
               new_cost: Any, stats: OptimizerStats) -> None:
        """Algorithm 1's ``Prune`` (delegates to :func:`prune_into`)."""
        prune_into(self.backend, entries, new_plan, new_cost, stats,
                   chunk_size=self.PRUNE_CHUNK)

    def start_run(self, query: Query, *, precision_ladder=None,
                  on_event=None, seed_plans=None):
        """Create a resumable :class:`~repro.core.run.OptimizationRun`.

        ``precision_ladder=None`` runs a single rung at the backend's
        configured approximation factor (any backend); multi-rung
        ladders require backend support for
        :meth:`~repro.core.backend.RRPABackend.set_approximation_factor`.
        ``seed_plans`` warm-starts the first (coarse) rung from a
        similar query's plan set; see
        :class:`~repro.core.run.OptimizationRun`.
        """
        from .run import OptimizationRun
        return OptimizationRun(self.backend, query,
                               precision_ladder=precision_ladder,
                               on_event=on_event,
                               prune_chunk=self.PRUNE_CHUNK,
                               seed_plans=seed_plans)

    def optimize(self, query: Query) -> OptimizationResult:
        """Compute a Pareto plan set for ``query``.

        Raises:
            OptimizationError: If some table set ends up with no plans
                (indicates an inconsistent cost model or backend).
        """
        run = self.start_run(query)
        run.run()
        return run.result()


def optimize_with(backend: RRPABackend, query: Query) -> OptimizationResult:
    """One-shot convenience wrapper around :class:`RRPA`.

    .. deprecated:: 1.1
        Use :class:`repro.api.OptimizerSession` with a registered scenario
        (or ``RRPA(backend).optimize(query)`` directly for a hand-built
        backend).
    """
    warnings.warn(
        "optimize_with is deprecated; use repro.api.OptimizerSession with "
        "a registered scenario, or RRPA(backend).optimize(query)",
        DeprecationWarning, stacklevel=2)
    return RRPA(backend).optimize(query)
