"""Persisting Pareto plan sets.

The whole point of MPQ (Figure 2) is that optimization happens *before*
run time: for embedded SQL (Scenario 2) the plan set must survive between
the preprocessing step and the application's run time.  This module
serializes an :class:`OptimizationResult`'s Pareto plan set — plans, PWL
cost functions and relevance-region cutouts — to a JSON document and
reloads it into a :class:`StoredPlanSet` that supports the same run-time
selection operations without re-optimizing (and without the optimizer's
dependencies: reloading needs no LP solver).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from ..cost import MultiObjectivePWL, PiecewiseLinearFunction
from ..cost.linear import LinearPiece
from ..errors import ReproError
from ..geometry import ConvexPolytope, LinearConstraint
from ..plans import JoinOperator, JoinPlan, Plan, ScanOperator, ScanPlan
from .rrpa import OptimizationResult

FORMAT_VERSION = 1


class SerializationError(ReproError):
    """Raised for malformed stored plan sets."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def _encode_plan(plan: Plan) -> dict:
    if isinstance(plan, ScanPlan):
        op = plan.operator
        return {"kind": "scan", "table": plan.table,
                "operator": {"name": op.name, "uses_index": op.uses_index,
                             "sampling_rate": op.sampling_rate}}
    if isinstance(plan, JoinPlan):
        return {"kind": "join",
                "operator": {"name": plan.operator.name,
                             "parallel": plan.operator.parallel},
                "left": _encode_plan(plan.left),
                "right": _encode_plan(plan.right)}
    raise SerializationError(f"cannot encode plan node {plan!r}")


def _encode_polytope(poly: ConvexPolytope) -> dict:
    return {"dim": poly.dim,
            "constraints": [{"a": c.a.tolist(), "b": c.b}
                            for c in poly.constraints]}


def _encode_pwl(f: PiecewiseLinearFunction) -> dict:
    return {"dim": f.dim,
            "pieces": [{"region": _encode_polytope(p.region),
                        "w": np.asarray(p.w).tolist(), "b": p.b}
                       for p in f.pieces]}


def _encode_region(region) -> dict:
    return {"space": _encode_polytope(region.space),
            "cutouts": [_encode_polytope(c) for c in region.cutouts]}


def encode_plan(plan: Plan) -> dict:
    """Encode one plan tree as a JSON-ready dict.

    The per-entry ``"plan"`` format of :func:`encode_result`; used on
    its own by the cross-query seeding path, which ships bare plan trees
    (no cost functions — seeds are re-costed under the target query's
    model).
    """
    return _encode_plan(plan)


def decode_plan(doc: dict) -> Plan:
    """Inverse of :func:`encode_plan`.

    Raises:
        SerializationError: For unknown plan node kinds.
    """
    return _decode_plan(doc)


def encode_result(result: OptimizationResult) -> dict:
    """Encode a result's final Pareto plan set as a JSON-ready dict.

    The document records the run's approximation tag (``alpha`` /
    ``guarantee``, both trivial for exact runs) so anytime plan sets
    stay distinguishable from exact ones after a round trip — the
    warm-start cache keys acceptance on it.
    """
    entries = []
    for entry in result.entries:
        entries.append({
            "plan": _encode_plan(entry.plan),
            "cost": {name: _encode_pwl(f)
                     for name, f in entry.cost.components.items()},
            "region": _encode_region(entry.region),
        })
    return {"version": FORMAT_VERSION,
            "num_params": max(1, result.query.num_params),
            "alpha": float(result.achieved_alpha),
            "guarantee": float(result.guarantee),
            "entries": entries}


def encode_plan_set(plan_set: StoredPlanSet) -> dict:
    """Encode a reloaded :class:`StoredPlanSet` back into a document.

    Exact inverse of :func:`decode_plan_set` — a decode/encode round
    trip reproduces the document value-for-value (constraints, PWL
    pieces and floats are preserved), so a serving tier can hand a
    session's decoded plan set to a remote client as the same JSON the
    optimizer produced.
    """
    entries = []
    for entry in plan_set.entries:
        entries.append({
            "plan": _encode_plan(entry.plan),
            "cost": {name: _encode_pwl(f)
                     for name, f in entry.cost.components.items()},
            "region": {"space": _encode_polytope(entry.space),
                       "cutouts": [_encode_polytope(c)
                                   for c in entry.cutouts]},
        })
    return {"version": FORMAT_VERSION,
            "num_params": plan_set.num_params,
            "alpha": float(plan_set.alpha),
            "guarantee": float(plan_set.guarantee),
            "entries": entries}


def save_result(result: OptimizationResult, path) -> None:
    """Write a result's Pareto plan set to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(encode_result(result), handle)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------

def _decode_plan(doc: dict) -> Plan:
    kind = doc.get("kind")
    if kind == "scan":
        op = doc["operator"]
        return ScanPlan(table=doc["table"],
                        operator=ScanOperator(
                            name=op["name"],
                            uses_index=op.get("uses_index", False),
                            sampling_rate=op.get("sampling_rate", 1.0)))
    if kind == "join":
        op = doc["operator"]
        return JoinPlan(left=_decode_plan(doc["left"]),
                        right=_decode_plan(doc["right"]),
                        operator=JoinOperator(
                            name=op["name"],
                            parallel=op.get("parallel", False)))
    raise SerializationError(f"unknown plan kind {kind!r}")


def _decode_polytope(doc: dict) -> ConvexPolytope:
    constraints = [LinearConstraint.make(c["a"], c["b"])
                   for c in doc["constraints"]]
    return ConvexPolytope(doc["dim"], constraints)


def _decode_pwl(doc: dict) -> PiecewiseLinearFunction:
    pieces = [LinearPiece(region=_decode_polytope(p["region"]),
                          w=np.asarray(p["w"], dtype=float), b=p["b"])
              for p in doc["pieces"]]
    return PiecewiseLinearFunction(doc["dim"], pieces)


@dataclass
class StoredEntry:
    """One reloaded plan with its cost function and relevance cutouts."""

    plan: Plan
    cost: MultiObjectivePWL
    space: ConvexPolytope
    cutouts: list[ConvexPolytope]

    def relevant_at(self, x) -> bool:
        """Relevance-region membership (space minus cutouts)."""
        if not self.space.contains_point(x):
            return False
        return not any(c.contains_point(x) for c in self.cutouts)


class StoredPlanSet:
    """A reloaded Pareto plan set supporting run-time selection.

    Mirrors the selection operations of
    :class:`repro.core.selection.PlanSelector` without requiring the
    original optimizer state.
    """

    def __init__(self, num_params: int, entries: list[StoredEntry],
                 alpha: float = 0.0, guarantee: float = 1.0) -> None:
        self.num_params = num_params
        self.entries = entries
        #: Approximation factor the set was pruned with (0 = exact).
        self.alpha = alpha
        #: End-to-end multiplicative cost bound (1 = exact).
        self.guarantee = guarantee

    def plans_for(self, x) -> list[StoredEntry]:
        """Entries whose relevance region contains ``x``."""
        relevant = [e for e in self.entries if e.relevant_at(x)]
        return relevant or list(self.entries)

    def frontier(self, x) -> list[tuple[Plan, dict[str, float]]]:
        """Non-dominated ``(plan, cost)`` pairs at ``x``."""
        costed = [(e.plan, e.cost.evaluate(x)) for e in self.plans_for(x)]
        out = []
        for plan, cost in costed:
            dominated = any(
                all(other[m] <= cost[m] for m in cost)
                and any(other[m] < cost[m] for m in cost)
                for __, other in costed if other is not cost)
            if not dominated:
                out.append((plan, cost))
        return out

    def select(self, x, weights) -> tuple[Plan, dict[str, float]]:
        """Weighted-sum selection at run time."""
        best = None
        for entry in self.plans_for(x):
            cost = entry.cost.evaluate(x)
            score = sum(weights.get(m, 0.0) * v for m, v in cost.items())
            if best is None or score < best[0]:
                best = (score, entry.plan, cost)
        if best is None:
            raise SerializationError("stored plan set is empty")
        return best[1], best[2]


def decode_plan_set(doc: dict) -> StoredPlanSet:
    """Decode a stored plan set document.

    Raises:
        SerializationError: On version mismatch or malformed content.
    """
    if doc.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported plan-set version {doc.get('version')!r}")
    entries = []
    for entry_doc in doc.get("entries", []):
        cost = MultiObjectivePWL({name: _decode_pwl(f)
                                  for name, f in entry_doc["cost"].items()})
        region_doc = entry_doc["region"]
        entries.append(StoredEntry(
            plan=_decode_plan(entry_doc["plan"]),
            cost=cost,
            space=_decode_polytope(region_doc["space"]),
            cutouts=[_decode_polytope(c)
                     for c in region_doc["cutouts"]]))
    return StoredPlanSet(num_params=doc.get("num_params", 1),
                         entries=entries,
                         alpha=float(doc.get("alpha", 0.0)),
                         guarantee=float(doc.get("guarantee", 1.0)))


def load_plan_set(path) -> StoredPlanSet:
    """Load a stored plan set from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return decode_plan_set(json.load(handle))
