"""Core MPQ optimizers: generic RRPA, PWL-RRPA, grid backend, selection.

Public API:

* :class:`RRPA` / :func:`optimize_with` — the generic Algorithm 1 over an
  abstract backend.
* :class:`PWLRRPA` / :func:`optimize_cloud_query` — the PWL specialization
  of Section 6, ready-wired to the Cloud cost model.
* :class:`PWLBackend` / :class:`PWLRRPAOptions` — Algorithms 2+3 with the
  Section 6.2 refinements switchable.
* :class:`GridBackend` / :func:`make_grid` — generic-RRPA instantiation
  for arbitrary cost functions over finite parameter grids.
* :class:`OptimizationResult`, :class:`PlanEntry`, :class:`OptimizerStats`.
* :class:`PlanSelector` — run-time plan selection (Figure 2).
"""

from .backend import RRPABackend
from .entry import PlanEntry
from .enumeration import count_considered_splits, splits, subsets_in_size_order
from .grid import GridBackend, GridCost, GridRegion, make_grid
from .pwl_backend import PWLBackend, PWLRRPAOptions
from .pwl_rrpa import PWLRRPA, optimize_cloud_query
from .rrpa import RRPA, OptimizationResult, optimize_with
from .run import (DEFAULT_PRECISION_LADDER, DEFAULT_SEED_CAP, RUN_COMPLETED,
                  RUN_EXHAUSTED, RUN_RUNG_DONE, RUN_STOPPED, SEED_JUMP_ALPHA,
                  Budget, OptimizationRun, ProgressEvent, RungOutcome,
                  guarantee_bound, ladder_to, trim_ladder_for_seed,
                  validate_ladder)
from .selection import PlanSelector, SelectedPlan
from .serialize import (StoredPlanSet, decode_plan, decode_plan_set,
                        encode_plan, encode_plan_set, encode_result,
                        load_plan_set, save_result)
from .stats import OptimizerStats

__all__ = [
    "Budget",
    "DEFAULT_PRECISION_LADDER",
    "DEFAULT_SEED_CAP",
    "GridBackend",
    "GridCost",
    "GridRegion",
    "OptimizationResult",
    "OptimizationRun",
    "OptimizerStats",
    "PWLBackend",
    "PWLRRPA",
    "PWLRRPAOptions",
    "PlanEntry",
    "PlanSelector",
    "ProgressEvent",
    "RRPA",
    "RRPABackend",
    "RUN_COMPLETED",
    "RUN_EXHAUSTED",
    "RUN_RUNG_DONE",
    "RUN_STOPPED",
    "RungOutcome",
    "SEED_JUMP_ALPHA",
    "SelectedPlan",
    "StoredPlanSet",
    "count_considered_splits",
    "decode_plan",
    "decode_plan_set",
    "encode_plan",
    "encode_plan_set",
    "encode_result",
    "guarantee_bound",
    "ladder_to",
    "load_plan_set",
    "make_grid",
    "optimize_cloud_query",
    "optimize_with",
    "save_result",
    "splits",
    "subsets_in_size_order",
    "trim_ladder_for_seed",
]
