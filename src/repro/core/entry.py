"""Plan-set entries: a plan, its cost function, and its relevance region.

RRPA's dynamic-programming table maps each table set ``q`` to a Pareto plan
set ``P_q`` and a relevance mapping ``R_q`` (Algorithm 1).  A
:class:`PlanEntry` bundles one plan with its cost function and relevance
region; the backend decides the concrete types of both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..plans import Plan


@dataclass
class PlanEntry:
    """One row of the DP table.

    Attributes:
        plan: The query plan.
        cost: Backend-specific cost-function object (a
            :class:`repro.cost.MultiObjectivePWL` for the PWL backend, a
            per-grid-point value table for the grid backend).
        region: Backend-specific relevance region; the plan is discarded
            once the backend reports it empty.
    """

    plan: Plan
    cost: Any
    region: Any

    @property
    def tables(self) -> frozenset[str]:
        """Tables joined by the entry's plan."""
        return self.plan.tables
