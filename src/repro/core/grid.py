"""Grid backend: the generic RRPA instantiated for arbitrary cost functions.

Section 5 presents RRPA as generic over "arbitrary cost functions"; the
concrete data structures are only fixed once a cost-function class is
chosen.  This backend chooses the simplest sound instantiation: a *finite*
parameter space consisting of grid points.  Cost objects are per-metric
value arrays over the grid; relevance regions are boolean masks; dominance
regions are pointwise comparisons.  Every elementary operation is exact,
no LP is ever solved, and Theorem 3's completeness guarantee applies
verbatim with ``X = {grid points}``.

The grid backend serves three purposes:

* it makes the *generic* algorithm executable (deliverable of Section 5);
* it cross-validates PWL-RRPA: at every grid point the plan frontier found
  by the grid backend must match the frontier induced by PWL-RRPA's plan
  set (integration tests);
* it handles cost functions that are not PWL at all — the exact polynomial
  cost formulas of the Cloud model are evaluated without PWL-approximation
  error here.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..plans import JoinOperator, ScanOperator, ScanPlan
from ..query import Query
from .backend import RRPABackend


def make_grid(num_params: int, points_per_axis: int = 5,
              lows: Sequence[float] | None = None,
              highs: Sequence[float] | None = None) -> np.ndarray:
    """Build a regular grid over the parameter box.

    Args:
        num_params: Parameter-space dimensionality (>= 1).
        points_per_axis: Grid density.
        lows / highs: Box bounds, default the unit box.

    Returns:
        Array of shape ``(points_per_axis ** num_params, num_params)``.
    """
    lows = [0.0] * num_params if lows is None else list(lows)
    highs = [1.0] * num_params if highs is None else list(highs)
    axes = [np.linspace(lo, hi, points_per_axis)
            for lo, hi in zip(lows, highs)]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.reshape(-1) for m in mesh], axis=1)


class GridCost:
    """Cost object of the grid backend: per-metric value arrays.

    Attributes:
        values: Mapping metric name -> array of costs, one per grid point.
    """

    __slots__ = ("values",)

    def __init__(self, values: dict[str, np.ndarray]) -> None:
        self.values = values

    def evaluate_index(self, index: int) -> dict[str, float]:
        """Cost vector at the grid point with the given index."""
        return {m: float(v[index]) for m, v in self.values.items()}

    def evaluate(self, x=None, *, index: int | None = None,
                 points: np.ndarray | None = None) -> dict[str, float]:
        """Cost vector at a grid point given by index or coordinates."""
        if index is None:
            if points is None or x is None:
                raise ValueError("need either index or (x, points)")
            matches = np.where(
                np.all(np.isclose(points, np.asarray(x)), axis=1))[0]
            if len(matches) == 0:
                raise ValueError(f"{x} is not a grid point")
            index = int(matches[0])
        return self.evaluate_index(index)


class GridRegion:
    """Relevance region of the grid backend: a boolean membership mask."""

    __slots__ = ("mask", "points")

    def __init__(self, mask: np.ndarray, points: np.ndarray) -> None:
        self.mask = mask
        self.points = points

    def contains_point(self, x) -> bool:
        """Membership test for (the nearest) grid point."""
        distances = np.linalg.norm(self.points - np.asarray(x), axis=1)
        return bool(self.mask[int(np.argmin(distances))])


class GridBackend(RRPABackend):
    """Generic-RRPA backend over a finite grid of parameter points.

    Args:
        query: The query to optimize.
        cost_model: Object exposing ``scan_operators``, ``join_operators``,
            ``scan_cost_polynomials``, ``join_cost_polynomials`` and
            ``metrics`` (e.g. :class:`repro.cloud.CloudCostModel`); the
            exact polynomials are evaluated at the grid points — no PWL
            approximation is involved.
        points: Grid points, shape ``(num_points, num_params)``; defaults
            to a 5-per-axis regular grid on the unit box.
    """

    def __init__(self, query: Query, cost_model,
                 points: np.ndarray | None = None) -> None:
        self.query = query
        self.cost_model = cost_model
        if points is None:
            points = make_grid(max(1, query.num_params))
        self.points = np.asarray(points, dtype=float)
        if self.points.ndim != 2:
            raise ValueError("grid points must be a 2-D array")
        self.num_points = self.points.shape[0]

    # ------------------------------------------------------------------
    # Operators and costs
    # ------------------------------------------------------------------

    def scan_operators(self, table: str) -> Sequence[ScanOperator]:
        return self.cost_model.scan_operators(table)

    def join_operators(self) -> Sequence[JoinOperator]:
        return self.cost_model.join_operators()

    def _evaluate_polys(self, polys) -> GridCost:
        values = {}
        for metric, poly in polys.items():
            values[metric] = np.array(
                [poly.evaluate(x) for x in self.points])
        return GridCost(values)

    def scan_cost(self, plan: ScanPlan) -> GridCost:
        return self._evaluate_polys(
            self.cost_model.scan_cost_polynomials(plan))

    def join_local_cost(self, left_tables: frozenset[str],
                        right_tables: frozenset[str],
                        operator: JoinOperator) -> GridCost:
        return self._evaluate_polys(self.cost_model.join_cost_polynomials(
            left_tables, right_tables, operator))

    def accumulate(self, local_cost: GridCost,
                   sub_costs: Sequence[GridCost]) -> GridCost:
        values = {m: v.copy() for m, v in local_cost.values.items()}
        for sub in sub_costs:
            for metric in values:
                values[metric] += sub.values[metric]
        return GridCost(values)

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------

    def full_region(self) -> GridRegion:
        return GridRegion(np.ones(self.num_points, dtype=bool), self.points)

    def dominance(self, cost_a: GridCost, cost_b: GridCost) -> np.ndarray:
        """Pointwise ``Dom(a, b)`` mask: a <= b on every metric."""
        mask = np.ones(self.num_points, dtype=bool)
        for metric, a_vals in cost_a.values.items():
            mask &= a_vals <= cost_b.values[metric] + 1e-12
        return mask

    def reduce_region(self, region: GridRegion,
                      dominated: np.ndarray) -> None:
        region.mask &= ~dominated

    def region_is_empty(self, region: GridRegion) -> bool:
        return not bool(region.mask.any())
