"""Resumable anytime RRPA runs: budgets, precision ladders, progress events.

The paper's headline trade-off — exact Pareto plan sets vs. a
``(1 + alpha)``-approximation with a formal guarantee — was previously
reachable only through a monolithic run-to-completion call.  This module
turns one optimization into an explicit-state object, the
:class:`OptimizationRun`: it advances in bounded *steps* (one DP level —
a base table's scan set or one join-graph table set — per step), can be
paused between steps, resumed with fresh :class:`Budget`, and queried for
its best-so-far Pareto set together with a valid guarantee at any step
boundary.

Anytime semantics come from *precision ladders*: a descending sequence of
alpha values (e.g. ``(0.5, 0.2, 0.05, 0.0)``).  Each rung runs the full
dynamic program under alpha-dominance pruning at its alpha; coarser rungs
finish quickly and later rungs warm-start from the work of earlier ones
(plan cost functions are memoized across rungs by plan structure, and the
backend's LP memo carries dominance/emptiness LP results over), so
interrupting the run always leaves the last *completed* rung's plan set
available with its ``(1 + alpha)``-style guarantee.  The final rung at
``alpha = 0`` performs exactly the operations of the classic exact loop in
the same order, so its plan set is bit-identical to a plain
:meth:`repro.core.rrpa.RRPA.optimize` call (regression-tested).

Budgets are *cooperative*: they are checked between steps only, so a run
never aborts mid-level and every observable state is a valid step
boundary.  A budget is scoped to one :meth:`OptimizationRun.run` call —
resuming an exhausted run with a fresh (or no) budget continues from the
exact step where it stopped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from ..errors import OptimizationError
from ..plans import JoinPlan, Plan, ScanPlan, combine
from ..query import Query
from .backend import RRPABackend
from .enumeration import splits, subsets_in_size_order
from .rrpa import PRUNE_CHUNK, OptimizationResult, prune_into
from .stats import OptimizerStats

#: Default precision ladder for anytime optimization: coarse rungs finish
#: fast (guaranteed plan sets early), the last rung is exact.
DEFAULT_PRECISION_LADDER = (0.5, 0.2, 0.05, 0.0)

#: Default for :attr:`OptimizationRun.seed_cap`: seed subtrees inserted
#: per DP table set when warm-starting from a similar query's plan set.
#: Inserting into an empty entry list costs no LPs, so one seed per
#: table set gets a near-optimal incumbent in place essentially free.
#: ``seed_cap = None`` adopts the neighbor's *whole* frontier instead:
#: installation costs roughly one dominance chunk per seed (quadratic
#: in the seeds kept), but a complete frontier lets weak candidates die
#: on their first dominance chunk — measured as a clear win only when
#: the rung's enumeration is expensive enough to amortize it, which is
#: why sessions choose the breadth from the neighbor's recorded repair
#: cost (see :mod:`repro.service.session`).  Partial breadths in
#: between are the worst of both and are never chosen automatically.
DEFAULT_SEED_CAP = 1

#: ``run()`` outcomes.
RUN_COMPLETED = "completed"
RUN_EXHAUSTED = "exhausted"
RUN_RUNG_DONE = "rung_completed"
RUN_STOPPED = "stopped"

#: Progress-event kinds, in the order they can occur within one rung.
EVENT_KINDS = ("rung_started", "level", "rung_completed",
               "budget_exhausted")


@dataclass(frozen=True)
class Budget:
    """Cooperative resource budget for one :meth:`OptimizationRun.run` call.

    All limits are optional and combine conjunctively (the run stops at
    the first exhausted limit).  Checks happen at step boundaries, so a
    run may overshoot by at most one step's worth of work — in exchange,
    every interruption point is a valid DP level boundary and the
    best-so-far guarantee stays sound.

    Attributes:
        seconds: Wall-clock limit, measured from the ``run()`` call.
        lps: Limit on linear programs solved during the ``run()`` call.
        steps: Limit on DP levels advanced during the ``run()`` call.
    """

    seconds: float | None = None
    lps: int | None = None
    steps: int | None = None

    def __post_init__(self) -> None:
        if self.seconds is not None and self.seconds < 0:
            raise ValueError("budget seconds must be >= 0")
        if self.lps is not None and self.lps < 0:
            raise ValueError("budget lps must be >= 0")
        if self.steps is not None and self.steps < 0:
            raise ValueError("budget steps must be >= 0")

    @property
    def unlimited(self) -> bool:
        """``True`` when no limit is set."""
        return self.seconds is None and self.lps is None and (
            self.steps is None)

    def as_dict(self) -> dict:
        """JSON/pickle-friendly form (shipped inside pooled payloads)."""
        return {"seconds": self.seconds, "lps": self.lps,
                "steps": self.steps}

    @staticmethod
    def from_dict(doc: dict | None) -> "Budget | None":
        """Inverse of :meth:`as_dict` (``None`` passes through)."""
        if doc is None:
            return None
        return Budget(seconds=doc.get("seconds"), lps=doc.get("lps"),
                      steps=doc.get("steps"))


@dataclass(frozen=True)
class ProgressEvent:
    """One observable state change of an :class:`OptimizationRun`.

    Attributes:
        kind: One of :data:`EVENT_KINDS`.
        rung: Ladder rung index the event belongs to (0-based).
        alpha: The rung's approximation factor.
        guarantee: Multiplicative end-to-end cost bound of the *best
            completed* rung so far (``(1 + alpha) ** levels``); ``None``
            until the first rung completes.
        plan_count: Plans in the plan set the event refers to — the
            just-filled DP level for ``"level"`` events, the final Pareto
            set for ``"rung_completed"``.
        units_done / units_total: Step progress within the current rung.
        lps_solved: LPs solved since the run started (all rungs).
        seconds: Wall-clock spent optimizing since the run started.
        plan_set: Decoded plan set on session-level ``"rung_completed"``
            events (``None`` at the core layer and for other kinds).
    """

    kind: str
    rung: int
    alpha: float
    guarantee: float | None
    plan_count: int
    units_done: int
    units_total: int
    lps_solved: int
    seconds: float
    plan_set: Any = None

    def as_dict(self) -> dict:
        """JSON-friendly form (``plan_set`` is intentionally dropped)."""
        return {"kind": self.kind, "rung": self.rung, "alpha": self.alpha,
                "guarantee": self.guarantee,
                "plan_count": self.plan_count,
                "units_done": self.units_done,
                "units_total": self.units_total,
                "lps_solved": self.lps_solved, "seconds": self.seconds}

    @staticmethod
    def from_dict(doc: dict) -> ProgressEvent:
        """Rebuild an event shipped across a process boundary."""
        return ProgressEvent(
            kind=doc["kind"], rung=doc["rung"], alpha=doc["alpha"],
            guarantee=doc.get("guarantee"), plan_count=doc["plan_count"],
            units_done=doc["units_done"], units_total=doc["units_total"],
            lps_solved=doc["lps_solved"], seconds=doc["seconds"])


@dataclass
class RungOutcome:
    """One completed ladder rung: its result and guarantee accounting."""

    rung: int
    alpha: float
    guarantee: float
    result: OptimizationResult


def guarantee_bound(alpha: float, num_tables: int) -> float:
    """End-to-end multiplicative cost bound of alpha-dominance pruning.

    Every pruning comparison discards a plan only where an alternative is
    within ``(1 + alpha)`` on all metrics; discards compound along chains
    bounded by the DP depth (one level per table-set cardinality), so the
    kept set covers every possible plan within
    ``(1 + alpha) ** num_tables`` (the bound the approximation test suite
    verifies empirically).
    """
    return (1.0 + alpha) ** max(1, num_tables)


class _BudgetWindow:
    """Budget accounting scoped to one ``run()``/``iter_run()`` call."""

    def __init__(self, budget: Budget | None, run: OptimizationRun):
        self.budget = budget
        self._run = run
        self._started = time.perf_counter()
        self._lps_start = run.lps_solved
        self.steps = 0

    def exhausted(self) -> bool:
        budget = self.budget
        if budget is None:
            return False
        if budget.steps is not None and self.steps >= budget.steps:
            return True
        if budget.lps is not None and (
                self._run.lps_solved - self._lps_start) >= budget.lps:
            return True
        if budget.seconds is not None and (
                time.perf_counter() - self._started) >= budget.seconds:
            return True
        return False


class OptimizationRun:
    """A resumable RRPA run over a precision ladder.

    The run owns one backend and advances the dynamic program in bounded
    steps; between steps it can be paused (just stop calling
    :meth:`step`/:meth:`run`), resumed, and asked for its best completed
    plan set (:meth:`result`).  With a multi-rung ladder, each rung
    re-runs the DP at a tighter alpha while reusing the cost functions
    built by earlier rungs (memoized by plan structure — warm-starting
    from *similar* state, not just exact-signature reuse) and the
    backend's LP memo.

    Args:
        backend: Backend implementing the elementary RRPA operations.
        query: The query to optimize.
        precision_ladder: Strictly decreasing alphas, e.g.
            ``(0.5, 0.2, 0.0)``; ``None`` runs a single rung at the
            backend's configured approximation factor without ever
            touching it (any backend works then).  Multi-rung ladders
            require the backend to support
            :meth:`~repro.core.backend.RRPABackend
            .set_approximation_factor`.
        fold_stats: Optional external :class:`OptimizerStats` whose
            emptiness-check counters are folded into every rung result
            (the accounting :class:`repro.core.pwl_rrpa.PWLRRPA` keeps
            for its backend).
        on_event: Optional callback invoked with every
            :class:`ProgressEvent` as it is emitted.
        seed_plans: Optional plan trees from a *similar* query (same
            tables and join graph, drifted statistics) — e.g. the Pareto
            set of a :class:`repro.store.PlanSetStore` nearest-neighbor
            entry.  Their subtrees are re-costed under *this* query's
            cost model and inserted as pruning incumbents at the start
            of each DP level of the first rung, so near-optimal
            incumbents discard weak candidates on their first dominance
            chunk instead of lingering in the entry list.  Seeds only
            ever apply to rungs with ``alpha > 0`` (the "repair" rungs
            re-run the full DP), so the final exact rung stays
            bit-identical to an unseeded run; structurally invalid seeds
            (foreign tables, disconnected splits) are dropped.
    """

    def __init__(self, backend: RRPABackend, query: Query, *,
                 precision_ladder=None,
                 fold_stats: OptimizerStats | None = None,
                 on_event: Callable[[ProgressEvent], None] | None = None,
                 prune_chunk: int | None = None,
                 seed_plans=None) -> None:
        self.backend = backend
        self.query = query
        self.prune_chunk = (prune_chunk if prune_chunk is not None
                            else PRUNE_CHUNK)
        self._explicit_ladder = precision_ladder is not None
        if precision_ladder is None:
            precision_ladder = (
                getattr(backend, "approximation_factor", 0.0),)
        self.ladder = validate_ladder(precision_ladder)
        self.fold_stats = fold_stats
        self.on_event = on_event
        self.events: list[ProgressEvent] = []
        self.completed: list[RungOutcome] = []
        self.last_status: str | None = None
        self._rung = 0
        self._done = False
        self._stop_requested = False
        self._units: list[tuple] | None = None
        self._unit_index = 0
        self._dp: dict[frozenset[str], list] = {}
        self._stats = OptimizerStats()
        self._elapsed = 0.0
        self._rung_seconds = 0.0
        self.seed_plans = tuple(seed_plans or ())
        #: Seed subplans inserted as incumbents so far (introspection;
        #: pooled outcomes ship it back to the session).
        self.seeded_plans = 0
        #: Seed subtrees inserted per DP table set: an integer caps the
        #: breadth, ``None`` adopts the neighbor's whole frontier (see
        #: :data:`DEFAULT_SEED_CAP` for the tradeoff).
        self.seed_cap = DEFAULT_SEED_CAP
        self._seed_index: dict[frozenset[str], list] | None = None
        # Cross-rung warm start: cost functions are deterministic in the
        # plan structure, so later (tighter) rungs reuse the ones earlier
        # rungs built instead of re-running AccumulateCost.  Disabled for
        # single-rung runs where it could only cost memory (seeded runs
        # keep it on: seed costs must be shared across rungs).
        self._warm = len(self.ladder) > 1 or bool(self.seed_plans)
        self._cost_memo: dict[tuple, Any] = {}
        self._local_cost_memo: dict[tuple, Any] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """``True`` once every ladder rung has completed."""
        return self._done

    @property
    def rung(self) -> int:
        """Index of the rung currently being (or next to be) advanced."""
        return min(self._rung, len(self.ladder) - 1)

    @property
    def alpha(self) -> float:
        """Approximation factor of the current rung."""
        return self.ladder[self.rung]

    @property
    def lps_solved(self) -> int:
        """LPs solved by this run so far (all rungs)."""
        lp_stats = getattr(self.backend, "lp_stats", None)
        return lp_stats.solved if lp_stats is not None else 0

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds spent inside :meth:`step` so far."""
        return self._elapsed

    @property
    def has_result(self) -> bool:
        """``True`` once at least one rung has completed."""
        return bool(self.completed)

    @property
    def achieved_alpha(self) -> float | None:
        """Alpha of the best completed rung (``None`` before the first)."""
        return self.completed[-1].alpha if self.completed else None

    @property
    def guarantee(self) -> float | None:
        """End-to-end cost bound of the best completed rung, if any."""
        return self.completed[-1].guarantee if self.completed else None

    def result(self) -> OptimizationResult | None:
        """Best-so-far result: the latest completed rung's plan set.

        Returns ``None`` when no rung has completed yet (nothing with a
        valid guarantee exists).  Once :attr:`done`, this is the final
        (target-precision) result.
        """
        return self.completed[-1].result if self.completed else None

    def request_stop(self) -> None:
        """Ask a ``run()`` in progress to return at the next step
        boundary (cooperative cancellation, usable from another
        thread)."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def _prepare_rung(self) -> None:
        """Reset per-rung state and emit the ``rung_started`` event."""
        if self._explicit_ladder:
            self.backend.set_approximation_factor(self.ladder[self._rung])
        self.backend.on_run_start()
        self._stats = OptimizerStats()
        if hasattr(self.backend, "lp_stats"):
            self._stats.lp_stats = self.backend.lp_stats
        self._dp = {}
        self._units = (
            [("scan", table) for table in self.query.tables]
            + [("join", subset)
               for subset in subsets_in_size_order(self.query)])
        self._unit_index = 0
        self._rung_seconds = 0.0
        self._emit("rung_started", plan_count=0)

    def _emit(self, kind: str, plan_count: int) -> ProgressEvent:
        event = ProgressEvent(
            kind=kind, rung=self._rung,
            alpha=self.ladder[min(self._rung, len(self.ladder) - 1)],
            guarantee=self.guarantee, plan_count=plan_count,
            units_done=self._unit_index,
            units_total=len(self._units or ()),
            lps_solved=self.lps_solved, seconds=self._elapsed)
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)
        return event

    def step(self) -> bool:
        """Advance one DP level; return ``True`` when a rung completed.

        Raises:
            OptimizationError: If a table set ends with no surviving plan
                (inconsistent cost model or backend), exactly as the
                classic loop does.
        """
        if self._done:
            return False
        if self._units is None:
            self._prepare_rung()
        started = time.perf_counter()
        try:
            self._process_unit(self._units[self._unit_index])
        finally:
            seconds = time.perf_counter() - started
            self._elapsed += seconds
            self._rung_seconds += seconds
        self._unit_index += 1
        if self._unit_index < len(self._units):
            kind, key = self._units[self._unit_index - 1]
            level = self._dp[key if kind == "join"
                             else frozenset((key,))]
            self._emit("level", plan_count=len(level))
            return False
        self._complete_rung()
        return True

    def _process_unit(self, unit: tuple) -> None:
        backend, stats, dp = self.backend, self._stats, self._dp
        kind, key = unit
        if kind == "scan":
            table = key
            entries = dp.setdefault(frozenset((table,)), [])
            for operator in backend.scan_operators(table):
                plan = ScanPlan(table=table, operator=operator)
                prune_into(backend, entries, plan,
                           self._scan_cost(plan), stats,
                           chunk_size=self.prune_chunk)
            if not entries:
                raise OptimizationError(
                    f"no scan plans survived for table {table!r}")
            return
        subset = key
        entries = []
        dp[subset] = entries
        if self.seed_plans and self._rung == 0 and (
                self.ladder[0] > 0):
            candidates = self._seed_candidates(subset)
            if self.seed_cap is not None:
                candidates = candidates[:self.seed_cap]
            for plan in candidates:
                try:
                    cost = self._seed_cost(plan)
                except Exception:
                    # Foreign seed the cost model rejects: skip it — the
                    # enumeration below covers the table set regardless.
                    continue
                prune_into(backend, entries, plan, cost, stats,
                           chunk_size=self.prune_chunk)
                self.seeded_plans += 1
        for left_set, right_set in splits(self.query, subset):
            left_entries = dp.get(left_set)
            right_entries = dp.get(right_set)
            if not left_entries or not right_entries:
                continue
            for operator in backend.join_operators():
                local = self._join_local_cost(left_set, right_set,
                                              operator)
                for left in left_entries:
                    for right in right_entries:
                        plan = combine(left.plan, right.plan, operator)
                        cost = self._plan_cost(plan, local, left, right)
                        prune_into(backend, entries, plan, cost, stats,
                                   chunk_size=self.prune_chunk)
        if not entries:
            raise OptimizationError(
                f"no plans survived for table set {sorted(subset)}")

    def _seed_candidates(self, subset: frozenset[str]) -> tuple:
        if self._seed_index is None:
            self._seed_index = self._build_seed_index()
        return tuple(self._seed_index.get(subset, ()))

    def _build_seed_index(self) -> dict[frozenset[str], list]:
        """Validate seed plans and index their join subtrees by table set.

        A seed is usable only if the DP could have produced it for *this*
        query: it must span exactly the query's tables, and (for
        connected join graphs) every subtree and split side must be
        connected — otherwise the plan contains a Cartesian product the
        enumeration would never generate, and it is dropped whole.
        """
        graph = self.query.join_graph
        connected = graph.is_connected()
        counts: dict[frozenset[str], dict[tuple, list]] = {}
        for root in self.seed_plans:
            if not isinstance(root, Plan) or (
                    root.tables != self.query.table_set):
                continue
            joins = [node for node in root.nodes()
                     if isinstance(node, JoinPlan)]
            if connected and any(
                    not graph.is_connected(node.tables)
                    or not graph.is_connected(node.left.tables)
                    or not graph.is_connected(node.right.tables)
                    for node in joins):
                continue
            for node in joins:
                per_subset = counts.setdefault(node.tables, {})
                slot = per_subset.get(node.signature())
                if slot is None:
                    per_subset[node.signature()] = [node, 1]
                else:
                    slot[1] += 1
        # Rank the most frequently used subtrees per table set first (a
        # subtree shared by many seed plans is likely load-bearing); the
        # breadth cap is applied at insertion time so callers may adjust
        # :attr:`seed_cap` after construction.
        index: dict[frozenset[str], list] = {}
        for subset, per_subset in counts.items():
            ranked = sorted(per_subset.values(), key=lambda s: -s[1])
            index[subset] = [slot[0] for slot in ranked]
        return index

    def _seed_cost(self, plan: Plan):
        """Cost a seed subtree under this query's model, via the memo.

        Recursion bottoms out at scan leaves; every intermediate cost
        lands in the cross-rung memo, so later (tighter) rungs reuse the
        seed's cost functions exactly like any other plan's.
        """
        if isinstance(plan, ScanPlan):
            return self._scan_cost(plan)
        key = plan.signature()
        cost = self._cost_memo.get(key)
        if cost is None:
            left = self._seed_cost(plan.left)
            right = self._seed_cost(plan.right)
            local = self._join_local_cost(plan.left.tables,
                                          plan.right.tables,
                                          plan.operator)
            cost = self.backend.accumulate(local, (left, right))
            self._cost_memo[key] = cost
        return cost

    def _scan_cost(self, plan: ScanPlan):
        if not self._warm:
            return self.backend.scan_cost(plan)
        key = plan.signature()
        cost = self._cost_memo.get(key)
        if cost is None:
            cost = self.backend.scan_cost(plan)
            self._cost_memo[key] = cost
        return cost

    def _join_local_cost(self, left_set, right_set, operator):
        if not self._warm:
            return self.backend.join_local_cost(left_set, right_set,
                                                operator)
        key = (left_set, right_set, operator)
        cost = self._local_cost_memo.get(key)
        if cost is None:
            cost = self.backend.join_local_cost(left_set, right_set,
                                                operator)
            self._local_cost_memo[key] = cost
        return cost

    def _plan_cost(self, plan, local, left, right):
        if not self._warm:
            return self.backend.accumulate(local, (left.cost, right.cost))
        key = plan.signature()
        cost = self._cost_memo.get(key)
        if cost is None:
            cost = self.backend.accumulate(local, (left.cost, right.cost))
            self._cost_memo[key] = cost
        return cost

    def _complete_rung(self) -> None:
        query, stats = self.query, self._stats
        stats.optimization_seconds = self._rung_seconds
        if self.fold_stats is not None:
            # Fold the backend's emptiness accounting (totals across all
            # rungs so far — consistent with lp_stats, which the rungs
            # share) into this rung's counters, which are otherwise zero.
            stats.emptiness_checks += self.fold_stats.emptiness_checks
            stats.emptiness_checks_skipped += (
                self.fold_stats.emptiness_checks_skipped)
        final = self._dp[query.table_set] if query.num_tables > 1 else (
            self._dp[frozenset((query.tables[0],))])
        alpha = self.ladder[self._rung]
        result = OptimizationResult(
            query=query, entries=list(final), stats=stats,
            dp_table=self._dp, achieved_alpha=alpha,
            guarantee=guarantee_bound(alpha, query.num_tables))
        self.completed.append(RungOutcome(
            rung=self._rung, alpha=alpha, guarantee=result.guarantee,
            result=result))
        self._emit("rung_completed", plan_count=len(result.entries))
        self._rung += 1
        self._units = None
        if self._rung >= len(self.ladder):
            self._done = True

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, budget: Budget | None = None, *,
            stop_after_rung: bool = False) -> str:
        """Advance until done, budget exhaustion, or (optionally) the
        next rung boundary.

        Args:
            budget: Limits scoped to *this call* (resuming with a fresh
                budget continues where the previous call stopped).
            stop_after_rung: Return as soon as one rung completes.

        Returns:
            One of :data:`RUN_COMPLETED`, :data:`RUN_EXHAUSTED`,
            :data:`RUN_RUNG_DONE`, :data:`RUN_STOPPED`.
        """
        window = _BudgetWindow(budget, self)
        status = RUN_COMPLETED
        while not self._done:
            if self._stop_requested:
                self._stop_requested = False
                status = RUN_STOPPED
                break
            if window.exhausted():
                self._emit("budget_exhausted", plan_count=len(
                    self.completed[-1].result.entries)
                    if self.completed else 0)
                status = RUN_EXHAUSTED
                break
            rung_done = self.step()
            window.steps += 1
            if rung_done and stop_after_rung and not self._done:
                status = RUN_RUNG_DONE
                break
        self.last_status = status
        return status

    def iter_run(self, budget: Budget | None = None):
        """Like :meth:`run`, but yield events live as they are emitted.

        One budget window spans the whole iteration (unlike repeated
        ``run()`` calls, which each get a fresh window).  The final
        status is available as :attr:`last_status` afterwards.
        """
        window = _BudgetWindow(budget, self)
        self.last_status = RUN_COMPLETED
        while not self._done:
            if self._stop_requested:
                self._stop_requested = False
                self.last_status = RUN_STOPPED
                return
            if window.exhausted():
                event = self._emit("budget_exhausted", plan_count=len(
                    self.completed[-1].result.entries)
                    if self.completed else 0)
                self.last_status = RUN_EXHAUSTED
                yield event
                return
            mark = len(self.events)
            self.step()
            window.steps += 1
            yield from self.events[mark:]


def validate_ladder(precision_ladder) -> tuple[float, ...]:
    """Validate and normalize a precision ladder.

    Raises:
        ValueError: For empty ladders, negative alphas, or alphas not in
            strictly decreasing order.
    """
    ladder = tuple(float(alpha) for alpha in precision_ladder)
    if not ladder:
        raise ValueError("precision ladder must not be empty")
    for alpha in ladder:
        if alpha < 0:
            raise ValueError("precision ladder alphas must be >= 0")
    for coarse, fine in zip(ladder, ladder[1:]):
        if fine >= coarse:
            raise ValueError(
                "precision ladder must be strictly decreasing "
                f"(got {ladder})")
    return ladder


def ladder_to(target: float,
              ladder=DEFAULT_PRECISION_LADDER) -> tuple[float, ...]:
    """The default precision ladder truncated to end at ``target``."""
    if target < 0:
        raise ValueError("target precision must be >= 0")
    return tuple(a for a in ladder if a > target) + (float(target),)


#: Default jump-in alpha for seeded runs: leading ladder rungs coarser
#: than this are dropped when a cross-query seed is available (see
#: :func:`trim_ladder_for_seed`).
SEED_JUMP_ALPHA = 0.05


def trim_ladder_for_seed(ladder,
                         jump_alpha: float = SEED_JUMP_ALPHA
                         ) -> tuple[float, ...]:
    """Drop leading rungs coarser than ``jump_alpha`` from a ladder.

    A cold anytime run descends coarse rungs first so *some* guarantee
    exists early.  A run seeded from a similar query's Pareto set jumps
    straight to the tightest affordable rung instead: the seed's
    subtrees prime the DP incumbents there, and the coarse rungs'
    protection is redundant next to the near-miss state already in hand.
    The first *formal* guarantee then arrives at the target alpha with
    far fewer LPs than descending the whole ladder.

    The final rung is always kept, so the run's target precision never
    changes; with ``jump_alpha`` coarser than the whole ladder this is a
    no-op.
    """
    kept = tuple(a for a in ladder if a <= jump_alpha + 1e-12)
    return kept if kept else (ladder[-1],)


__all__ = [
    "Budget",
    "DEFAULT_PRECISION_LADDER",
    "DEFAULT_SEED_CAP",
    "EVENT_KINDS",
    "OptimizationRun",
    "ProgressEvent",
    "RUN_COMPLETED",
    "RUN_EXHAUSTED",
    "RUN_RUNG_DONE",
    "RUN_STOPPED",
    "RungOutcome",
    "SEED_JUMP_ALPHA",
    "guarantee_bound",
    "ladder_to",
    "trim_ladder_for_seed",
    "validate_ladder",
]
