"""Per-run optimizer statistics.

Figure 12 of the paper reports three quantities per optimization run:
optimization time, the number of *generated* plans ("including partial
plans and plans that were pruned during optimization"), and the number of
solved linear programs.  :class:`OptimizerStats` collects all three plus
finer-grained pruning counters used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lp import LPStats


@dataclass
class OptimizerStats:
    """Counters for one optimization run.

    Attributes:
        plans_created: Tentative plans generated (Figure 12's "#Created
            plans": every plan handed to the pruning procedure).
        plans_inserted: Plans that survived pruning and were inserted.
        plans_discarded_new: New plans discarded because their relevance
            region became empty during pruning.
        plans_displaced_old: Previously inserted plans discarded after a
            new plan emptied their relevance region.
        pruning_comparisons: Pairwise plan cost comparisons performed.
        emptiness_checks: Relevance-region emptiness checks executed
            (excludes checks skipped thanks to relevance points).
        emptiness_checks_skipped: Checks avoided by the relevance-point
            refinement.
        optimization_seconds: Wall-clock optimization time.
        lp_stats: LP counters (Figure 12's "#Linear programs" is
            ``lp_stats.solved``).
    """

    plans_created: int = 0
    plans_inserted: int = 0
    plans_discarded_new: int = 0
    plans_displaced_old: int = 0
    pruning_comparisons: int = 0
    emptiness_checks: int = 0
    emptiness_checks_skipped: int = 0
    optimization_seconds: float = 0.0
    lp_stats: LPStats = field(default_factory=LPStats)

    @property
    def lps_solved(self) -> int:
        """Number of linear programs solved during the run."""
        return self.lp_stats.solved

    @property
    def lp_seconds(self) -> float:
        """Wall-clock time spent inside LP backends during the run."""
        return self.lp_stats.seconds

    @property
    def emptiness_lp_seconds(self) -> float:
        """LP wall time attributable to region emptiness maintenance.

        Sums the ``"emptiness"`` (feasibility) and ``"chebyshev"``
        (interior-fullness) purposes — the two LP families the
        region-difference emptiness checks consist of, and the cost
        center the batched geometry kernels target.
        """
        by_purpose = self.lp_stats.seconds_by_purpose()
        return (by_purpose.get("emptiness", 0.0)
                + by_purpose.get("chebyshev", 0.0))

    @property
    def batch_lp_rounds(self) -> int:
        """Lockstep pivot rounds executed by the stacked simplex kernel."""
        return self.lp_stats.batch_rounds

    @property
    def batch_lp_solves(self) -> int:
        """LPs answered by the stacked kernel (subset of ``lps_solved``)."""
        return self.lp_stats.batch_solves

    @property
    def batch_lp_fallbacks(self) -> int:
        """Stacked-kernel stragglers re-solved on the scalar path."""
        return self.lp_stats.batch_fallbacks

    @property
    def batch_lp_occupancy(self) -> float:
        """Mean fraction of each stacked group still pivoting per round."""
        return self.lp_stats.batch_occupancy()

    @property
    def lp_queue_enqueued(self) -> int:
        """LPs routed through the deferred futures queue."""
        return self.lp_stats.queue_enqueued

    @property
    def lp_queue_flush_size(self) -> int:
        """Queue flushes triggered by a bucket reaching the flush size."""
        return self.lp_stats.queue_flush_size

    @property
    def lp_queue_flush_demand(self) -> int:
        """Queue flushes triggered by a demanded ``result()``."""
        return self.lp_stats.queue_flush_demand

    @property
    def lp_queue_flush_explicit(self) -> int:
        """Queue flushes requested via an explicit ``flush()`` call."""
        return self.lp_stats.queue_flush_explicit

    @property
    def lp_median_stacked_group_size(self) -> float:
        """LP-weighted median size of the stacked kernel's groups."""
        return self.lp_stats.median_stacked_group_size()

    def summary(self) -> dict[str, float]:
        """Return the headline numbers as a plain dict (for reporting)."""
        return {
            "plans_created": self.plans_created,
            "plans_inserted": self.plans_inserted,
            "plans_discarded_new": self.plans_discarded_new,
            "plans_displaced_old": self.plans_displaced_old,
            "pruning_comparisons": self.pruning_comparisons,
            "emptiness_checks": self.emptiness_checks,
            "emptiness_checks_skipped": self.emptiness_checks_skipped,
            "lps_solved": self.lps_solved,
            "lp_cache_hits": self.lp_stats.cache_hits,
            "lp_seconds": self.lp_seconds,
            "emptiness_lp_seconds": self.emptiness_lp_seconds,
            "batch_lp_rounds": self.batch_lp_rounds,
            "batch_lp_solves": self.batch_lp_solves,
            "batch_lp_fallbacks": self.batch_lp_fallbacks,
            "batch_lp_occupancy": self.batch_lp_occupancy,
            "lp_queue_enqueued": self.lp_queue_enqueued,
            "lp_queue_flush_size": self.lp_queue_flush_size,
            "lp_queue_flush_demand": self.lp_queue_flush_demand,
            "lp_queue_flush_explicit": self.lp_queue_flush_explicit,
            "lp_median_stacked_group_size": self.lp_median_stacked_group_size,
            "optimization_seconds": self.optimization_seconds,
        }
