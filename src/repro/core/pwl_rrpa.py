"""PWL-RRPA: the paper's algorithm for piecewise-linear MPQ (Section 6).

:class:`PWLRRPA` wires the generic RRPA loop to a backend (by default the
PWL backend) and a cost model, producing Pareto plan sets with relevance
mappings for PWL-MPQ problem instances.  It is the optimizer evaluated in
Section 7 / Figure 12.

The module-level :func:`optimize_cloud_query` predates the scenario
registry (:mod:`repro.service.registry`) and is kept as a deprecated shim;
new code should go through :class:`repro.api.OptimizerSession` or
:func:`repro.api.optimize_query`.
"""

from __future__ import annotations

import warnings

from ..query import Query
from .pwl_backend import PWLBackend, PWLRRPAOptions
from .rrpa import OptimizationResult
from .run import OptimizationRun
from .stats import OptimizerStats


class PWLRRPA:
    """End-to-end PWL-RRPA optimizer.

    Args:
        cost_model_factory: Callable mapping a query to a PWL cost model
            (e.g. ``lambda q: CloudCostModel(q, resolution=2)``); pass a
            ready cost model via :meth:`optimize_with_model` instead if it
            is already built.
        options: Backend tunables (emptiness strategy, refinements).
        backend_factory: Optional backend constructor with the signature
            ``(cost_model, *, options, lp_stats, stats) -> RRPABackend``;
            defaults to :class:`PWLBackend`.  This is the hook the
            scenario registry uses to plug alternative backends into the
            same optimizer loop.
    """

    def __init__(self, cost_model_factory=None,
                 options: PWLRRPAOptions | None = None,
                 backend_factory=None) -> None:
        self.cost_model_factory = cost_model_factory
        self.options = options or PWLRRPAOptions()
        self.backend_factory = backend_factory

    def optimize(self, query: Query) -> OptimizationResult:
        """Optimize a query, building the cost model via the factory."""
        return self.optimize_with_model(query, self._build_model(query))

    def optimize_with_model(self, query: Query,
                            cost_model) -> OptimizationResult:
        """Optimize a query with an explicit cost model instance.

        A thin run-to-completion wrapper over :meth:`start_run_with_model`
        — one rung at ``options.approximation_factor`` (exact by
        default), bit-identical to the pre-anytime engine.
        """
        run = self.start_run_with_model(query, cost_model)
        run.run()
        return run.result()

    def _build_model(self, query: Query):
        if self.cost_model_factory is None:
            raise ValueError("no cost model factory configured")
        return self.cost_model_factory(query)

    def start_run(self, query: Query, *, precision_ladder=None,
                  on_event=None, seed_plans=None) -> OptimizationRun:
        """Create a resumable run, building the cost model via the
        factory (see :meth:`start_run_with_model`)."""
        return self.start_run_with_model(
            query, self._build_model(query),
            precision_ladder=precision_ladder, on_event=on_event,
            seed_plans=seed_plans)

    def start_run_with_model(self, query: Query, cost_model, *,
                             precision_ladder=None,
                             on_event=None,
                             seed_plans=None) -> OptimizationRun:
        """Create a resumable :class:`~repro.core.run.OptimizationRun`.

        The run can be advanced stepwise, bounded by
        :class:`~repro.core.run.Budget` objects, and laddered through
        successively tighter precisions (``precision_ladder``); see
        :mod:`repro.core.run`.  ``precision_ladder=None`` runs a single
        rung at ``options.approximation_factor``.
        """
        stats = OptimizerStats()
        factory = self.backend_factory or PWLBackend
        backend = factory(cost_model, options=self.options,
                          lp_stats=stats.lp_stats, stats=stats)
        return OptimizationRun(backend, query,
                               precision_ladder=precision_ladder,
                               fold_stats=stats, on_event=on_event,
                               seed_plans=seed_plans)


def optimize_cloud_query(query: Query, resolution: int = 2,
                         options: PWLRRPAOptions | None = None
                         ) -> OptimizationResult:
    """Optimize a query under the Cloud cost model (Scenario 1).

    .. deprecated:: 1.1
        Use :class:`repro.api.OptimizerSession` (scenario ``"cloud"``) or
        :func:`repro.api.optimize_query` instead; this shim delegates to
        the ``"cloud"`` entry of the scenario registry and returns
        bit-identical Pareto plan sets.
    """
    warnings.warn(
        "optimize_cloud_query is deprecated; use repro.api.OptimizerSession"
        " or repro.api.optimize_query(query, scenario='cloud')",
        DeprecationWarning, stacklevel=2)
    from ..service.registry import get_scenario
    return get_scenario("cloud").optimize(query, resolution=resolution,
                                          options=options)
