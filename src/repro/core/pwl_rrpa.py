"""PWL-RRPA: the paper's algorithm for piecewise-linear MPQ (Section 6).

:class:`PWLRRPA` wires the generic RRPA loop to the PWL backend and a cost
model, producing Pareto plan sets with relevance mappings for PWL-MPQ
problem instances.  It is the optimizer evaluated in Section 7 / Figure 12.
"""

from __future__ import annotations

from ..query import Query
from .pwl_backend import PWLBackend, PWLRRPAOptions
from .rrpa import RRPA, OptimizationResult
from .stats import OptimizerStats


class PWLRRPA:
    """End-to-end PWL-RRPA optimizer.

    Args:
        cost_model_factory: Callable mapping a query to a PWL cost model
            (e.g. ``lambda q: CloudCostModel(q, resolution=2)``); pass a
            ready cost model via :meth:`optimize_with_model` instead if it
            is already built.
        options: Backend tunables (emptiness strategy, refinements).
    """

    def __init__(self, cost_model_factory=None,
                 options: PWLRRPAOptions | None = None) -> None:
        self.cost_model_factory = cost_model_factory
        self.options = options or PWLRRPAOptions()

    def optimize(self, query: Query) -> OptimizationResult:
        """Optimize a query, building the cost model via the factory."""
        if self.cost_model_factory is None:
            raise ValueError("no cost model factory configured")
        return self.optimize_with_model(query,
                                        self.cost_model_factory(query))

    def optimize_with_model(self, query: Query,
                            cost_model) -> OptimizationResult:
        """Optimize a query with an explicit cost model instance."""
        stats = OptimizerStats()
        backend = PWLBackend(cost_model, options=self.options,
                             lp_stats=stats.lp_stats, stats=stats)
        result = RRPA(backend).optimize(query)
        # RRPA created fresh stats internally; fold our emptiness-check
        # accounting into the run's stats object.
        result.stats.emptiness_checks += stats.emptiness_checks
        result.stats.emptiness_checks_skipped += (
            stats.emptiness_checks_skipped)
        return result


def optimize_cloud_query(query: Query, resolution: int = 2,
                         options: PWLRRPAOptions | None = None
                         ) -> OptimizationResult:
    """Optimize a query under the Cloud cost model (Scenario 1).

    Convenience entry point used by examples and benchmarks.
    """
    from ..cloud import CloudCostModel
    optimizer = PWLRRPA(
        cost_model_factory=lambda q: CloudCostModel(q,
                                                    resolution=resolution),
        options=options)
    return optimizer.optimize(query)
