"""Run-time plan selection from a precomputed Pareto plan set.

Figure 2 of the paper shows the MPQ workflow: optimization happens at
preprocessing time; at run time, concrete parameter values and user
preferences select one plan out of the Pareto plan set — "no query
optimization is required at run time".  This module implements that
selection step for the common preference shapes:

* **weighted sum** — minimize ``sum_m weight_m * cost_m`` (the Cloud user
  moving a time-vs-fees slider);
* **bounded metric** — minimize one metric subject to upper bounds on
  others (e.g. "fastest plan under 2 USD", or Scenario 2's "most precise
  answer within a time budget");
* **full frontier** — return all Pareto-optimal options at the parameter
  point for interactive visualization (Scenario 1's trade-off plot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

import numpy as np

from ..errors import OptimizationError
from ..plans import Plan
from ..util import BoundedLRU
from .rrpa import OptimizationResult


@dataclass(frozen=True)
class SelectedPlan:
    """A run-time plan choice.

    Attributes:
        plan: The chosen plan.
        cost: Its cost vector at the concrete parameter values.
        score: The preference score that made it win (lower is better).
    """

    plan: Plan
    cost: dict[str, float]
    score: float


@dataclass
class PlanSelector:
    """Selects plans from an :class:`OptimizationResult` at run time.

    Args:
        result: A completed optimization run.
        cache_size: Upper bound on memoized parameter points (LRU
            eviction), so a long-running service selecting at
            ever-changing run-time parameters cannot grow the memo
            without limit.  ``0`` disables memoization.
    """

    result: OptimizationResult
    cache_size: int = 256
    _cache: BoundedLRU = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._cache = BoundedLRU(self.cache_size)

    def _candidates(self, x) -> list[tuple[Plan, dict[str, float]]]:
        key = tuple(np.asarray(x, dtype=float).tolist())
        cached = self._cache.get(key)
        if cached is None:
            cached = [(entry.plan, entry.cost.evaluate(x))
                      for entry in self.result.plans_for(x)]
            self._cache.put(key, cached)
        return cached

    def frontier(self, x) -> list[tuple[Plan, dict[str, float]]]:
        """All Pareto-optimal ``(plan, cost)`` pairs at parameter ``x``."""
        return self.result.frontier_at(x)

    def by_weighted_sum(self, x, weights: Mapping[str, float]
                        ) -> SelectedPlan:
        """Pick the plan minimizing a weighted sum of metric values.

        Args:
            x: Concrete parameter values observed at run time.
            weights: Non-negative weight per metric (missing metrics get
                weight zero).

        Raises:
            OptimizationError: If the plan set is empty (cannot happen for
                results produced by RRPA).
        """
        if any(w < 0 for w in weights.values()):
            raise ValueError("preference weights must be non-negative")
        best: SelectedPlan | None = None
        for plan, cost in self._candidates(x):
            score = sum(weights.get(m, 0.0) * v for m, v in cost.items())
            if best is None or score < best.score:
                best = SelectedPlan(plan=plan, cost=cost, score=score)
        if best is None:
            raise OptimizationError("empty Pareto plan set")
        return best

    def by_bounded_metric(self, x, minimize: str,
                          bounds: Mapping[str, float]) -> SelectedPlan:
        """Pick the cheapest plan on one metric subject to bounds on others.

        Args:
            x: Concrete parameter values.
            minimize: Metric to minimize.
            bounds: Upper bounds per metric (plans exceeding any bound are
                excluded).

        Raises:
            OptimizationError: If no plan satisfies the bounds; callers
                should relax the bounds (the exception message reports the
                best achievable value per bounded metric).
        """
        best: SelectedPlan | None = None
        best_achievable: dict[str, float] = {m: np.inf for m in bounds}
        for plan, cost in self._candidates(x):
            violated = any(cost.get(m, np.inf) > b + 1e-12
                           for m, b in bounds.items())
            for m in bounds:
                best_achievable[m] = min(best_achievable[m],
                                         cost.get(m, np.inf))
            if violated:
                continue
            score = cost[minimize]
            if best is None or score < best.score:
                best = SelectedPlan(plan=plan, cost=cost, score=score)
        if best is None:
            detail = ", ".join(
                f"{m}: best achievable {best_achievable[m]:.4g} vs bound "
                f"{b:.4g}" for m, b in bounds.items())
            raise OptimizationError(
                f"no plan satisfies bounds {dict(bounds)}; {detail}")
        return best
