"""repro — Multi-Objective Parametric Query Optimization (MPQ).

A complete reproduction of Trummer & Koch, "Multi-Objective Parametric
Query Optimization" (VLDB 2014): the generic Relevance Region Pruning
Algorithm (RRPA), its piecewise-linear specialization PWL-RRPA, the Cloud
cost-model scenario the paper evaluates, classical/multi-objective/
parametric baselines, and the full experimental harness for Figure 12.

Quickstart::

    from repro import QueryGenerator, optimize_cloud_query, PlanSelector

    query = QueryGenerator(seed=1).generate(num_tables=4, shape="chain",
                                            num_params=1)
    result = optimize_cloud_query(query)
    selector = PlanSelector(result)
    best = selector.by_weighted_sum(x=[0.4], weights={"time": 1.0,
                                                      "fees": 0.5})
    print(best.plan, best.cost)
"""

from .catalog import Catalog, Column, Index, Table
from .cloud import CloudCostModel, ClusterSpec, PricingModel
from .core import (GridBackend, OptimizationResult, OptimizerStats,
                   PWLBackend, PWLRRPA, PWLRRPAOptions, PlanEntry,
                   PlanSelector, RRPA, RRPABackend, SelectedPlan, make_grid,
                   optimize_cloud_query, optimize_with)
from .cost import (APPROX_METRICS, CLOUD_METRICS, CostMetric, LinearPiece,
                   MultiObjectivePWL, ParamPolynomial,
                   PiecewiseLinearFunction, SharedPartition)
from .errors import ReproError
from .geometry import ConvexPolytope, LinearConstraint, RelevanceRegion
from .lp import LinearProgramSolver, LPStats
from .plans import (JoinOperator, JoinPlan, Plan, ScanOperator, ScanPlan,
                    combine, one_line, render_plan)
from .query import (JoinGraph, JoinPredicate, ParametricPredicate, Query,
                    QueryGenerator)
from .service import (BatchItem, BatchOptimizer, BatchOptions,
                      WarmStartCache, query_signature)

__version__ = "1.0.0"

__all__ = [
    "APPROX_METRICS",
    "BatchItem",
    "BatchOptimizer",
    "BatchOptions",
    "CLOUD_METRICS",
    "Catalog",
    "CloudCostModel",
    "ClusterSpec",
    "Column",
    "ConvexPolytope",
    "CostMetric",
    "GridBackend",
    "Index",
    "JoinGraph",
    "JoinOperator",
    "JoinPlan",
    "JoinPredicate",
    "LPStats",
    "LinearConstraint",
    "LinearPiece",
    "LinearProgramSolver",
    "MultiObjectivePWL",
    "OptimizationResult",
    "OptimizerStats",
    "PWLBackend",
    "PWLRRPA",
    "PWLRRPAOptions",
    "ParamPolynomial",
    "ParametricPredicate",
    "PiecewiseLinearFunction",
    "Plan",
    "PlanEntry",
    "PlanSelector",
    "PricingModel",
    "Query",
    "QueryGenerator",
    "RRPA",
    "RRPABackend",
    "RelevanceRegion",
    "ReproError",
    "ScanOperator",
    "ScanPlan",
    "SelectedPlan",
    "SharedPartition",
    "Table",
    "WarmStartCache",
    "combine",
    "make_grid",
    "one_line",
    "optimize_cloud_query",
    "optimize_with",
    "query_signature",
    "render_plan",
]
