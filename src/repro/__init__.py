"""repro — Multi-Objective Parametric Query Optimization (MPQ).

A complete reproduction of Trummer & Koch, "Multi-Objective Parametric
Query Optimization" (VLDB 2014): the generic Relevance Region Pruning
Algorithm (RRPA), its piecewise-linear specialization PWL-RRPA, the Cloud
cost-model scenario the paper evaluates, classical/multi-objective/
parametric baselines, and the full experimental harness for Figure 12 —
wrapped in a session-level serving API (:mod:`repro.api`).

Quickstart::

    from repro import QueryGenerator
    from repro.api import OptimizerSession

    queries = [QueryGenerator(seed=s).generate(num_tables=4,
                                               shape="chain", num_params=1)
               for s in range(4)]
    with OptimizerSession("cloud", workers=0) as session:
        for item in session.as_completed(queries):
            plan, cost = item.plan_set.select([0.4], {"time": 1.0,
                                                      "fees": 0.5})
            print(item.index, item.status, plan, cost)
"""

from .api import optimize_query
from .catalog import Catalog, Column, Index, Table
from .cloud import CloudCostModel, ClusterSpec, PricingModel
from .core import (GridBackend, OptimizationResult, OptimizerStats,
                   PWLBackend, PWLRRPA, PWLRRPAOptions, PlanEntry,
                   PlanSelector, RRPA, RRPABackend, SelectedPlan, make_grid,
                   optimize_cloud_query, optimize_with)
from .cost import (APPROX_METRICS, CLOUD_METRICS, CostMetric, LinearPiece,
                   MultiObjectivePWL, ParamPolynomial,
                   PiecewiseLinearFunction, SharedPartition)
from .errors import ReproError
from .geometry import ConvexPolytope, LinearConstraint, RelevanceRegion
from .lp import LinearProgramSolver, LPStats
from .plans import (JoinOperator, JoinPlan, Plan, ScanOperator, ScanPlan,
                    combine, one_line, render_plan)
from .query import (JoinGraph, JoinPredicate, ParametricPredicate, Query,
                    QueryGenerator)
from .service import (BatchItem, BatchOptimizer, BatchOptions,
                      OptimizerSession, Scenario, ScenarioRegistry,
                      WarmStartCache, available_scenarios, get_scenario,
                      query_signature, register_scenario)

__version__ = "1.1.0"

__all__ = [
    "APPROX_METRICS",
    "BatchItem",
    "BatchOptimizer",
    "BatchOptions",
    "CLOUD_METRICS",
    "Catalog",
    "CloudCostModel",
    "ClusterSpec",
    "Column",
    "ConvexPolytope",
    "CostMetric",
    "GridBackend",
    "Index",
    "JoinGraph",
    "JoinOperator",
    "JoinPlan",
    "JoinPredicate",
    "LPStats",
    "LinearConstraint",
    "LinearPiece",
    "LinearProgramSolver",
    "MultiObjectivePWL",
    "OptimizationResult",
    "OptimizerSession",
    "OptimizerStats",
    "PWLBackend",
    "PWLRRPA",
    "PWLRRPAOptions",
    "ParamPolynomial",
    "ParametricPredicate",
    "PiecewiseLinearFunction",
    "Plan",
    "PlanEntry",
    "PlanSelector",
    "PricingModel",
    "Query",
    "QueryGenerator",
    "RRPA",
    "RRPABackend",
    "RelevanceRegion",
    "ReproError",
    "Scenario",
    "ScenarioRegistry",
    "ScanOperator",
    "ScanPlan",
    "SelectedPlan",
    "SharedPartition",
    "Table",
    "WarmStartCache",
    "available_scenarios",
    "combine",
    "get_scenario",
    "make_grid",
    "one_line",
    "optimize_cloud_query",
    "optimize_query",
    "optimize_with",
    "query_signature",
    "register_scenario",
    "render_plan",
]
