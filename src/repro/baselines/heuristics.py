"""Heuristic join-order baselines: greedy construction for MPQ.

The paper's algorithms are exhaustive ("Our algorithm is exhaustive and
guarantees to generate all relevant query plans").  Randomized/heuristic
optimizers, discussed in Section 3 (Ioannidis et al.), "can never offer
formal worst-case guarantees on generating complete plan sets".  This
module provides a greedy heuristic baseline so that benchmarks can
*quantify* that gap: how much of the exhaustive Pareto plan set a cheap
heuristic recovers.

The heuristic builds left-deep plans by repeatedly joining in the table
that minimizes a weighted cost at a reference parameter point, repeated
over several weight profiles and reference points to obtain a plan
portfolio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError
from ..plans import Plan, ScanPlan, combine
from ..query import Query


@dataclass
class GreedyResult:
    """Result of the greedy portfolio heuristic.

    Attributes:
        plans: De-duplicated plans found across all profiles.
        plans_created: Total plans constructed (including duplicates).
        optimization_seconds: Wall-clock time.
    """

    plans: list[Plan]
    plans_created: int
    optimization_seconds: float


class GreedyJoinOrderer:
    """Greedy left-deep MPQ heuristic over weight/point profiles.

    Args:
        cost_model: Polynomial-capable cost model (e.g.
            :class:`repro.cloud.CloudCostModel`).
        reference_points: Parameter vectors to optimize at.
        weight_profiles: Metric weightings to optimize for.
    """

    def __init__(self, cost_model, reference_points=None,
                 weight_profiles=None) -> None:
        self.cost_model = cost_model
        num_params = max(1, cost_model.query.num_params)
        if reference_points is None:
            reference_points = [np.full(num_params, v)
                                for v in (0.1, 0.5, 0.9)]
        if weight_profiles is None:
            names = [m.name for m in cost_model.metrics]
            weight_profiles = [{name: 1.0} for name in names]
            weight_profiles.append({name: 1.0 for name in names})
        self.reference_points = [np.asarray(p, dtype=float)
                                 for p in reference_points]
        self.weight_profiles = [dict(w) for w in weight_profiles]

    def _plan_score(self, plan: Plan, x, weights) -> float:
        polys = self.cost_model.plan_cost_polynomials(plan)
        return sum(weights.get(m, 0.0) * poly.evaluate(x)
                   for m, poly in polys.items())

    def _best_scan(self, table: str, x, weights) -> Plan:
        candidates = [ScanPlan(table=table, operator=op)
                      for op in self.cost_model.scan_operators(table)]
        return min(candidates,
                   key=lambda p: self._plan_score(p, x, weights))

    def _greedy_plan(self, query: Query, x, weights) -> tuple[Plan, int]:
        remaining = list(query.tables)
        created = 0
        # Start from the cheapest single-table scan.
        current = min((self._best_scan(t, x, weights) for t in remaining),
                      key=lambda p: self._plan_score(p, x, weights))
        start_table = next(iter(current.tables))
        remaining.remove(start_table)
        created += 1
        while remaining:
            graph = query.join_graph
            # Prefer tables connected to the current prefix.
            connected = [t for t in remaining
                         if graph.split_is_connected(current.tables,
                                                     frozenset((t,)))]
            pool = connected or remaining
            best = None
            for table in pool:
                scan = self._best_scan(table, x, weights)
                for op in self.cost_model.join_operators():
                    candidate = combine(current, scan, op)
                    created += 1
                    score = self._plan_score(candidate, x, weights)
                    if best is None or score < best[0]:
                        best = (score, candidate, table)
            __, current, chosen = best
            remaining.remove(chosen)
        return current, created

    def optimize(self, query: Query) -> GreedyResult:
        """Build the greedy plan portfolio.

        Raises:
            OptimizationError: For empty queries.
        """
        if not query.tables:
            raise OptimizationError("empty query")
        started = time.perf_counter()
        plans: list[Plan] = []
        signatures = set()
        created = 0
        for x in self.reference_points:
            for weights in self.weight_profiles:
                plan, built = self._greedy_plan(query, x, weights)
                created += built
                sig = plan.signature()
                if sig not in signatures:
                    signatures.add(sig)
                    plans.append(plan)
        return GreedyResult(plans=plans, plans_created=created,
                            optimization_seconds=(time.perf_counter()
                                                  - started))


def heuristic_coverage(greedy: GreedyResult, exhaustive_entries,
                       cost_model, sample_points,
                       tolerance: float = 0.01) -> float:
    """Fraction of sampled (point, metric) optima the heuristic matches.

    For each sample point and each single metric, checks whether the
    greedy portfolio contains a plan within ``(1 + tolerance)`` of the
    exhaustive optimum.  Returns the match fraction in ``[0, 1]``.
    Zero is a legitimate outcome: greedy left-deep construction can miss
    every per-metric optimum on bushy-friendly queries — exactly the gap
    that motivates exhaustive algorithms (Section 3 of the paper).
    """
    names = [m.name for m in cost_model.metrics]
    checks = 0
    hits = 0
    for x in sample_points:
        for name in names:
            exhaustive_best = min(
                e.cost.evaluate(x)[name] for e in exhaustive_entries)
            greedy_best = min(
                cost_model.plan_cost(p).evaluate(x)[name]
                for p in greedy.plans)
            checks += 1
            if greedy_best <= exhaustive_best * (1.0 + tolerance) + 1e-12:
                hits += 1
    return hits / checks if checks else 1.0
