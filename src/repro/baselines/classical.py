"""Classical query optimization (CQ): Selinger-style dynamic programming.

The paper positions MPQ against three prior problem variants (Section 1);
CQ is the base case — one cost metric, no parameters, each plan has one
scalar cost.  This baseline evaluates the Cloud cost model's polynomials at
a *fixed* parameter vector, reduces the metrics to a single scalar via a
weight vector, and keeps only the single cheapest plan per table set.

It shares the plan/split enumeration with RRPA, so differences in plan
counts and results isolate exactly the pruning criterion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError
from ..plans import Plan, ScanPlan, combine
from ..query import Query
from ..core.enumeration import splits, subsets_in_size_order


@dataclass
class ClassicalResult:
    """Result of a classical (single-plan) optimization.

    Attributes:
        plan: The cheapest plan found.
        cost: Its scalar cost.
        metric_costs: Per-metric cost breakdown at the fixed parameters.
        plans_created: Plans generated during the DP.
        optimization_seconds: Wall-clock time.
    """

    plan: Plan
    cost: float
    metric_costs: dict[str, float]
    plans_created: int
    optimization_seconds: float


class ClassicalOptimizer:
    """Single-objective, non-parametric DP optimizer (Selinger 1979 style).

    Args:
        cost_model: Cost model exposing the polynomial interface
            (``scan_cost_polynomials`` / ``join_cost_polynomials`` /
            ``scan_operators`` / ``join_operators``).
        parameter_values: The fixed parameter vector the polynomials are
            evaluated at.
        weights: Per-metric weights folding the cost vector into a scalar;
            defaults to weight 1.0 on the first metric only (pure
            execution-time optimization).
    """

    def __init__(self, cost_model, parameter_values,
                 weights: dict[str, float] | None = None) -> None:
        self.cost_model = cost_model
        self.x = np.asarray(parameter_values, dtype=float)
        if weights is None:
            weights = {cost_model.metrics[0].name: 1.0}
        self.weights = dict(weights)

    def _scalar(self, polys) -> tuple[float, dict[str, float]]:
        metric_costs = {m: poly.evaluate(self.x)
                        for m, poly in polys.items()}
        scalar = sum(self.weights.get(m, 0.0) * v
                     for m, v in metric_costs.items())
        return scalar, metric_costs

    def optimize(self, query: Query) -> ClassicalResult:
        """Find the cheapest plan for the fixed parameter values.

        Raises:
            OptimizationError: If no plan can be built for the query.
        """
        started = time.perf_counter()
        created = 0
        # best[q] = (scalar cost, metric costs, plan)
        best: dict[frozenset[str], tuple[float, dict[str, float], Plan]] = {}

        for table in query.tables:
            key = frozenset((table,))
            for operator in self.cost_model.scan_operators(table):
                plan = ScanPlan(table=table, operator=operator)
                created += 1
                scalar, metric_costs = self._scalar(
                    self.cost_model.scan_cost_polynomials(plan))
                incumbent = best.get(key)
                if incumbent is None or scalar < incumbent[0]:
                    best[key] = (scalar, metric_costs, plan)

        for subset in subsets_in_size_order(query):
            for left_set, right_set in splits(query, subset):
                left = best.get(left_set)
                right = best.get(right_set)
                if left is None or right is None:
                    continue
                for operator in self.cost_model.join_operators():
                    local_scalar, local_metrics = self._scalar(
                        self.cost_model.join_cost_polynomials(
                            left_set, right_set, operator))
                    created += 1
                    scalar = left[0] + right[0] + local_scalar
                    incumbent = best.get(subset)
                    if incumbent is None or scalar < incumbent[0]:
                        metric_costs = {
                            m: left[1][m] + right[1][m] + local_metrics[m]
                            for m in local_metrics}
                        plan = combine(left[2], right[2], operator)
                        best[subset] = (scalar, metric_costs, plan)

        key = query.table_set if query.num_tables > 1 else frozenset(
            (query.tables[0],))
        if key not in best:
            raise OptimizationError("classical DP produced no plan")
        scalar, metric_costs, plan = best[key]
        return ClassicalResult(
            plan=plan, cost=scalar, metric_costs=metric_costs,
            plans_created=created,
            optimization_seconds=time.perf_counter() - started)
