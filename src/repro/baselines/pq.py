"""Parametric query optimization (PQ) baseline: one metric, parameters.

PQ generalizes CQ in the orthogonal direction to MQ: plan costs are
*functions* of parameters, but there is only one cost metric (Section 1;
Ganguly 1998, Hulgeri & Sudarshan 2002).  This baseline runs the RRPA
machinery restricted to a single metric, which makes it a dynamic-
programming PQ optimizer in the style of Hulgeri & Sudarshan: each plan is
kept with the parameter-space region where it is (near-)optimal.

Because PQ is literally the one-metric special case of MPQ, the
implementation *is* PWL-RRPA over a single-component cost function; the
value of the baseline is (a) validating that specialization (statement S2:
with one metric, each plan's region within a linear region is convex — the
test suite checks the relevance regions it produces) and (b) providing the
optimization-time reference point the paper compares against in its
Discussion ("our optimization times are higher but still comparable to
optimization times of single-objective PQ algorithms").
"""

from __future__ import annotations

from ..cost import CostMetric, MultiObjectivePWL
from ..core import OptimizationResult, PWLRRPA, PWLRRPAOptions
from ..query import Query


class SingleMetricModel:
    """Adapter restricting a multi-metric cost model to one metric.

    Args:
        base_model: The full cost model (e.g.
            :class:`repro.cloud.CloudCostModel`).
        metric: Name of the metric to keep.
    """

    def __init__(self, base_model, metric: str) -> None:
        names = [m.name for m in base_model.metrics]
        if metric not in names:
            raise ValueError(f"unknown metric {metric!r}; have {names}")
        self.base_model = base_model
        self.metric = metric
        self.metrics = tuple(m for m in base_model.metrics
                             if m.name == metric)
        self.partition = base_model.partition
        self.query = base_model.query

    def scan_operators(self, table: str):
        return self.base_model.scan_operators(table)

    def join_operators(self):
        return self.base_model.join_operators()

    def _restrict(self, cost: MultiObjectivePWL) -> MultiObjectivePWL:
        return MultiObjectivePWL(
            {self.metric: cost.component(self.metric)})

    def scan_cost(self, plan) -> MultiObjectivePWL:
        return self._restrict(self.base_model.scan_cost(plan))

    def join_local_cost(self, left_tables, right_tables,
                        operator) -> MultiObjectivePWL:
        return self._restrict(self.base_model.join_local_cost(
            left_tables, right_tables, operator))

    def scan_cost_polynomials(self, plan):
        polys = self.base_model.scan_cost_polynomials(plan)
        return {self.metric: polys[self.metric]}

    def join_cost_polynomials(self, left_tables, right_tables, operator):
        polys = self.base_model.join_cost_polynomials(
            left_tables, right_tables, operator)
        return {self.metric: polys[self.metric]}


class PQOptimizer:
    """Single-metric parametric DP optimizer.

    Args:
        cost_model_factory: Maps a query to a full multi-metric cost model.
        metric: The single metric to optimize (default ``"time"``).
        options: PWL backend options.
    """

    def __init__(self, cost_model_factory, metric: str = "time",
                 options: PWLRRPAOptions | None = None) -> None:
        self.cost_model_factory = cost_model_factory
        self.metric = metric
        self.options = options

    def optimize(self, query: Query) -> OptimizationResult:
        """Compute a parametric optimal plan set for one metric."""
        base_model = self.cost_model_factory(query)
        model = SingleMetricModel(base_model, self.metric)
        optimizer = PWLRRPA(options=self.options)
        return optimizer.optimize_with_model(query, model)


def metric_only(metric: CostMetric) -> tuple[CostMetric, ...]:
    """Helper returning a one-metric tuple (readability in tests)."""
    return (metric,)
