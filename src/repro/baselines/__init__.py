"""Baseline optimizers: the three problem variants MPQ generalizes.

* :class:`ClassicalOptimizer` — CQ: one metric, fixed parameters
  (Selinger-style DP).
* :class:`MQOptimizer` — MQ: cost vectors, fixed parameters (Pareto
  pruning, Ganguly/Hasan/Krishnamurthy 1992 style).
* :class:`PQOptimizer` — PQ: one metric, parametric costs (DP with
  region-of-optimality pruning, Hulgeri/Sudarshan style).
"""

from .classical import ClassicalOptimizer, ClassicalResult
from .heuristics import GreedyJoinOrderer, GreedyResult, heuristic_coverage
from .mq import MQOptimizer, MQResult, pareto_filter
from .pq import PQOptimizer, SingleMetricModel

__all__ = [
    "ClassicalOptimizer",
    "ClassicalResult",
    "GreedyJoinOrderer",
    "GreedyResult",
    "MQOptimizer",
    "MQResult",
    "PQOptimizer",
    "SingleMetricModel",
    "heuristic_coverage",
    "pareto_filter",
]
