"""Multi-objective query optimization (MQ) baseline.

MQ generalizes CQ to cost *vectors* but supports no parameters (Section 1;
Ganguly, Hasan & Krishnamurthy 1992): at a fixed parameter vector, each
plan has one constant cost vector and pruning keeps the Pareto-optimal
vectors per table set.

MPQ degenerates to MQ when the parameter space contains a single point;
the test suite verifies that PWL-RRPA and this baseline agree there.  The
baseline is also what the paper's Section 1.1 argument is about: running
MQ at *sampled* parameter points cannot guarantee covering the whole
parameter space (statement M3b) — the baseline-comparison benchmark
quantifies the coverage gap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError
from ..plans import Plan, ScanPlan, combine
from ..query import Query
from ..core.enumeration import splits, subsets_in_size_order


def pareto_filter(candidates: list[tuple[dict[str, float], Plan]],
                  tol: float = 1e-12
                  ) -> list[tuple[dict[str, float], Plan]]:
    """Keep cost-vector/plan pairs that are not strictly dominated.

    Ties (equal cost vectors) keep the first-seen plan, mirroring RRPA's
    behaviour where a new plan with exactly equal cost is pruned by the
    incumbent.
    """
    kept: list[tuple[dict[str, float], Plan]] = []
    for cost, plan in candidates:
        dominated = False
        for other_cost, __ in kept:
            if all(other_cost[m] <= cost[m] + tol for m in cost):
                dominated = True
                break
        if dominated:
            continue
        kept = [(c, p) for c, p in kept
                if not (all(cost[m] <= c[m] + tol for m in c)
                        and any(cost[m] < c[m] - tol for m in c))]
        kept.append((cost, plan))
    return kept


@dataclass
class MQResult:
    """Result of a multi-objective optimization at fixed parameters.

    Attributes:
        frontier: Pareto-optimal ``(cost_vector, plan)`` pairs.
        plans_created: Plans generated during the DP.
        optimization_seconds: Wall-clock time.
    """

    frontier: list[tuple[dict[str, float], Plan]]
    plans_created: int
    optimization_seconds: float

    @property
    def plans(self) -> list[Plan]:
        """The Pareto-optimal plans."""
        return [plan for __, plan in self.frontier]


class MQOptimizer:
    """Pareto-pruning DP optimizer at a fixed parameter vector.

    Args:
        cost_model: Cost model exposing the polynomial interface.
        parameter_values: Fixed parameter vector.
    """

    def __init__(self, cost_model, parameter_values) -> None:
        self.cost_model = cost_model
        self.x = np.asarray(parameter_values, dtype=float)

    def _evaluate(self, polys) -> dict[str, float]:
        return {m: poly.evaluate(self.x) for m, poly in polys.items()}

    def optimize(self, query: Query) -> MQResult:
        """Compute the Pareto frontier of plans at the fixed parameters.

        Raises:
            OptimizationError: If no plan can be built.
        """
        started = time.perf_counter()
        created = 0
        table: dict[frozenset[str], list[tuple[dict[str, float], Plan]]] = {}

        for name in query.tables:
            key = frozenset((name,))
            candidates = []
            for operator in self.cost_model.scan_operators(name):
                plan = ScanPlan(table=name, operator=operator)
                created += 1
                candidates.append((self._evaluate(
                    self.cost_model.scan_cost_polynomials(plan)), plan))
            table[key] = pareto_filter(candidates)

        for subset in subsets_in_size_order(query):
            candidates = list(table.get(subset, []))
            for left_set, right_set in splits(query, subset):
                lefts = table.get(left_set)
                rights = table.get(right_set)
                if not lefts or not rights:
                    continue
                for operator in self.cost_model.join_operators():
                    local = self._evaluate(
                        self.cost_model.join_cost_polynomials(
                            left_set, right_set, operator))
                    for lcost, lplan in lefts:
                        for rcost, rplan in rights:
                            created += 1
                            cost = {m: lcost[m] + rcost[m] + local[m]
                                    for m in local}
                            candidates.append(
                                (cost, combine(lplan, rplan, operator)))
            table[subset] = pareto_filter(candidates)

        key = query.table_set if query.num_tables > 1 else frozenset(
            (query.tables[0],))
        frontier = table.get(key)
        if not frontier:
            raise OptimizationError("MQ DP produced no plan")
        return MQResult(frontier=frontier, plans_created=created,
                        optimization_seconds=time.perf_counter() - started)
