"""Command-line entry point.

Usage (from the repository root)::

    python -m tools.reprolint src tests benchmarks
    python -m tools.reprolint --format json --json-output report.json src

Exit codes: 0 clean, 1 findings reported, 2 usage or internal error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import all_rules, run
from .project import ProjectContext
from .reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Project-invariant static analysis for this "
                    "repository (determinism, knob, counter, lock and "
                    "API discipline).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--root", default=".",
                        help="repository root holding the cross-checked "
                             "artifacts (docs/, benchmarks/baselines/; "
                             "default: current directory)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="stdout report format")
    parser.add_argument("--json-output", metavar="FILE",
                        help="additionally write the JSON report here "
                             "(the CI artifact)")
    parser.add_argument("--no-default-excludes", action="store_true",
                        help="also lint the planted-violation fixture "
                             "corpus under tests/fixtures/reprolint")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
        return 0
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"reprolint: --root {args.root!r} is not a directory",
              file=sys.stderr)
        return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"reprolint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        result = run([Path(path) for path in args.paths], root,
                     project=ProjectContext(root),
                     use_default_excludes=not args.no_default_excludes)
    except Exception as exc:  # pragma: no cover - defensive
        print(f"reprolint: internal error: {exc}", file=sys.stderr)
        return 2
    if args.json_output:
        Path(args.json_output).write_text(render_json(result),
                                          encoding="utf-8")
    print(render_json(result) if args.format == "json"
          else render_text(result))
    return 1 if result.findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
