"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json

from .engine import RunResult


def render_text(result: RunResult) -> str:
    """One ``path:line:col: RULE message`` line per finding, plus a
    one-line summary."""
    lines = [finding.render() for finding in result.findings]
    if result.findings:
        by_rule = ", ".join(f"{rule}×{count}" for rule, count
                            in result.counts_by_rule().items())
        lines.append(f"reprolint: {len(result.findings)} finding(s) "
                     f"in {result.files_scanned} file(s) [{by_rule}]")
    else:
        lines.append(f"reprolint: clean ({result.files_scanned} "
                     f"file(s) scanned)")
    return "\n".join(lines)


def render_json(result: RunResult) -> str:
    """Stable JSON document (CI artifact)."""
    return json.dumps(
        {"findings": [finding.as_dict() for finding in result.findings],
         "counts_by_rule": result.counts_by_rule(),
         "files_scanned": result.files_scanned,
         "clean": not result.findings},
        indent=2, sort_keys=True) + "\n"
