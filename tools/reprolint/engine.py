"""Rule-engine core: findings, suppressions, file contexts, the runner.

The engine is deliberately small and stdlib-only (``ast`` +
``tokenize``).  A *rule* is a class with an ``id`` (``REPnnn``), a
``title``, and one of two hooks:

* :meth:`Rule.check_file` — called once per linted Python file with a
  :class:`FileContext` (parsed AST with parent links, import-alias
  resolution, enclosing-scope lookup);
* :meth:`Rule.check_project` — called once per run with the
  :class:`~tools.reprolint.project.ProjectContext`, for cross-artifact
  invariants (docs tables, baseline JSON vs. live counters).

Suppressions are line-scoped comments::

    something_noisy()  # reprolint: disable=REP101
    other()            # reprolint: disable=REP101,REP402

A suppression that never matches a finding is itself a finding
(``REP001``) — stale suppressions rot into false documentation
otherwise.  Unparseable files and malformed directives report
``REP002``.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator

#: Directory names never descended into.
SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules", ".ruff_cache"}

#: Root-relative path prefixes excluded by default: the planted-violation
#: fixture corpus must not fail the real tree's lint run.
DEFAULT_EXCLUDE_PREFIXES = ("tests/fixtures/reprolint",)

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*(?P<body>.*)$")
_DISABLE = re.compile(r"^disable=(?P<rules>REP\d{3}(?:\s*,\s*REP\d{3})*)$")


@dataclass(frozen=True)
class Finding:
    """One reported violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


class Suppressions:
    """Line-scoped ``# reprolint: disable=...`` directives of one file."""

    def __init__(self) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.malformed: list[tuple[int, str]] = []
        self._used: set[tuple[int, str]] = set()

    @classmethod
    def scan(cls, source: str) -> Suppressions:
        suppressions = cls()
        lines = iter(source.splitlines(keepends=True))
        try:
            tokens = tokenize.generate_tokens(lambda: next(lines, ""))
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                directive = _DIRECTIVE.search(token.string)
                if directive is None:
                    continue
                body = directive.group("body").strip()
                disable = _DISABLE.match(body)
                if disable is None:
                    suppressions.malformed.append(
                        (token.start[0], body or "<empty>"))
                    continue
                rules = {r.strip() for r in
                         disable.group("rules").split(",")}
                suppressions.by_line.setdefault(
                    token.start[0], set()).update(rules)
        except tokenize.TokenError:
            pass  # the ast parse reports the syntax error
        return suppressions

    def suppresses(self, line: int, rule: str) -> bool:
        if rule in self.by_line.get(line, ()):
            self._used.add((line, rule))
            return True
        return False

    def unused(self) -> list[tuple[int, str]]:
        return sorted((line, rule)
                      for line, rules in self.by_line.items()
                      for rule in rules
                      if (line, rule) not in self._used)


class FileContext:
    """Everything a file rule needs about one parsed Python file.

    Attributes:
        path: Absolute file path.
        rel: Root-relative POSIX path (how findings are reported and how
            path-scoped rules decide applicability).
        source: File text.
        tree: Parsed module with ``.parent`` links on every node.
        project: The run's :class:`ProjectContext` (artifact parses),
            or ``None`` when linting outside a project root.
    """

    def __init__(self, path: Path, rel: str, source: str,
                 tree: ast.Module, project=None) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        self.project = project
        self._aliases: dict[str, str] | None = None
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                child.parent = parent  # type: ignore[attr-defined]
        tree.parent = None  # type: ignore[attr-defined]

    # -- name resolution ------------------------------------------------

    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> dotted origin, from this file's imports.

        ``import numpy as np`` maps ``np -> numpy``; ``from time import
        perf_counter as pc`` maps ``pc -> time.perf_counter``.
        """
        if self._aliases is None:
            aliases: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for item in node.names:
                        local = item.asname or item.name.split(".")[0]
                        origin = (item.name if item.asname
                                  else item.name.split(".")[0])
                        aliases[local] = origin
                elif isinstance(node, ast.ImportFrom) and node.module:
                    if node.level:
                        continue  # relative imports keep their local name
                    for item in node.names:
                        if item.name == "*":
                            continue
                        local = item.asname or item.name
                        aliases[local] = f"{node.module}.{item.name}"
            self._aliases = aliases
        return self._aliases

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a Name/Attribute chain, or ``None``.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``.
        """
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    # -- scope helpers --------------------------------------------------

    @staticmethod
    def enclosing(node: ast.AST, kinds: tuple) -> ast.AST | None:
        """Nearest ancestor of one of ``kinds`` (excluding ``node``)."""
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(current, kinds):
                return current
            current = getattr(current, "parent", None)
        return None

    def qualname(self, node: ast.AST) -> str:
        """Dotted function/class path enclosing ``node`` (module-level
        code resolves to ``"<module>"``)."""
        parts: list[str] = []
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                parts.append(current.name)
            current = getattr(current, "parent", None)
        return ".".join(reversed(parts)) or "<module>"

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(rule=rule, path=self.rel,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


class Rule:
    """Base rule.  Subclasses set ``id``/``title`` and override a hook."""

    id: str = "REP000"
    title: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project) -> Iterable[Finding]:
        return ()


#: Registry of rule *instances*, populated by :func:`register` at rule
#: module import time, keyed by rule id.
RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be new)."""
    instance = rule_cls()
    if instance.id in RULES:
        raise ValueError(f"duplicate rule id {instance.id}")
    RULES[instance.id] = instance
    return rule_cls


def all_rules() -> list[Rule]:
    from . import rules  # noqa: F401  (importing registers the rules)
    return [RULES[rule_id] for rule_id in sorted(RULES)]


@dataclass
class RunResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Iterable[Path], root: Path,
                      use_default_excludes: bool = True) -> Iterator[Path]:
    """Yield the ``.py`` files selected by ``paths``, sorted, de-duped."""
    seen: set[Path] = set()
    excluded = DEFAULT_EXCLUDE_PREFIXES if use_default_excludes else ()

    def wanted(path: Path) -> bool:
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        return not any(rel == prefix or rel.startswith(prefix + "/")
                       for prefix in excluded)

    for path in paths:
        path = Path(path)
        if path.is_file() and path.suffix == ".py":
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(
                candidate for candidate in path.rglob("*.py")
                if not any(part in SKIP_DIR_NAMES or part.startswith(".")
                           for part in candidate.parts))
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen and wanted(candidate):
                seen.add(resolved)
                yield candidate


def lint_file(path: Path, root: Path, project=None,
              rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one file: parse, run file rules, apply suppressions."""
    if rules is None:
        rules = all_rules()
    try:
        rel = path.resolve().relative_to(root).as_posix()
    except ValueError:
        rel = path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return [Finding(rule="REP002", path=rel, line=getattr(
            exc, "lineno", 1) or 1, col=1,
            message=f"could not parse file: {exc}")]
    suppressions = Suppressions.scan(source)
    ctx = FileContext(path, rel, source, tree, project=project)
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check_file(ctx):
            if not suppressions.suppresses(finding.line, finding.rule):
                findings.append(finding)
    for line, body in suppressions.malformed:
        findings.append(Finding(
            rule="REP002", path=rel, line=line, col=1,
            message=f"malformed reprolint directive: {body!r} "
                    f"(expected 'disable=REPnnn[,REPnnn...]')"))
    for line, rule_id in suppressions.unused():
        findings.append(Finding(
            rule="REP001", path=rel, line=line, col=1,
            message=f"unused suppression of {rule_id}: no such finding "
                    f"on this line — remove the directive"))
    return findings


def run(paths: Iterable[Path], root: Path, project=None,
        use_default_excludes: bool = True,
        rules: Iterable[Rule] | None = None) -> RunResult:
    """Lint ``paths`` (files/dirs) plus the project-level invariants."""
    root = Path(root).resolve()
    if rules is None:
        rules = all_rules()
    rules = list(rules)
    result = RunResult()
    for path in iter_python_files(paths, root, use_default_excludes):
        result.files_scanned += 1
        result.findings.extend(lint_file(path, root, project=project,
                                         rules=rules))
    if project is not None:
        for rule in rules:
            result.findings.extend(rule.check_project(project))
    result.findings.sort(key=Finding.sort_key)
    return result
