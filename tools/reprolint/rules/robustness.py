"""REP6xx — failure-handling discipline in the serving tier.

* REP601 — no silently swallowed exceptions in ``repro.serve`` /
  ``repro.service``: a bare ``except:`` or ``except Exception:``
  handler must either re-raise, increment a counter (``+=`` on some
  attribute — the "absorbed but accounted for" pattern), or carry a
  line-scoped ``# reprolint: disable=REP601`` with a justification in
  an adjacent comment.  The serving tier is the self-healing layer:
  an exception that vanishes there is a fault the recovery machinery
  (respawn, breaker, degraded path — docs/robustness.md) never sees,
  and the chaos gate cannot account for.  Typed excepts and
  ``except BaseException`` (teardown guards that must not mask
  ``SystemExit``/``KeyboardInterrupt`` semantics) are out of scope.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, register


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or ``except Exception`` (optionally aliased).

    Typed handlers and ``except BaseException`` are deliberate and
    stay out of scope; only the catch-everything-ordinary forms hide
    failures indiscriminately.
    """
    if handler.type is None:
        return True
    node = handler.type
    return isinstance(node, ast.Name) and node.id == "Exception"


def _accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises or increments a counter."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)):
            return True
    return False


@register
class SwallowedException(Rule):
    id = "REP601"
    title = "swallowed exception in the serving tier"

    def check_file(self, ctx: FileContext):
        project = ctx.project
        if project is None or not (project.is_serve(ctx.rel)
                                   or project.is_service(ctx.rel)):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            if _accounts_for_failure(node):
                continue
            caught = ("bare except" if node.type is None
                      else "except Exception")
            yield ctx.finding(
                self.id, node,
                f"{caught} swallows the failure: in the serving tier "
                f"every absorbed exception must re-raise, increment a "
                f"counter, or carry a line-scoped "
                f"`# reprolint: disable=REP601` with the justification "
                f"in an adjacent comment (docs/robustness.md)")
