"""REP2xx — knob discipline: every ``REPRO_*`` read goes through the
central registry (:mod:`repro.config`).

* REP201 — direct environment read of a ``REPRO_*`` name anywhere but
  the registry module itself;
* REP202 — a ``REPRO_*`` name passed to a registry getter (or a test's
  ``monkeypatch.setenv``/``delenv``) that the registry does not
  declare — catches typo'd knobs that would silently do nothing;
* REP203 — the generated knob table in ``docs/architecture.md`` is
  stale relative to the registry (regenerate with
  ``python -m repro.config``).
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule, register
from ..project import knob_table_markdown

#: Resolved callables that read the process environment.
ENV_READ_CALLS = frozenset({
    "os.environ.get", "os.getenv", "os.environ.setdefault",
})

#: Callables taking a knob name that must be declared (REP202): the
#: registry getters plus pytest's monkeypatch environment helpers.
KNOB_NAME_CALLS = ("enabled", "value", "knob", "setenv", "delenv")

KNOB_TABLE_BEGIN = "<!-- reprolint: knob-table begin -->"
KNOB_TABLE_END = "<!-- reprolint: knob-table end -->"


def _literal_first_arg(node: ast.Call) -> str | None:
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


@register
class DirectEnvRead(Rule):
    id = "REP201"
    title = "direct environment read of a REPRO_* knob"

    def check_file(self, ctx: FileContext):
        project = ctx.project
        if project is not None and project.is_config_module(ctx.rel):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func)
                if resolved in ENV_READ_CALLS:
                    name = _literal_first_arg(node)
                    if name is not None and name.startswith("REPRO_"):
                        yield ctx.finding(
                            self.id, node,
                            f"direct read of {name} via {resolved}(); "
                            f"go through repro.config "
                            f"(enabled()/value()) instead")
            elif isinstance(node, ast.Subscript):
                resolved = ctx.resolve(node.value)
                if resolved == "os.environ" \
                        and isinstance(node.slice, ast.Constant) \
                        and isinstance(node.slice.value, str) \
                        and node.slice.value.startswith("REPRO_") \
                        and isinstance(node.ctx, ast.Load):
                    yield ctx.finding(
                        self.id, node,
                        f"direct read of {node.slice.value} via "
                        f"os.environ[...]; go through repro.config "
                        f"instead")


@register
class UndeclaredKnob(Rule):
    id = "REP202"
    title = "REPRO_* name not declared in the repro.config registry"

    def check_file(self, ctx: FileContext):
        project = ctx.project
        if project is None or project.knob_names is None:
            return
        if project.is_config_module(ctx.rel):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = (func.attr if isinstance(func, ast.Attribute)
                      else func.id if isinstance(func, ast.Name)
                      else None)
            if callee not in KNOB_NAME_CALLS:
                continue
            name = _literal_first_arg(node)
            if name is None or not name.startswith("REPRO_"):
                continue
            if name not in project.knob_names:
                yield ctx.finding(
                    self.id, node,
                    f"{name} is not declared in repro.config.KNOBS; "
                    f"declare it there (with default, kind and doc) "
                    f"before use")


@register
class StaleKnobTable(Rule):
    id = "REP203"
    title = "generated knob table out of sync with the registry"

    def check_project(self, project):
        registry = project.knob_registry
        doc = project.architecture_doc
        if registry is None or doc is None:
            return
        rel = "docs/architecture.md"
        begin = doc.find(KNOB_TABLE_BEGIN)
        end = doc.find(KNOB_TABLE_END)
        if begin < 0 or end < 0 or end < begin:
            yield Finding(
                rule=self.id, path=rel, line=1, col=1,
                message=f"knob table markers missing ({KNOB_TABLE_BEGIN}"
                        f" ... {KNOB_TABLE_END}); regenerate with "
                        f"'python -m repro.config'")
            return
        committed = doc[begin + len(KNOB_TABLE_BEGIN):end].strip()
        expected = knob_table_markdown(registry).strip()
        if committed != expected:
            line = doc[:begin].count("\n") + 1
            yield Finding(
                rule=self.id, path=rel, line=line, col=1,
                message="knob table is stale relative to "
                        "repro.config.KNOBS; regenerate with "
                        "'python -m repro.config' and paste between "
                        "the markers")
