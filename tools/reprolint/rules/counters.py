"""REP3xx — counter consistency across code, docs and the CI baseline.

The perf story is carried by deterministic counters: every counter
class field must be documented in ``docs/counters.md`` (REP301), and
every gated ``lp.*`` / ``serving.*`` / ``store.*`` metric key in
``benchmarks/baselines/bench-smoke.json`` must still resolve to a live
counter or benchmark-produced aggregate (REP302) — a renamed counter
or stale baseline entry fails CI instead of silently un-gating.
"""

from __future__ import annotations

import re

from ..engine import Finding, Rule, register


def _mentioned(doc: str, name: str) -> bool:
    """Whether ``name`` appears in the doc as a standalone token
    (``solved`` does not match inside ``lps_solved``, but does match
    in ``lp_stats.solved``)."""
    return re.search(rf"(?<![A-Za-z0-9_]){re.escape(name)}(?![A-Za-z0-9_])",
                     doc) is not None


@register
class UndocumentedCounter(Rule):
    id = "REP301"
    title = "counter attribute missing from docs/counters.md"

    def check_project(self, project):
        doc = project.counters_doc
        if doc is None:
            return
        for (rel, class_name), counters in sorted(
                project.counter_classes.items()):
            for name, line in sorted(counters.items(),
                                     key=lambda item: item[1]):
                if not _mentioned(doc, name):
                    yield Finding(
                        rule=self.id, path=rel, line=line, col=1,
                        message=f"{class_name}.{name} is not documented "
                                f"in docs/counters.md — every counter "
                                f"ships with its glossary entry")


@register
class StaleBaselineMetric(Rule):
    id = "REP302"
    title = "gated baseline metric does not resolve to a live counter"

    #: prefix -> attribute of ProjectContext holding the live names.
    FAMILIES = {
        "lp.": "lp_metric_names",
        "serving.": "serving_metric_names",
        "store.": "store_metric_names",
    }

    def check_project(self, project):
        metrics = project.baseline_metrics
        if metrics is None:
            return
        for key in sorted(metrics):
            entry = metrics[key]
            if not (isinstance(entry, dict) and entry.get("gate")):
                continue
            for prefix, attr in self.FAMILIES.items():
                if not key.startswith(prefix):
                    continue
                tail = key.rsplit(".", 1)[-1]
                live = getattr(project, attr)
                if tail in live or project.SHARD_HITS.match(tail):
                    continue
                yield Finding(
                    rule=self.id, path=project.BASELINE, line=1, col=1,
                    message=f"gated metric {key!r}: tail {tail!r} does "
                            f"not resolve to a live counter or "
                            f"benchmark aggregate — stale baseline "
                            f"entries silently disable their gate; "
                            f"remove the key or restore the counter")
