"""REP1xx — determinism discipline for the bit-identity modules.

``repro.core`` / ``repro.lp`` / ``repro.geometry`` / ``repro.cost``
must produce bit-identical plan sets and counters across kernel
generations, machines and Python versions (that is what lets CI gate
counter metrics — see ``docs/counters.md``).  Any ambient
nondeterminism feeding a result breaks that contract silently, so
these rules ban the sources outright:

* REP101 — clock reads (``time.time``, ``time.perf_counter``, ...)
  outside the explicit stats/wall-clock allow-list
  (``tools.reprolint.project.WALLCLOCK_ALLOWLIST``);
* REP102 — randomness/entropy sources (``random``, ``numpy.random``,
  ``os.urandom``, ``uuid``, ``secrets``);
* REP103 — iteration over ``set``/``frozenset`` values, whose order
  depends on ``PYTHONHASHSEED`` (iterate a sorted copy instead;
  ``dict`` iteration is insertion-ordered and therefore fine).
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule, register

#: Fully-resolved clock callables.  *Every* one needs an allow-list
#: entry — there is no "harmless" clock in a bit-identity module, only
#: audited stats sites.
CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: Modules whose very import signals entropy use.
ENTROPY_MODULES = frozenset({"random", "secrets", "uuid"})

#: Resolved-name prefixes of entropy callables.
ENTROPY_PREFIXES = ("random.", "secrets.", "uuid.", "numpy.random")

ENTROPY_CALLS = frozenset({"os.urandom"})


def _functions_scope(node: ast.AST) -> ast.AST | None:
    return FileContext.enclosing(
        node, (ast.FunctionDef, ast.AsyncFunctionDef))


@register
class ClockReads(Rule):
    id = "REP101"
    title = "clock read in bit-identity module outside the allow-list"

    def check_file(self, ctx: FileContext):
        project = ctx.project
        if project is None or not project.is_bit_identity(ctx.rel):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved not in CLOCK_CALLS:
                continue
            qualname = ctx.qualname(node)
            if project.wallclock_allowed(ctx.rel, qualname):
                continue
            yield ctx.finding(
                self.id, node,
                f"{resolved}() in bit-identity module (in {qualname}); "
                f"clocks may only feed stats at allow-listed sites — "
                f"add to WALLCLOCK_ALLOWLIST only if the value never "
                f"influences results")


@register
class EntropySources(Rule):
    id = "REP102"
    title = "randomness/entropy source in bit-identity module"

    def check_file(self, ctx: FileContext):
        project = ctx.project
        if project is None or not project.is_bit_identity(ctx.rel):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    top = item.name.split(".")[0]
                    if top in ENTROPY_MODULES:
                        yield ctx.finding(
                            self.id, node,
                            f"import of {item.name!r} in bit-identity "
                            f"module; results must not depend on "
                            f"entropy")
            elif isinstance(node, ast.ImportFrom):
                if node.module and not node.level and (
                        node.module.split(".")[0] in ENTROPY_MODULES
                        or node.module.startswith("numpy.random")):
                    yield ctx.finding(
                        self.id, node,
                        f"import from {node.module!r} in bit-identity "
                        f"module; results must not depend on entropy")
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func)
                if resolved is None:
                    continue
                if (resolved in ENTROPY_CALLS
                        or resolved.startswith(ENTROPY_PREFIXES)):
                    yield ctx.finding(
                        self.id, node,
                        f"call to {resolved}() in bit-identity module; "
                        f"results must not depend on entropy")


def _is_set_expr(node: ast.expr, local_sets: set[str]) -> bool:
    """Whether ``node`` statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.Name):
        return node.id in local_sets
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, local_sets)
                or _is_set_expr(node.right, local_sets))
    return False


def _sorted_wrapped(node: ast.expr) -> bool:
    """Whether the iteration result is immediately ordered: the iter
    expression's comprehension/loop value flows straight into an
    order-insensitive reducer (hash order cannot leak then).  ``sum``
    is deliberately absent: float summation order changes bits.
    """
    parent = getattr(node, "parent", None)
    grand = getattr(parent, "parent", None)
    return any(
        isinstance(candidate, ast.Call)
        and isinstance(candidate.func, ast.Name)
        and candidate.func.id in ("sorted", "len", "any", "all")
        for candidate in (parent, grand))


@register
class UnorderedIteration(Rule):
    id = "REP103"
    title = "iteration over an unordered set in bit-identity module"

    def check_file(self, ctx: FileContext):
        project = ctx.project
        if project is None or not project.is_bit_identity(ctx.rel):
            return
        # Local names bound to set expressions, per enclosing function
        # (id of the function node -> names).  Deliberately an
        # over-approximation: a rebound name stays tainted.
        local_sets: dict[int, set[str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and _is_set_expr(node.value, set()):
                scope = _functions_scope(node)
                local_sets.setdefault(id(scope), set()).add(
                    node.targets[0].id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name) \
                    and node.value is not None \
                    and _is_set_expr(node.value, set()):
                scope = _functions_scope(node)
                local_sets.setdefault(id(scope), set()).add(
                    node.target.id)

        def scope_sets(node: ast.AST) -> set[str]:
            return local_sets.get(id(_functions_scope(node)), set())

        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_expr in iters:
                if not _is_set_expr(iter_expr, scope_sets(iter_expr)):
                    continue
                if isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                     ast.DictComp)) \
                        and _sorted_wrapped(node):
                    continue
                yield ctx.finding(
                    self.id, iter_expr,
                    "iteration over a set: order depends on "
                    "PYTHONHASHSEED and can leak into results — "
                    "iterate sorted(...) instead")
