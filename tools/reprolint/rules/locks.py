"""REP4xx — lock discipline.

* REP401 — within a class, an attribute written under ``with
  self._lock:`` in one place must be written under it everywhere
  (``__init__``/``__new__`` excluded: construction precedes sharing).
  Targets the shared caches (``WarmStartCache``, ``PlanSetStore``,
  ``LPResultCache``) but applies to any class that mixes locked and
  bare writes — that mix is how torn cache states are born.
* REP402 — no ``threading`` locks inside ``repro.serve``: all gateway
  state is owned by the event-loop thread (cross-thread work goes
  through ``run_coroutine_threadsafe`` / executor futures).  A lock
  appearing there means shared mutable state crossed a thread
  boundary and the single-owner design is being eroded.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, register

INIT_METHODS = {"__init__", "__new__", "__post_init__"}

LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
})


def _self_attr_path(node: ast.expr) -> str | None:
    """Dotted attribute path rooted at ``self`` (without the root),
    e.g. ``self.counters.puts`` -> ``"counters.puts"``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name) and current.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


def _is_lock_expr(node: ast.expr) -> bool:
    """Whether a ``with`` item looks like a lock (``self._lock``,
    ``self._state_lock``, a bare ``lock`` variable, ...)."""
    path = _self_attr_path(node)
    if path is not None:
        return "lock" in path.rsplit(".", 1)[-1].lower()
    if isinstance(node, ast.Name):
        return "lock" in node.id.lower()
    return False


def _under_lock(node: ast.AST, method: ast.AST) -> bool:
    """Whether ``node`` sits inside a lock-holding ``with`` within
    ``method``."""
    current = getattr(node, "parent", None)
    while current is not None and current is not method:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                if _is_lock_expr(item.context_expr):
                    return True
        current = getattr(current, "parent", None)
    return False


def _attribute_writes(method: ast.FunctionDef):
    """Yield ``(path, node)`` for writes to self-rooted attributes."""
    for node in ast.walk(method):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets.extend(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets.append(node.target)
        for target in targets:
            if isinstance(target, ast.Tuple):
                elements = target.elts
            else:
                elements = [target]
            for element in elements:
                if isinstance(element, ast.Attribute):
                    path = _self_attr_path(element)
                    if path is not None:
                        yield path, node


@register
class InconsistentLocking(Rule):
    id = "REP401"
    title = "attribute written both under a lock and without it"

    def check_file(self, ctx: FileContext):
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            locked: dict[str, ast.AST] = {}
            bare: list[tuple[str, ast.AST, str]] = []
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                if method.name in INIT_METHODS:
                    continue
                for path, node in _attribute_writes(method):
                    if _under_lock(node, method):
                        locked.setdefault(path, node)
                    else:
                        bare.append((path, node, method.name))
            for path, node, method_name in bare:
                if path in locked:
                    yield ctx.finding(
                        self.id, node,
                        f"self.{path} is written under the lock "
                        f"elsewhere in {class_node.name} but bare in "
                        f"{method_name}(); hold the lock here too (or "
                        f"suppress with a comment explaining why this "
                        f"write cannot race)")


@register
class LockInServePackage(Rule):
    id = "REP402"
    title = "threading lock inside the event-loop-owned serve package"

    def check_file(self, ctx: FileContext):
        project = ctx.project
        if project is None or not project.is_serve(ctx.rel):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in LOCK_FACTORIES:
                yield ctx.finding(
                    self.id, node,
                    f"{resolved}() inside repro.serve: gateway state "
                    f"is event-loop-thread-only by design "
                    f"(docs/serving.md); marshal cross-thread work "
                    f"through the loop instead of sharing state under "
                    f"a lock")
