"""Rule families.  Importing this package registers every rule.

* REP1xx — determinism discipline in the bit-identity modules
* REP2xx — knob discipline (the ``repro.config`` registry)
* REP3xx — counter consistency across code, docs and the CI baseline
* REP4xx — lock discipline
* REP5xx — API surface (``__all__``, deprecation shims)
* REP6xx — failure-handling discipline in the serving tier

``REP001`` (unused suppression) and ``REP002`` (parse/directive error)
are emitted by the engine itself.
"""

from . import (api, counters, determinism, knobs, locks,  # noqa: F401
               robustness)
