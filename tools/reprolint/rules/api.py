"""REP5xx — API surface discipline.

* REP501 — modules declaring ``__all__`` keep it truthful: every entry
  must exist at module scope, no duplicates, and every *public*
  top-level ``def``/``class`` must be listed (an unexported public def
  is an accidental API).
* REP502 — ``DeprecationWarning``s must pass ``stacklevel`` so the
  warning points at the caller being migrated, not at the shim.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, register


def _module_scope_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Tuple):
                    names.update(element.id for element in target.elts
                                 if isinstance(element, ast.Name))
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            names.update((item.asname or item.name.split(".")[0])
                         for item in node.names)
        elif isinstance(node, ast.ImportFrom):
            names.update((item.asname or item.name)
                         for item in node.names if item.name != "*")
        elif isinstance(node, (ast.If, ast.Try)):
            # One conditional level is enough for the guarded-import
            # idiom (TYPE_CHECKING, optional deps).
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef, ast.ClassDef)):
                    names.add(sub.name)
                elif isinstance(sub, ast.ImportFrom):
                    names.update((item.asname or item.name)
                                 for item in sub.names
                                 if item.name != "*")
                elif isinstance(sub, ast.Import):
                    names.update((item.asname or item.name.split(".")[0])
                                 for item in sub.names)
    return names


def _star_imports(tree: ast.Module) -> bool:
    return any(isinstance(node, ast.ImportFrom)
               and any(item.name == "*" for item in node.names)
               for node in tree.body)


@register
class DunderAllDiscipline(Rule):
    id = "REP501"
    title = "__all__ out of sync with the module's public defs"

    def check_file(self, ctx: FileContext):
        all_node = None
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and any(
                    isinstance(target, ast.Name)
                    and target.id == "__all__"
                    for target in node.targets):
                all_node = node
        if all_node is None:
            return
        if not isinstance(all_node.value, (ast.List, ast.Tuple)):
            return
        exported: list[str] = []
        for element in all_node.value.elts:
            if isinstance(element, ast.Constant) \
                    and isinstance(element.value, str):
                exported.append(element.value)
        seen: set[str] = set()
        for name in exported:
            if name in seen:
                yield ctx.finding(self.id, all_node,
                                  f"duplicate __all__ entry {name!r}")
            seen.add(name)
        defined = _module_scope_names(ctx.tree)
        if not _star_imports(ctx.tree):
            for name in exported:
                if name not in defined:
                    yield ctx.finding(
                        self.id, all_node,
                        f"__all__ exports {name!r} which is not "
                        f"defined at module scope")
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) \
                    and not node.name.startswith("_") \
                    and node.name not in seen:
                yield ctx.finding(
                    self.id, node,
                    f"public {'class' if isinstance(node, ast.ClassDef) else 'def'} "
                    f"{node.name!r} missing from __all__ (export it or "
                    f"underscore-prefix it)")


@register
class DeprecationStacklevel(Rule):
    id = "REP502"
    title = "DeprecationWarning without stacklevel"

    def check_file(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved not in ("warnings.warn", "warnings.warn_explicit"):
                continue
            category = None
            if len(node.args) >= 2:
                category = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "category":
                    category = keyword.value
            if category is None:
                continue
            name = (category.id if isinstance(category, ast.Name)
                    else category.attr
                    if isinstance(category, ast.Attribute) else "")
            if not name.endswith("DeprecationWarning"):
                continue
            if resolved == "warnings.warn" and not any(
                    keyword.arg == "stacklevel"
                    for keyword in node.keywords):
                yield ctx.finding(
                    self.id, node,
                    "deprecation warning without stacklevel=: the "
                    "warning will point at the shim instead of the "
                    "caller being migrated")
