"""reprolint — project-invariant static analysis for this repository.

A stdlib-``ast`` rule engine plus five project-specific rule families
that turn this codebase's cross-cutting conventions into CI-failing
checks:

* **REP1xx determinism** — no clocks/entropy/unordered iteration in
  the bit-identity modules (``repro.core``/``lp``/``geometry``/
  ``cost``), with an audited allow-list for stats wall-clock sites;
* **REP2xx knob discipline** — every ``REPRO_*`` environment read goes
  through the :mod:`repro.config` registry, and the generated knob
  table in ``docs/architecture.md`` stays in sync;
* **REP3xx counter consistency** — counter classes stay documented in
  ``docs/counters.md`` and gated baseline metrics stay live;
* **REP4xx lock discipline** — no half-locked attributes, no locks in
  the event-loop-owned serve package;
* **REP5xx API surface** — truthful ``__all__``, deprecation shims
  with ``stacklevel``.

Rule catalog and suppression policy: ``docs/static-analysis.md``.
Run ``python -m tools.reprolint src tests benchmarks`` from the
repository root.
"""

from .engine import (Finding, Rule, RunResult, all_rules, lint_file,
                     register, run)
from .project import ProjectContext

__all__ = [
    "Finding",
    "ProjectContext",
    "Rule",
    "RunResult",
    "all_rules",
    "lint_file",
    "register",
    "run",
]
