"""``python -m tools.reprolint`` — see :mod:`tools.reprolint.cli`."""

import sys

from .cli import main

sys.exit(main())
