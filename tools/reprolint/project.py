"""Project knowledge: which paths carry which invariants, and the
cross-artifact parses the project rules check against.

Everything here is derived by *parsing* the repository (stdlib ``ast``
over source files, ``json`` over the benchmark baseline) — reprolint
never imports the code it lints, so it can analyze fixture trees and
broken work-in-progress checkouts alike.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path

#: Root-relative prefixes of the bit-identity modules: code whose
#: results must stay bit-identical to the scalar oracle (REP1xx).
BIT_IDENTITY_PREFIXES = (
    "src/repro/core/",
    "src/repro/lp/",
    "src/repro/geometry/",
    "src/repro/cost/",
)

#: Root-relative prefix of the serving gateway, whose mutable state is
#: event-loop-thread-only by design (REP402).
SERVE_PREFIX = "src/repro/serve/"

#: Root-relative prefix of the session/worker-pool service layer.
#: Together with :data:`SERVE_PREFIX` this is the recovery-critical
#: tier where silently swallowed exceptions hide real failures
#: (REP601).
SERVICE_PREFIX = "src/repro/service/"

#: The knob registry module — the one file allowed to read ``REPRO_*``
#: environment variables directly (REP201).
CONFIG_MODULE = "src/repro/config.py"

#: Explicit allow-list for clock reads inside bit-identity modules
#: (REP101): ``(root-relative path, enclosing qualname)`` pairs.  Every
#: entry must be a *stats/wall-clock* site — a ``perf_counter`` read
#: that feeds ``seconds``-style counters and never influences plan
#: sets, LP outcomes or iteration order.
WALLCLOCK_ALLOWLIST: frozenset[tuple[str, str]] = frozenset({
    # Wall-clock *budget* accounting: Budget(seconds=...) expiry is
    # checked at DP step boundaries only, so the clock never reorders
    # or alters any plan/LP computation — it can only stop a run early,
    # which the anytime API reports honestly as "partial".
    ("src/repro/core/run.py", "_BudgetWindow.__init__"),
    ("src/repro/core/run.py", "_BudgetWindow.exhausted"),
    # Per-step wall time feeding OptimizerStats.optimization_seconds
    # and ProgressEvent.seconds (reported, never gated).
    ("src/repro/core/run.py", "OptimizationRun.step"),
    # LP backend wall-time attribution (LPStats.seconds per purpose).
    ("src/repro/lp/solver.py", "LinearProgramSolver._solve_prepared"),
    # Stacked-kernel wall time: conversion timing and per-group pivot
    # timing, split by pivot-rounds-active for purpose attribution.
    ("src/repro/lp/batch_simplex.py", "standard_form"),
    ("src/repro/lp/batch_simplex.py", "solve_simplex_batch"),
})

#: Counter classes checked for docs coverage (REP301):
#: root-relative module -> class names.
COUNTER_CLASSES: dict[str, tuple[str, ...]] = {
    "src/repro/core/stats.py": ("OptimizerStats",),
    "src/repro/lp/counters.py": ("LPStats",),
    "src/repro/serve/counters.py": ("TenantCounters",
                                    "ResilienceCounters"),
    "src/repro/store/counters.py": ("StoreCounters",),
}

#: Fields that are containers/bookkeeping, not counters.
NON_COUNTER_FIELDS = {"lp_stats", "tenants", "latency", "started_monotonic"}


@dataclass(frozen=True)
class KnobDecl:
    """A ``Knob(...)`` declaration recovered from the registry's AST."""

    name: str
    default: str | None
    kind: str
    doc: str
    choices: tuple[str, ...] = ()

    def table_row(self) -> str:
        default = "*(unset)*" if self.default is None else f"`{self.default}`"
        kind = self.kind
        if self.choices:
            kind = f"{kind} ({'/'.join(self.choices)})"
        return f"| `{self.name}` | {kind} | {default} | {self.doc} |"


def knob_table_markdown(knobs: tuple[KnobDecl, ...]) -> str:
    """Rebuild the generated knob table (must mirror
    ``repro.config.knob_table_markdown`` — pinned by a test)."""
    lines = ["| knob | kind | default | effect |",
             "|---|---|---|---|"]
    lines.extend(declared.table_row() for declared in knobs)
    return "\n".join(lines)


class ProjectContext:
    """Lazily parsed cross-artifact view of one repository root."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root).resolve()

    def path(self, rel: str) -> Path:
        return self.root / rel

    def _read(self, rel: str) -> str | None:
        try:
            return self.path(rel).read_text(encoding="utf-8")
        except OSError:
            return None

    def _parse(self, rel: str) -> ast.Module | None:
        source = self._read(rel)
        if source is None:
            return None
        try:
            return ast.parse(source, filename=rel)
        except SyntaxError:
            return None

    # -- path classification -------------------------------------------

    def is_bit_identity(self, rel: str) -> bool:
        return rel.startswith(BIT_IDENTITY_PREFIXES)

    def is_serve(self, rel: str) -> bool:
        return rel.startswith(SERVE_PREFIX)

    def is_service(self, rel: str) -> bool:
        return rel.startswith(SERVICE_PREFIX)

    def is_config_module(self, rel: str) -> bool:
        return rel == CONFIG_MODULE

    def wallclock_allowed(self, rel: str, qualname: str) -> bool:
        return (rel, qualname) in WALLCLOCK_ALLOWLIST

    # -- knob registry (REP2xx) ----------------------------------------

    @cached_property
    def knob_registry(self) -> tuple[KnobDecl, ...] | None:
        """Knob declarations parsed from the registry module, or
        ``None`` when the module is absent (non-project tree)."""
        tree = self._parse(CONFIG_MODULE)
        if tree is None:
            return None
        knobs: list[KnobDecl] = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "Knob"):
                continue
            kwargs = {}
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                try:
                    kwargs[keyword.arg] = ast.literal_eval(keyword.value)
                except ValueError:
                    continue
            if "name" not in kwargs:
                continue
            knobs.append(KnobDecl(
                name=kwargs["name"],
                default=kwargs.get("default"),
                kind=kwargs.get("kind", ""),
                doc=kwargs.get("doc", ""),
                choices=tuple(kwargs.get("choices", ()) or ())))
        return tuple(knobs)

    @cached_property
    def knob_names(self) -> frozenset[str] | None:
        registry = self.knob_registry
        if registry is None:
            return None
        return frozenset(declared.name for declared in registry)

    # -- counter classes (REP3xx) --------------------------------------

    @cached_property
    def counter_classes(self) -> dict[tuple[str, str], dict[str, int]]:
        """``(module rel, class) -> {counter name: line}`` for every
        numeric dataclass field and public property of the counter
        classes (underscore names and container fields excluded)."""
        classes: dict[tuple[str, str], dict[str, int]] = {}
        for rel, names in COUNTER_CLASSES.items():
            tree = self._parse(rel)
            if tree is None:
                continue
            for node in ast.walk(tree):
                if not (isinstance(node, ast.ClassDef)
                        and node.name in names):
                    continue
                counters: dict[str, int] = {}
                for statement in node.body:
                    if (isinstance(statement, ast.AnnAssign)
                            and isinstance(statement.target, ast.Name)):
                        name = statement.target.id
                        if (not name.startswith("_")
                                and name not in NON_COUNTER_FIELDS
                                and isinstance(statement.annotation,
                                               ast.Name)
                                and statement.annotation.id
                                in ("int", "float")):
                            counters[name] = statement.lineno
                    elif isinstance(statement, ast.FunctionDef):
                        if (not statement.name.startswith("_")
                                and any(isinstance(d, ast.Name)
                                        and d.id == "property"
                                        for d in statement.decorator_list)):
                            counters[statement.name] = statement.lineno
                classes[(rel, node.name)] = counters
        return classes

    def _class_members(self, rel: str, class_name: str,
                       include_methods: bool = False) -> set[str]:
        """Public attribute/method names of one class (AST parse)."""
        tree = self._parse(rel)
        members: set[str] = set()
        if tree is None:
            return members
        for node in ast.walk(tree):
            if not (isinstance(node, ast.ClassDef)
                    and node.name == class_name):
                continue
            for statement in node.body:
                if (isinstance(statement, ast.AnnAssign)
                        and isinstance(statement.target, ast.Name)
                        and not statement.target.id.startswith("_")):
                    members.add(statement.target.id)
                elif (isinstance(statement, ast.FunctionDef)
                        and not statement.name.startswith("_")):
                    if include_methods or any(
                            isinstance(d, ast.Name) and d.id == "property"
                            for d in statement.decorator_list):
                        members.add(statement.name)
        return members

    @cached_property
    def lp_metric_names(self) -> set[str]:
        """Names a gated ``lp.*`` baseline key tail may resolve to."""
        names = self._class_members("src/repro/core/stats.py",
                                    "OptimizerStats", include_methods=True)
        names |= self._class_members("src/repro/lp/counters.py",
                                     "LPStats", include_methods=True)
        # `lp.` keys drop the OptimizerStats-level `lp_` prefix.
        names |= {name[3:] for name in names if name.startswith("lp_")}
        return names

    @cached_property
    def serving_metric_names(self) -> set[str]:
        """Names a gated ``serving.*`` key tail may resolve to."""
        names = self._class_members("src/repro/serve/counters.py",
                                    "TenantCounters")
        names |= self._string_literals("src/repro/serve/router.py")
        # Workload-level outcomes computed by the serving benchmark
        # itself (e.g. "dropped") count as live when the benchmark
        # still produces them.
        names |= self._string_literals("benchmarks/bench_serving.py")
        return names

    @cached_property
    def store_metric_names(self) -> set[str]:
        """Names a gated ``store.*`` key tail may resolve to."""
        names = self._class_members("src/repro/store/counters.py",
                                    "StoreCounters")
        # Derived ratios/aggregates computed by the store benchmark
        # (hit_rate, lp_speedup, all_identical, ...): live as long as
        # the producing literal still exists in the benchmark.
        names |= self._string_literals("benchmarks/bench_store.py")
        return names

    def _string_literals(self, rel: str) -> set[str]:
        tree = self._parse(rel)
        if tree is None:
            return set()
        return {node.value for node in ast.walk(tree)
                if isinstance(node, ast.Constant)
                and isinstance(node.value, str)}

    #: ``serving.<...>.shardN_hits`` keys come from the router's
    #: per-shard hit list.
    SHARD_HITS = re.compile(r"^shard\d+_hits$")

    # -- documentation artifacts ---------------------------------------

    @cached_property
    def counters_doc(self) -> str | None:
        return self._read("docs/counters.md")

    @cached_property
    def architecture_doc(self) -> str | None:
        return self._read("docs/architecture.md")

    # -- benchmark baseline --------------------------------------------

    BASELINE = "benchmarks/baselines/bench-smoke.json"

    @cached_property
    def baseline_metrics(self) -> dict[str, dict] | None:
        source = self._read(self.BASELINE)
        if source is None:
            return None
        try:
            document = json.loads(source)
        except ValueError:
            return None
        metrics = document.get("metrics")
        return metrics if isinstance(metrics, dict) else None
