"""Repository maintenance tooling (not part of the ``repro`` package).

Currently: :mod:`tools.reprolint`, the project-invariant static
analyzer wired into CI.
"""
