"""Figure 12, right column: star queries.

Same three panels as the chain column.  The paper finds star queries
harder than chain queries for the same table count when Cartesian products
are postponed (more connected sub-sets / splits); the recorded
``plans_created`` / ``lps_solved`` extra-info lets EXPERIMENTS.md verify
that relationship.

Run with::

    pytest benchmarks/bench_fig12_star.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench import SweepPoint


@pytest.mark.parametrize("num_tables", [2, 3, 4, 5])
def test_star_one_param(benchmark, record_point, num_tables):
    point = SweepPoint(num_tables=num_tables, shape="star", num_params=1,
                       resolution=2)
    m = record_point(benchmark, point)
    assert m.pareto_plans >= 1


@pytest.mark.parametrize("num_tables", [2, 3])
def test_star_two_params(benchmark, record_point, num_tables):
    point = SweepPoint(num_tables=num_tables, shape="star", num_params=2,
                       resolution=1)
    m = record_point(benchmark, point)
    assert m.pareto_plans >= 1
