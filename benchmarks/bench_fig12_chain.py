"""Figure 12, left column: chain queries.

Regenerates the three panels — optimization time, #created plans, #solved
LPs — for chain queries with 1 and 2 parameters.  Table counts are scaled
down relative to the paper (Python LP solving vs. Java + Gurobi; see
EXPERIMENTS.md); the growth *shapes* are what is being reproduced.

Run with::

    pytest benchmarks/bench_fig12_chain.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench import SweepPoint


@pytest.mark.parametrize("num_tables", [2, 3, 4, 5])
def test_chain_one_param(benchmark, record_point, num_tables):
    point = SweepPoint(num_tables=num_tables, shape="chain", num_params=1,
                       resolution=2)
    m = record_point(benchmark, point)
    assert m.pareto_plans >= 1


@pytest.mark.parametrize("num_tables", [2, 3])
def test_chain_two_params(benchmark, record_point, num_tables):
    point = SweepPoint(num_tables=num_tables, shape="chain", num_params=2,
                       resolution=1)
    m = record_point(benchmark, point)
    assert m.pareto_plans >= 1
