"""Shared fixtures and helpers for the benchmark suite.

Every benchmark records the paper's Figure 12 measurements (plans created,
LPs solved, Pareto set size) in ``benchmark.extra_info`` so a benchmark
run regenerates the full data behind the figure, not just timings.
"""

from __future__ import annotations

import pytest

from repro.bench import SweepPoint, queries_for_point
from repro.core import PWLRRPAOptions


def optimize_and_record(benchmark, point: SweepPoint,
                        options: PWLRRPAOptions | None = None,
                        seed: int = 0):
    """Benchmark one sweep point and attach the Figure 12 counters."""
    from repro.bench import run_query_measurement

    query = queries_for_point(point, 1, base_seed=seed)[0]

    def run():
        return run_query_measurement(query, point, options=options)

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "tables": point.num_tables,
        "shape": point.shape,
        "params": point.num_params,
        "plans_created": measurement.plans_created,
        "lps_solved": measurement.lps_solved,
        "pareto_plans": measurement.pareto_plans,
        "lp_seconds": measurement.lp_seconds,
        "emptiness_lp_seconds": measurement.emptiness_lp_seconds,
        "batch_lp_rounds": measurement.batch_lp_rounds,
        "batch_lp_solves": measurement.batch_lp_solves,
        "batch_lp_fallbacks": measurement.batch_lp_fallbacks,
        "batch_lp_occupancy": measurement.batch_lp_occupancy,
        "lp_queue_enqueued": measurement.lp_queue_enqueued,
        "lp_queue_flush_size": measurement.lp_queue_flush_size,
        "lp_queue_flush_demand": measurement.lp_queue_flush_demand,
        "lp_queue_flush_explicit": measurement.lp_queue_flush_explicit,
        "lp_median_stacked_group_size":
            measurement.lp_median_stacked_group_size,
    })
    return measurement


@pytest.fixture
def record_point():
    """Fixture exposing :func:`optimize_and_record`."""
    return optimize_and_record
