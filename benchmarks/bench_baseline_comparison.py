"""Baselines vs. MPQ: the optimization-cost hierarchy of Section 1.

CQ < MQ < PQ < MPQ in optimization effort — MPQ "is computationally
expensive [but] happens before run time and pays off as it avoids run-time
query optimization altogether" (Section 7 discussion).  This bench
measures all four on the same query, and additionally quantifies the
coverage gap of running MQ at sampled parameter points instead of MPQ.

Run with::

    pytest benchmarks/bench_baseline_comparison.py --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ClassicalOptimizer, MQOptimizer, PQOptimizer
from repro.bench import SweepPoint, queries_for_point
from repro.cloud import CloudCostModel
from repro.core import PWLRRPA

POINT = SweepPoint(num_tables=4, shape="chain", num_params=1, resolution=2)


@pytest.fixture(scope="module")
def query():
    return queries_for_point(POINT, 1)[0]


@pytest.fixture(scope="module")
def model(query):
    return CloudCostModel(query, resolution=2)


def test_classical(benchmark, query, model):
    result = benchmark(
        lambda: ClassicalOptimizer(model, [0.5],
                                   weights={"time": 1.0}).optimize(query))
    benchmark.extra_info["plans_created"] = result.plans_created


def test_mq_at_fixed_point(benchmark, query, model):
    result = benchmark(lambda: MQOptimizer(model, [0.5]).optimize(query))
    benchmark.extra_info["frontier_size"] = len(result.frontier)


def test_pq_single_metric(benchmark, query):
    optimizer = PQOptimizer(
        cost_model_factory=lambda q: CloudCostModel(q, resolution=2),
        metric="time")
    result = benchmark.pedantic(lambda: optimizer.optimize(query),
                                rounds=1, iterations=1)
    benchmark.extra_info["plans_kept"] = len(result.entries)
    benchmark.extra_info["lps_solved"] = result.stats.lps_solved


def test_mpq_full(benchmark, query):
    optimizer = PWLRRPA(
        cost_model_factory=lambda q: CloudCostModel(q, resolution=2))
    result = benchmark.pedantic(lambda: optimizer.optimize(query),
                                rounds=1, iterations=1)
    benchmark.extra_info["plans_kept"] = len(result.entries)
    benchmark.extra_info["lps_solved"] = result.stats.lps_solved


def test_mq_sampling_coverage_gap(benchmark, query, model):
    """How much of MPQ's frontier does point-sampled MQ miss?

    Runs MQ at 3 sampled parameter points and measures, across a finer
    evaluation grid, how far the union of those three frontiers is from
    the MPQ frontier (max relative regret on the weighted-sum family).
    This is the Section 1.1 / M3b argument quantified.
    """
    mpq = PWLRRPA(
        cost_model_factory=lambda q: CloudCostModel(q, resolution=2)
    ).optimize(query)

    def sampled_mq_plans():
        plans = []
        for x in (0.1, 0.5, 0.9):
            plans.extend(
                p for __, p in MQOptimizer(model, [x]).optimize(
                    query).frontier)
        return plans

    mq_plans = benchmark(sampled_mq_plans)
    worst_regret = 0.0
    for x in np.linspace(0.05, 0.95, 10):
        for weights in ({"time": 1.0}, {"fees": 1.0},
                        {"time": 1.0, "fees": 1.0}):
            def score(plan, x=x, weights=weights):
                cost = model.plan_cost(plan).evaluate([x])
                return sum(weights.get(m, 0) * v for m, v in cost.items())
            mq_best = min(score(p) for p in mq_plans)
            mpq_best = min(
                sum(weights.get(m, 0) * v
                    for m, v in e.cost.evaluate([x]).items())
                for e in mpq.entries)
            if mpq_best > 0:
                worst_regret = max(worst_regret, mq_best / mpq_best - 1.0)
    benchmark.extra_info["mq_sampling_worst_regret"] = round(
        worst_regret, 4)
