"""Time-to-first-guarantee: the anytime precision-ladder benchmark.

The anytime engine's promise is a *guaranteed* Pareto plan set long
before the exact one is ready: coarse alpha-dominance rungs finish in a
fraction of the exact run's LPs, and each rung warm-starts the next
(plan-cost memo + LP memo), so the full ladder lands near the direct
exact run's cost.  This benchmark measures, per scenario:

* time (and #LPs) until the **first** rung completes — the latency to
  the first valid ``(1 + alpha)``-guaranteed plan set;
* per-rung plan counts and cumulative LP counters — deterministic
  (stable CRC-seeded workloads), so they join the gated CI perf
  baseline via ``bench_compare.py --anytime``;
* the full-ladder vs. direct-exact totals — the warm-starting check.

Run under pytest-benchmark::

    pytest benchmarks/bench_anytime_ladder.py --benchmark-only

or standalone (prints the table, optionally dumps JSON)::

    python benchmarks/bench_anytime_ladder.py --scenario approx
    python benchmarks/bench_anytime_ladder.py --ladder 0.5,0.2,0.05,0.0
"""

from __future__ import annotations

import argparse
import json
import os

import pytest

from repro.bench import format_anytime_ladder, run_anytime_ladder

#: Tiny sweep used by the pytest entry points (CI smoke friendly).
SMOKE_QUERIES = 3
SMOKE_TABLES = 4


@pytest.mark.parametrize("scenario", ["cloud", "approx"])
def test_anytime_ladder(benchmark, scenario):
    def run():
        return run_anytime_ladder(
            num_tables=SMOKE_TABLES, shape="chain",
            num_queries=SMOKE_QUERIES, scenario=scenario)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    # The coarsest rung must deliver a guarantee strictly before exact.
    assert report.rungs[0].seconds < report.ladder_seconds
    assert report.first_guarantee_seconds < report.direct_seconds
    # The final rung is exact.
    assert report.rungs[-1].alpha == 0.0
    assert report.rungs[-1].guarantee == 1.0
    benchmark.extra_info.update(report.as_dict())


def _ladder(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(a) for a in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated alphas, got {text!r}") from exc


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="cloud",
                        help="registered scenario to optimize under "
                             "(e.g. cloud, approx)")
    parser.add_argument("--tables", type=int, default=SMOKE_TABLES,
                        help="tables per generated query")
    parser.add_argument("--shape", default="chain",
                        choices=("chain", "star", "cycle", "clique"),
                        help="join graph topology of the workload")
    parser.add_argument("--queries", type=int, default=SMOKE_QUERIES,
                        help="distinct queries to aggregate over")
    parser.add_argument("--ladder", type=_ladder, default=None,
                        help="comma-separated precision ladder "
                             "(default 0.5,0.2,0.05,0.0)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the full report as JSON to this path")
    args = parser.parse_args()

    report = run_anytime_ladder(
        num_tables=args.tables, shape=args.shape,
        num_queries=args.queries, scenario=args.scenario,
        ladder=args.ladder)
    print(format_anytime_ladder(report))
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"\nwrote {os.path.abspath(args.json_path)}")


if __name__ == "__main__":
    main()
