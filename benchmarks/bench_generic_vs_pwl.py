"""Generic RRPA (grid backend) vs. PWL-RRPA.

The generic algorithm of Section 5 is cost-function-agnostic; the PWL
specialization of Section 6 buys exact continuous-space guarantees at the
price of LP-based geometry.  This bench compares the two instantiations on
the same queries: grid-RRPA (exact polynomial costs, finite parameter
grid, no LPs) vs. PWL-RRPA.

Run with::

    pytest benchmarks/bench_generic_vs_pwl.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench import SweepPoint, queries_for_point
from repro.cloud import CloudCostModel
from repro.core import GridBackend, PWLRRPA, RRPA, make_grid


@pytest.fixture(scope="module", params=[3, 4])
def setup(request):
    point = SweepPoint(num_tables=request.param, shape="chain",
                       num_params=1, resolution=2)
    query = queries_for_point(point, 1)[0]
    return point, query


def test_grid_backend(benchmark, setup):
    point, query = setup
    model = CloudCostModel(query, resolution=point.resolution)

    def run():
        backend = GridBackend(query, model,
                              points=make_grid(1, points_per_axis=9))
        return RRPA(backend).optimize(query)

    result = benchmark(run)
    benchmark.extra_info.update({
        "tables": point.num_tables,
        "backend": "grid",
        "pareto_plans": len(result.entries),
        "plans_created": result.stats.plans_created,
    })


def test_pwl_backend(benchmark, setup):
    point, query = setup

    def run():
        optimizer = PWLRRPA(cost_model_factory=lambda q: CloudCostModel(
            q, resolution=point.resolution))
        return optimizer.optimize(query)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "tables": point.num_tables,
        "backend": "pwl",
        "pareto_plans": len(result.entries),
        "plans_created": result.stats.plans_created,
        "lps_solved": result.stats.lps_solved,
    })
