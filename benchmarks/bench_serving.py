"""Open-loop serving benchmark for the ``repro.serve`` gateway.

Boots an in-process sharded gateway and drives it the way a latency
benchmark should be driven: **open loop** — request arrival times come
from a seeded Poisson process and do not wait for earlier responses, so
queueing delay is measured instead of hidden (a closed loop would slow
its own arrival rate exactly when the server struggles, the classic
coordinated-omission trap).

The workload is deterministic end to end:

* the query mix comes from the CRC-seeded workload generator
  (:func:`repro.bench.workloads.queries_for_point`), so every machine
  optimizes the same queries;
* arrival times, query choice and tenant choice are drawn from one
  seeded ``random.Random``;
* a warmup pass optimizes the mix once, so the measured phase exercises
  the steady-state serving regime (warm-start hits + signature-sticky
  routing) rather than first-contact optimization.

Four phases, all counted by the gateway's deterministic serving
counters (admitted / completed / deadline-partials / sticky hits /
shard hit distribution — gated by ``bench_compare.py --serving``):

1. warmup — each mix query once, exact;
2. open-loop main phase — Poisson arrivals over the warm mix;
3. deadline phase — fresh (unwarmed) queries under a small LP budget,
   exercising the partial-with-guarantee path deterministically (LP
   budgets are machine-independent, wall-clock deadlines are not);
4. streaming phase — NDJSON streams over the warm mix.

Timing metrics (qps, latency percentiles from the full client-side
sample set) are reported but never gated.  ``--min-qps`` turns the
report into a smoke check: exit 1 below the bar, or if any request
fails with a status other than 200/429 ("dropped").

Usage::

    python benchmarks/bench_serving.py --requests 60 --rate 100 \
        --json bench-serving.json --min-qps 50
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench.workloads import SweepPoint, queries_for_point
from repro.serve import GatewayClient, GatewayConfig, launch
from repro.serve.protocol import query_to_doc

#: Tenants the generator cycles through (seeded choice per request).
TENANTS = ("tenant-a", "tenant-b", "tenant-c")

#: LP budget of the deadline phase: lands mid-ladder for the 5-table
#: chain queries it runs, so partials (not timeouts) dominate.
DEADLINE_LPS = 150


def percentile(samples: list[float], p: float) -> float:
    """Nearest-rank percentile of the raw sample set (exact)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(p / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


def run_serving_benchmark(*, shards: int = 2, mix_size: int = 6,
                          requests: int = 60, rate: float = 100.0,
                          deadline_requests: int = 4,
                          stream_requests: int = 4,
                          num_tables: int = 3, seed: int = 0,
                          scenario: str = "cloud") -> dict:
    """Run all four phases against a fresh gateway; return the report."""
    rng = random.Random(seed)
    mix = queries_for_point(
        SweepPoint(num_tables=num_tables, shape="chain", num_params=1,
                   resolution=2), count=mix_size, base_seed=seed)
    mix_docs = [query_to_doc(q) for q in mix]
    deadline_queries = queries_for_point(
        SweepPoint(num_tables=5, shape="chain", num_params=1,
                   resolution=2), count=deadline_requests,
        base_seed=seed + 1000)

    config = GatewayConfig(shards=shards, scenario=scenario,
                           tenant_rate=10_000.0, tenant_burst=10_000.0,
                           max_pending=256)
    statuses: dict[str, int] = {}
    http_codes: dict[str, int] = {}
    latencies: list[float] = []
    dropped = 0

    with launch(config) as handle:
        client = GatewayClient(handle.host, handle.port, timeout=300.0)

        def fire(doc: dict, tenant: str, **fields) -> None:
            nonlocal dropped
            started = time.monotonic()
            try:
                response = client.optimize(doc=doc, tenant=tenant,
                                           **fields)
            except Exception:
                dropped += 1
                return
            latencies.append(time.monotonic() - started)
            http_codes[str(response.status_code)] = \
                http_codes.get(str(response.status_code), 0) + 1
            if response.status_code == 200:
                status = response.doc.get("status", "?")
                statuses[status] = statuses.get(status, 0) + 1
            elif response.status_code != 429:
                dropped += 1

        # Phase 1: warmup (sequential, not timed).
        for doc in mix_docs:
            fire(doc, "tenant-warmup")

        # Phase 2: open-loop Poisson main phase.  Arrival times are
        # fixed up front; a wide pool detaches sends from responses.
        arrivals = []
        clock = 0.0
        for _ in range(requests):
            clock += rng.expovariate(rate)
            arrivals.append(clock)
        choices = [(rng.randrange(mix_size), rng.choice(TENANTS))
                   for _ in range(requests)]
        main_started = time.monotonic()
        with ThreadPoolExecutor(max_workers=32) as pool:
            for arrival, (query_index, tenant) in zip(arrivals, choices):
                delay = main_started + arrival - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                pool.submit(fire, mix_docs[query_index], tenant)
        main_elapsed = time.monotonic() - main_started

        # Phase 3: deadline-bounded requests on fresh queries.
        for query in deadline_queries:
            fire(query_to_doc(query), "tenant-deadline",
                 budget={"lps": DEADLINE_LPS})

        # Phase 4: NDJSON streams over the warm mix.
        stream_events = 0
        for index in range(stream_requests):
            lines = list(client.stream_optimize(
                doc=mix_docs[index % mix_size], tenant="tenant-stream"))
            stream_events += sum(1 for line in lines
                                 if line["kind"] != "done")
            if not lines or lines[-1].get("status") not in ("ok",
                                                            "partial"):
                dropped += 1

        counters = client.metrics()

    latency_ms = sorted(s * 1000.0 for s in latencies)
    return {
        "kind": "serving",
        "scenario": scenario,
        "shape": "chain",
        "num_tables": num_tables,
        "shards": shards,
        "mix_size": mix_size,
        "requests": requests,
        "rate": rate,
        "deadline_requests": deadline_requests,
        "stream_requests": stream_requests,
        "seed": seed,
        "dropped": dropped,
        "qps": requests / main_elapsed if main_elapsed > 0 else 0.0,
        "elapsed_seconds": main_elapsed,
        "statuses": statuses,
        "http": http_codes,
        "stream_events": stream_events,
        "latency_ms": {
            "mean": (sum(latency_ms) / len(latency_ms)
                     if latency_ms else 0.0),
            "p50": percentile(latency_ms, 50),
            "p95": percentile(latency_ms, 95),
            "p99": percentile(latency_ms, 99),
            "max": latency_ms[-1] if latency_ms else 0.0,
        },
        "counters": counters,
    }


def format_report(report: dict) -> str:
    latency = report["latency_ms"]
    totals = report["counters"]["totals"]
    routing = report["counters"]["routing"]
    lines = [
        f"serving benchmark ({report['shards']} shards, "
        f"mix {report['mix_size']}, seed {report['seed']})",
        f"  open loop: {report['requests']} requests at "
        f"{report['rate']:g}/s nominal -> {report['qps']:.1f} qps "
        f"sustained, {report['dropped']} dropped",
        f"  latency ms: p50 {latency['p50']:.1f}  "
        f"p95 {latency['p95']:.1f}  p99 {latency['p99']:.1f}  "
        f"max {latency['max']:.1f}",
        f"  statuses: {report['statuses']}",
        f"  counters: admitted {totals['admitted']}, completed "
        f"{totals['completed']}, deadline partials "
        f"{totals['deadline_partials']}, streams {totals['streams']}",
        f"  routing: sticky {routing['sticky_hits']}/"
        f"{routing['requests']}, shard hits {routing['shard_hits']}",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--mix", type=int, default=6,
                        help="distinct queries in the mix")
    parser.add_argument("--requests", type=int, default=60,
                        help="open-loop main-phase requests")
    parser.add_argument("--rate", type=float, default=100.0,
                        help="nominal Poisson arrival rate (req/s)")
    parser.add_argument("--deadline-requests", type=int, default=4)
    parser.add_argument("--stream-requests", type=int, default=4)
    parser.add_argument("--tables", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", default="cloud")
    parser.add_argument("--json", default=None,
                        help="write the JSON report here")
    parser.add_argument("--min-qps", type=float, default=None,
                        help="exit 1 when sustained qps falls below "
                             "this bar")
    args = parser.parse_args()

    report = run_serving_benchmark(
        shards=args.shards, mix_size=args.mix, requests=args.requests,
        rate=args.rate, deadline_requests=args.deadline_requests,
        stream_requests=args.stream_requests, num_tables=args.tables,
        seed=args.seed, scenario=args.scenario)
    print(format_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if report["dropped"]:
        print(f"FAIL: {report['dropped']} dropped (non-429 failure) "
              f"request(s)", file=sys.stderr)
        return 1
    if args.min_qps is not None and report["qps"] < args.min_qps:
        print(f"FAIL: sustained {report['qps']:.1f} qps below the "
              f"--min-qps {args.min_qps:g} bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
