"""Analysis micro-benches: Figures 4–6 constructions and Theorem 6 counts.

These regenerate the paper's Section 4 artifacts: the counter-example
checks (statements M1, M2, M3b of Table 1) and the expected Pareto-plan
counts behind Theorem 6's bound.

Run with::

    pytest benchmarks/bench_analysis.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis import (check_m1_on, check_m2_nonconvex_pareto_region,
                            check_m3b, figure4, figure5, figure6,
                            theorem6_observation)


def test_figure4_m1(benchmark):
    example = figure4()
    assert benchmark(lambda: check_m1_on(example))


def test_figure5_m2(benchmark):
    example = figure5()
    assert benchmark.pedantic(
        lambda: check_m2_nonconvex_pareto_region(example),
        rounds=1, iterations=1)


def test_figure6_m3b(benchmark):
    example = figure6()
    assert benchmark(lambda: check_m3b(example))


@pytest.mark.parametrize("num_params,num_metrics", [(1, 1), (1, 2), (2, 2)])
def test_theorem6_pareto_counts(benchmark, num_params, num_metrics):
    obs = benchmark(lambda: theorem6_observation(
        num_plans=30, num_params=num_params, num_metrics=num_metrics,
        trials=3))
    benchmark.extra_info.update({
        "observed_mean": obs.observed,
        "theorem6_bound": obs.bound,
    })
