"""Chaos benchmark: deterministic fault injection against the gateway.

Boots an in-process single-shard gateway backed by a persistent store
and replays the recovery matrix of ``docs/robustness.md`` as phased,
fully deterministic chaos — every fault comes from a ``repro.faults``
hit-count schedule (no clocks, no entropy), so the same faults fire at
the same points on every machine and the produced counters are exact.

Phases:

1. **reference** — the CRC-seeded query mix, fault-free; the recorded
   plan-set documents are the bit-identity baseline;
2. **shard death** — ``serve.shard.die:1`` per mix query: every first
   attempt kills the shard, the gateway respawns and retries, and the
   healed response must be byte-identical to the reference;
3. **breaker** — ``serve.shard.die:1-6`` over six requests of one warm
   query: three failed requests trip the breaker, two are shed to the
   degraded path, the half-open probe closes it (worked arithmetic:
   6 respawns, 1 open, 5 degraded responses, six HTTP 200s);
4. **stream interrupt** — ``serve.stream.disconnect:1`` hard-resets an
   NDJSON stream mid-flight; the client must raise the typed
   ``StreamInterrupted`` (carrying the last event), and a straight
   retry must stream to ``done``;
5. **ambient schedule** — the fixed schedule CI exports as
   ``REPRO_FAULTS`` (worker kill + store write faults + slow shard),
   driven over fresh queries; the responses under chaos must match the
   fault-free re-asks byte for byte while the write-through absorbs
   the store faults;
6. **worker pool** — ``service.worker.crash:1`` through the
   environment (pool children parse it themselves): the first mapped
   query dies with the worker, the schedule is cleared, and the healed
   result must equal a fault-free session's exactly.

The headline metrics are gated by ``bench_compare.py --chaos`` against
``benchmarks/baselines/bench-chaos.json``: ``chaos.http_200_rate`` and
``chaos.retry_identical`` floor at 1.0, ``chaos.dropped`` gates at 0,
and ``chaos.faults_injected`` plus every recovery counter
(``shard_respawns``, ``breaker_opens``, ``degraded_responses``,
``write_faults_absorbed``, ``pool_respawns``) are asserted non-zero —
a chaos run that injects nothing cannot pass.

Usage::

    python benchmarks/bench_chaos.py --json bench-chaos.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

from repro import config, faults
from repro.api import OptimizerSession
from repro.bench.workloads import SweepPoint, queries_for_point
from repro.core import encode_plan_set
from repro.serve import (GatewayClient, GatewayConfig, StreamInterrupted,
                         launch)

#: The fixed ambient schedule the CI chaos-smoke job exports as
#: ``REPRO_FAULTS`` (and the default when the variable is unset): a
#: worker kill, two store write faults and one slow shard.  The worker
#: kill degrades to an in-process raise on the serial shard path, so it
#: exercises the gateway's error-item retry deterministically.
DEFAULT_AMBIENT_SCHEDULE = ("service.worker.crash:1;"
                            "store.put.fail:1-2;"
                            "serve.shard.slow:1:0.25")

#: Schedule of the worker-pool phase, threaded through the environment
#: so pool children (which parse ``REPRO_FAULTS`` themselves) crash.
POOL_SCHEDULE = "service.worker.crash:1"


class ChaosTally:
    """Request/identity bookkeeping plus fault-stat accumulation.

    ``faults.install`` resets the per-process fault stats, so the tally
    absorbs the current snapshot before every schedule switch — the
    final report carries the totals across all phases.
    """

    def __init__(self) -> None:
        self.requests_total = 0
        self.ok_200 = 0
        self.dropped = 0
        self.identity_checks = 0
        self.identity_matches = 0
        self.stream_interrupts = 0
        self.statuses: dict[str, int] = {}
        self.faults_injected = 0
        self.fault_sites: dict[str, int] = {}

    def switch(self, spec: str | None) -> None:
        snap = faults.snapshot()
        self.faults_injected += snap["injected"]
        for site, count in snap["sites"].items():
            self.fault_sites[site] = self.fault_sites.get(site, 0) + count
        faults.install(spec)

    def complete(self, response, *, reference: dict | None = None) -> dict:
        """Record a request that must answer HTTP 200, never drop."""
        self.requests_total += 1
        if response is None or response.status_code != 200:
            self.dropped += 1
            return {}
        self.ok_200 += 1
        status = response.doc.get("status", "?")
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if reference is not None:
            self.identity_checks += 1
            if response.doc.get("plan_set") == reference:
                self.identity_matches += 1
        return response.doc

    def identical(self, matched: bool) -> None:
        self.identity_checks += 1
        if matched:
            self.identity_matches += 1


def _fire(client: GatewayClient, query):
    try:
        return client.optimize(query)
    except Exception:  # noqa: BLE001 - any client failure is a drop
        return None


def run_chaos_benchmark(*, mix_size: int = 3, num_tables: int = 3,
                        seed: int = 0, scenario: str = "cloud",
                        ambient_schedule: str | None = None) -> dict:
    """Run all chaos phases; return the gateable report."""
    if ambient_schedule is None:
        ambient_schedule = (config.value("REPRO_FAULTS")
                            or DEFAULT_AMBIENT_SCHEDULE)
    # Pin the schedule to "nothing" up front: the reference phase must
    # be fault-free even when CI exports REPRO_FAULTS for the run.
    faults.install(None)
    tally = ChaosTally()

    point = SweepPoint(num_tables=num_tables, shape="chain",
                      num_params=1, resolution=2)
    mix = queries_for_point(point, count=mix_size, base_seed=seed)
    ambient_queries = queries_for_point(point, count=2,
                                        base_seed=seed + 2000)
    stream_query = queries_for_point(point, count=1,
                                     base_seed=seed + 3000)[0]
    pool_query = queries_for_point(point, count=1,
                                   base_seed=seed + 4000)[0]

    with tempfile.TemporaryDirectory(prefix="bench-chaos-") as tmp:
        store_path = str(Path(tmp) / "plans.db")
        gateway_config = GatewayConfig(
            shards=1, scenario=scenario, store_path=store_path,
            tenant_rate=10_000.0, tenant_burst=10_000.0, max_pending=64)
        with launch(gateway_config) as handle:
            client = GatewayClient(handle.host, handle.port,
                                   timeout=300.0)

            # Phase 1: fault-free reference responses.
            references = []
            for query in mix:
                doc = tally.complete(_fire(client, query))
                references.append(doc.get("plan_set"))

            # Phase 2: shard death + respawn, per mix query.
            for query, reference in zip(mix, references):
                tally.switch("serve.shard.die:1")
                tally.complete(_fire(client, query), reference=reference)

            # Phase 3: breaker arithmetic over the warm first query.
            tally.switch("serve.shard.die:1-6")
            for attempt in range(6):
                reference = references[0] if attempt == 5 else None
                tally.complete(_fire(client, mix[0]), reference=reference)

            # Phase 4: mid-stream disconnect, then a clean retry.
            tally.switch("serve.stream.disconnect:1")
            try:
                for _ in client.stream_optimize(stream_query):
                    pass
            except StreamInterrupted:
                tally.stream_interrupts += 1
            else:
                # The cut did not surface as the typed error: that is a
                # dropped contract, not a passed phase.
                tally.dropped += 1
            tally.requests_total += 1
            try:
                events = list(client.stream_optimize(stream_query))
            except Exception:  # noqa: BLE001 - any failure is a drop
                events = []
            if events and events[-1].get("kind") == "done" \
                    and events[-1].get("status") in ("ok", "cached",
                                                     "partial"):
                tally.ok_200 += 1
                tally.statuses["stream_done"] = \
                    tally.statuses.get("stream_done", 0) + 1
            else:
                tally.dropped += 1

            # Phase 5: the ambient CI schedule over fresh queries, then
            # fault-free re-asks for the bit-identity comparison.
            tally.switch(ambient_schedule)
            chaos_docs = [tally.complete(_fire(client, query))
                          for query in ambient_queries]
            tally.switch(None)
            for query, chaos_doc in zip(ambient_queries, chaos_docs):
                calm = tally.complete(_fire(client, query))
                tally.identical(
                    bool(chaos_doc) and
                    chaos_doc.get("plan_set") == calm.get("plan_set"))

            metrics = client.metrics()
        resilience = metrics["resilience"]
        store_counters = metrics["store"]

    # Phase 6: worker-pool kill through the environment (children parse
    # REPRO_FAULTS themselves), heal, and compare against a fault-free
    # session byte for byte.
    pool_respawns = 0
    pool_crashes = 0
    os.environ["REPRO_FAULTS"] = POOL_SCHEDULE
    faults.reset()
    try:
        with OptimizerSession(scenario, workers=2) as session:
            crashed = session.map([pool_query])[0]
            if crashed.status == "error":
                pool_crashes += 1
            os.environ.pop("REPRO_FAULTS", None)
            faults.reset()
            healed = session.map([pool_query])[0]
            pool_respawns = session.pool_respawns
        tally.requests_total += 1
        if healed.ok:
            tally.ok_200 += 1
            tally.statuses["pool_healed"] = \
                tally.statuses.get("pool_healed", 0) + 1
            with OptimizerSession(scenario) as reference_session:
                expected = reference_session.map([pool_query])[0]
            tally.identical(
                json.dumps(encode_plan_set(healed.plan_set)) ==
                json.dumps(encode_plan_set(expected.plan_set)))
        else:
            tally.dropped += 1
    finally:
        os.environ.pop("REPRO_FAULTS", None)
        tally.switch(None)

    return {
        "kind": "chaos",
        "scenario": scenario,
        "shape": "chain",
        "num_tables": num_tables,
        "shards": 1,
        "mix_size": mix_size,
        "seed": seed,
        "ambient_schedule": ambient_schedule,
        "requests_total": tally.requests_total,
        "http_200": tally.ok_200,
        "http_200_rate": (tally.ok_200 / tally.requests_total
                          if tally.requests_total else 0.0),
        "dropped": tally.dropped,
        "identity_checks": tally.identity_checks,
        "identity_matches": tally.identity_matches,
        "retry_identical": (tally.identity_matches / tally.identity_checks
                            if tally.identity_checks else 0.0),
        "faults_injected": tally.faults_injected,
        "fault_sites": tally.fault_sites,
        "stream_interrupts": tally.stream_interrupts,
        "pool_crashes": pool_crashes,
        "pool_respawns": pool_respawns,
        "statuses": tally.statuses,
        "resilience": resilience,
        "write_faults_absorbed": store_counters["write_faults_absorbed"],
    }


def format_report(report: dict) -> str:
    resilience = report["resilience"]
    lines = [
        f"chaos benchmark (mix {report['mix_size']}, "
        f"seed {report['seed']})",
        f"  schedule: {report['ambient_schedule']}",
        f"  requests: {report['requests_total']} -> "
        f"{report['http_200']} HTTP 200 "
        f"({report['http_200_rate']:.0%}), {report['dropped']} dropped",
        f"  identity: {report['identity_matches']}/"
        f"{report['identity_checks']} recovered responses bit-identical "
        f"({report['retry_identical']:.0%})",
        f"  faults injected: {report['faults_injected']} "
        f"{report['fault_sites']}",
        f"  recovery: respawns {resilience['shard_respawns']}, "
        f"breaker opens {resilience['breaker_opens']}, "
        f"degraded {resilience['degraded_responses']}, "
        f"write faults absorbed {report['write_faults_absorbed']}, "
        f"pool respawns {report['pool_respawns']}",
        f"  statuses: {report['statuses']}",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mix", type=int, default=3,
                        help="distinct queries in the reference mix")
    parser.add_argument("--tables", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", default="cloud")
    parser.add_argument("--schedule", default=None,
                        help="ambient-phase schedule (default: the "
                             "REPRO_FAULTS variable, then the fixed CI "
                             "schedule)")
    parser.add_argument("--json", default=None,
                        help="write the JSON report here")
    args = parser.parse_args()

    report = run_chaos_benchmark(
        mix_size=args.mix, num_tables=args.tables, seed=args.seed,
        scenario=args.scenario, ambient_schedule=args.schedule)
    print(format_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    failed = False
    if report["dropped"]:
        print(f"FAIL: {report['dropped']} dropped request(s) under "
              f"chaos", file=sys.stderr)
        failed = True
    if report["http_200_rate"] < 1.0:
        print(f"FAIL: only {report['http_200_rate']:.0%} of requests "
              f"completed with HTTP 200", file=sys.stderr)
        failed = True
    if report["retry_identical"] < 1.0:
        print(f"FAIL: {report['identity_checks']-report['identity_matches']}"
              f" recovered response(s) not bit-identical to the "
              f"fault-free reference", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
