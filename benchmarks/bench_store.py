"""Recurring-workload benchmark for the persistent plan-set store.

Serving systems see the *same query families* again and again with
slowly drifting statistics.  This benchmark replays that pattern
against :class:`repro.store.PlanSetStore` and measures what the store
buys:

* **hit rate** — a second appearance of an identical query is an
  exact-signature store hit (no optimizer run at all);
* **seeded warm starts** — a drifted family member (same structure,
  perturbed statistics) is a near miss: the store's nearest-neighbor
  lookup seeds the run, which then jumps the precision ladder straight
  to the tight rungs.  Reported as LPs-and-seconds-to-first-guarantee,
  warm (seeded) vs. cold, where "first guarantee" is the first
  completed rung at ``alpha <= 0.05`` (the seeded jump point).  The
  headline aggregate is the *geometric mean* of the per-family LP
  speedups (the standard aggregate for normalized ratios — the
  arithmetic sum ratio, also reported, is dominated by whichever family
  solves the most LPs);
* **seed repair** — the final exact rung re-runs the full DP, so the
  warm run's exact plan set must be *bit-identical* to a cold run's
  (checked per variant, under both built-in scenarios).

Workloads are CRC-seeded (see :func:`repro.bench.stable_seed`), so the
LP counters are machine-independent and join the gated CI baseline via
``bench_compare.py --store`` — including an absolute floor on the
hit rate and on the aggregate warm-start LP speedup.

Run standalone (prints the table, optionally dumps JSON)::

    python benchmarks/bench_store.py --json bench-store.json
"""

from __future__ import annotations

import argparse
import json
import math
import os

from repro.api import (Budget, OptimizerSession, PlanSetStore,
                       WarmStartCache, encode_plan_set)
from repro.bench import drift_statistics, stable_seed
from repro.core import SEED_JUMP_ALPHA
from repro.query import QueryGenerator

#: Recurring families of the smoke profile: (tables, shape, scenario,
#: drifted variants).  The 5-table chain dominates the LP totals — it
#: is what makes the sum-ratio speedup representative of real ladder
#: runs rather than of tiny toy queries.  Three variants per family
#: exercise the accumulation effect: later recurrences find *nearer*
#: neighbors (the previous variant's exact set, not just the base's),
#: so their seeds prune better.
SMOKE_FAMILIES = (
    (4, "star", "cloud", 3),
    (5, "chain", "cloud", 3),
    (3, "star", "approx", 3),
)

#: One cooperative budget spanning every ladder run (effectively
#: unbounded — the benchmark measures counters, not interruptions).
BUDGET = Budget(seconds=1e9)


def family_queries(num_tables: int, shape: str, scenario: str,
                   variants: int):
    """The base query of a family plus its drifted recurrences."""
    tag = f"store:{num_tables}:{shape}:{scenario}"
    base = QueryGenerator(seed=stable_seed(tag)).generate(
        num_tables=num_tables, shape=shape, num_params=1)
    drifted = [drift_statistics(base, seed=stable_seed(f"{tag}:v{i}"))
               for i in range(variants)]
    return base, drifted


def ladder_run(session, query, scenario: str,
               jump_alpha: float = SEED_JUMP_ALPHA):
    """One full ladder run; returns first-guarantee + total counters.

    ``first_*`` counters are taken at the first completed rung with
    ``alpha <= jump_alpha`` — the tightest approximate rung, i.e. the
    same alpha a seeded (trimmed-ladder) run starts at, so warm and
    cold first-guarantee numbers compare like for like.
    """
    first_lps = first_seconds = None
    final_doc = None
    total_lps = 0.0
    for event in session.optimize_iter(query, scenario=scenario,
                                       budget=BUDGET):
        if event.kind != "rung_completed":
            continue
        total_lps = event.lps_solved
        if first_lps is None and event.alpha <= jump_alpha + 1e-12:
            first_lps, first_seconds = event.lps_solved, event.seconds
        if event.plan_set is not None:
            final_doc = encode_plan_set(event.plan_set)
    return {"first_lps": first_lps, "first_seconds": first_seconds,
            "total_lps": total_lps, "final_doc": final_doc}


def run_store_benchmark(families=SMOKE_FAMILIES) -> dict:
    report = {"jump_alpha": SEED_JUMP_ALPHA, "families": [],
              "hits": 0, "lookups": 0, "seed_hits": 0, "seed_lookups": 0}
    store = PlanSetStore()
    for num_tables, shape, scenario, variants in families:
        base, drifted = family_queries(num_tables, shape, scenario,
                                       variants)
        row = {"scenario": scenario, "shape": shape,
               "num_tables": num_tables, "variants": variants,
               "cold_first_lps": 0.0, "warm_first_lps": 0.0,
               "cold_first_seconds": 0.0, "warm_first_seconds": 0.0,
               "cold_total_lps": 0.0, "warm_total_lps": 0.0,
               "identical": True}
        # Pass 1 — first appearances.  The base lands cold and is
        # persisted; every drifted recurrence finds it as a same-family
        # near miss and runs seeded on the trimmed ladder.
        with OptimizerSession(scenario,
                              cache=WarmStartCache(store=store)) as warm:
            ladder_run(warm, base, scenario)
            for query in drifted:
                measured = ladder_run(warm, query, scenario)
                row["warm_first_lps"] += measured["first_lps"]
                row["warm_first_seconds"] += measured["first_seconds"]
                row["warm_total_lps"] += measured["total_lps"]
                with OptimizerSession(scenario) as cold:
                    reference = ladder_run(cold, query, scenario)
                row["cold_first_lps"] += reference["first_lps"]
                row["cold_first_seconds"] += reference["first_seconds"]
                row["cold_total_lps"] += reference["total_lps"]
                if measured["final_doc"] != reference["final_doc"]:
                    row["identical"] = False
            report["seed_hits"] += warm.store_seed_hits
            report["seed_lookups"] += (warm.store_seed_hits
                                       + warm.store_seed_misses
                                       - 1)  # the base's expected miss
        # Pass 2 — recurrences with unchanged statistics.  A fresh
        # session (empty memory tier) must answer every family member
        # straight from the store.
        with OptimizerSession(scenario,
                              cache=WarmStartCache(store=store)) as repeat:
            for query in (base, *drifted):
                item = repeat.optimize(query, precision=0.0,
                                       budget=BUDGET)
                report["lookups"] += 1
                report["hits"] += int(item.status == "cached")
        row["lp_speedup"] = (row["cold_first_lps"]
                             / max(1.0, row["warm_first_lps"]))
        report["families"].append(row)
    report["store"] = store.snapshot()
    store.close()
    report["hit_rate"] = report["hits"] / max(1, report["lookups"])
    report["seed_hit_rate"] = (report["seed_hits"]
                               / max(1, report["seed_lookups"]))
    report["cold_first_lps"] = sum(f["cold_first_lps"]
                                   for f in report["families"])
    report["warm_first_lps"] = sum(f["warm_first_lps"]
                                   for f in report["families"])
    report["lp_speedup_sum"] = (report["cold_first_lps"]
                                / max(1.0, report["warm_first_lps"]))
    report["lp_speedup"] = math.exp(
        sum(math.log(f["lp_speedup"]) for f in report["families"])
        / max(1, len(report["families"])))
    report["all_identical"] = all(f["identical"]
                                  for f in report["families"])
    return report


def format_report(report: dict) -> str:
    lines = [f"{'family':24}  {'cold LPs':>9}  {'warm LPs':>9}  "
             f"{'lp-x':>5}  {'cold s':>7}  {'warm s':>7}  identical"]
    for row in report["families"]:
        tag = (f"{row['scenario']}.{row['shape']}"
               f".t{row['num_tables']}v{row['variants']}")
        lines.append(
            f"{tag:24}  {row['cold_first_lps']:9.0f}  "
            f"{row['warm_first_lps']:9.0f}  {row['lp_speedup']:5.2f}  "
            f"{row['cold_first_seconds']:7.2f}  "
            f"{row['warm_first_seconds']:7.2f}  {row['identical']}")
    lines.append(
        f"\nfirst-guarantee (alpha <= {report['jump_alpha']:g}) LPs: "
        f"cold {report['cold_first_lps']:.0f} vs warm "
        f"{report['warm_first_lps']:.0f} "
        f"({report['lp_speedup_sum']:.2f}x sum ratio, "
        f"{report['lp_speedup']:.2f}x geo-mean over families)")
    lines.append(
        f"store hit rate {report['hit_rate']:.0%} "
        f"({report['hits']}/{report['lookups']}), seed hit rate "
        f"{report['seed_hit_rate']:.0%} ({report['seed_hits']}/"
        f"{report['seed_lookups']}), all exact sets identical: "
        f"{report['all_identical']}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the full report as JSON to this path")
    args = parser.parse_args()
    report = run_store_benchmark()
    print(format_report(report))
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote {os.path.abspath(args.json_path)}")


if __name__ == "__main__":
    main()
