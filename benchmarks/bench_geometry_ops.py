"""Micro-benchmarks of the elementary geometric operations.

PWL-RRPA's run time decomposes into the elementary operations of
Algorithms 2 and 3; these benches measure each in isolation so regressions
in the geometry layer are visible independently of the optimizer.

Run with::

    pytest benchmarks/bench_geometry_ops.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.cost import ParamPolynomial, SharedPartition
from repro.geometry import (ConvexPolytope, RelevanceRegion,
                            subtract_polytopes, union_as_polytope)
from repro.lp import LinearProgramSolver, LPStats


@pytest.fixture
def solver():
    return LinearProgramSolver(stats=LPStats())


def test_polytope_emptiness(benchmark, solver):
    def run():
        p = ConvexPolytope.box([0.1, 0.1], [0.9, 0.9])
        return p.is_empty(solver)
    assert benchmark(run) is False


def test_chebyshev_center(benchmark, solver):
    def run():
        p = ConvexPolytope.box([0.0, 0.0], [1.0, 0.5])
        return p.chebyshev(solver)
    __, radius = benchmark(run)
    assert radius == pytest.approx(0.25)


def test_region_difference(benchmark, solver):
    base = ConvexPolytope.unit_box(2)
    cuts = [ConvexPolytope.box([0.0, 0.0], [0.5, 0.5]),
            ConvexPolytope.box([0.5, 0.5], [1.0, 1.0])]

    def run():
        return subtract_polytopes(base, cuts, solver)

    pieces = benchmark(run)
    assert len(pieces) >= 2


def test_union_convexity_recognition(benchmark, solver):
    left = ConvexPolytope.box([0.0, 0.0], [0.5, 1.0])
    right = ConvexPolytope.box([0.5, 0.0], [1.0, 1.0])

    def run():
        return union_as_polytope([left, right], solver)

    assert benchmark(run) is not None


def test_relevance_region_lifecycle(benchmark, solver):
    # Ten disjoint cutouts leaving 0.02-wide gaps: region stays non-empty.
    cuts = [ConvexPolytope.box([0.1 * i], [0.1 * i + 0.08])
            for i in range(10)]

    def run():
        rr = RelevanceRegion(ConvexPolytope.unit_box(1))
        for cut in cuts:
            rr.subtract(cut)
        return rr.is_empty(solver)

    assert benchmark(run) is False


def test_dominance_on_shared_partition(benchmark, solver):
    part = SharedPartition([0.0], [1.0], 4)
    x = ParamPolynomial.variable(1, 0)
    c1 = part.vector_from_polynomials({"time": x * 2.0,
                                       "fees": x * 0 + 3.0})
    c2 = part.vector_from_polynomials({"time": x + 0.5,
                                       "fees": x * 0 + 2.0})

    def run():
        return c2.dominance_polytopes(c1, solver)

    polys = benchmark(run)
    assert polys


def test_pwl_accumulation_aligned(benchmark):
    part = SharedPartition([0.0, 0.0], [1.0, 1.0], 2)
    x0 = ParamPolynomial.variable(2, 0)
    x1 = ParamPolynomial.variable(2, 1)
    f = part.from_polynomial(x0 * x1 * 100.0)
    g = part.from_polynomial(x0 * 3.0 + 1.0)

    def run():
        return f.add(g)

    h = benchmark(run)
    assert h.num_pieces == f.num_pieces
