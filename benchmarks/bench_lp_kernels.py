"""Stacked-tableau vs. per-LP simplex: the LP-kernel microbenchmark.

Sweeps the stacked simplex kernel (:mod:`repro.lp.batch_simplex`)
against the scalar :func:`repro.lp.solve_simplex` across LP shapes and
batch sizes, asserting bit-identical answers at every point.  Three
numbers per point are deterministic (stable CRC-seeded LPs) and join the
gated CI perf baseline via ``bench_compare.py --lpkernels``:

* ``rounds`` — lockstep pivot rounds one kernel call executes (grows
  when pivot trajectories regress),
* ``occupancy`` — mean fraction of the batch still pivoting per round
  (erodes when finished problems stop freezing),
* ``fallbacks`` — problems flagged back to the scalar path (should stay
  at zero; any growth means the kernel stopped handling its workload).

The per-LP timings and the speedup column are informational — they show
the kernel's crossover point (the product routes only miss groups of
``repro.lp.solver.MIN_STACK_GROUP`` or more through the kernel).

The artifact also carries the *deferred-queue smoke probe*
(:func:`repro.bench.run_lp_queue_probe`): full optimizer runs on the
smoke workload under the accelerated engine, reporting the queue
counters (LPs deferred, flush causes) and the LP-weighted median
stacked-group size.  CI holds the cross-point median at or above the
stacking crossover via the floored ``lp.median_stacked_group_size``
gate — the loud failure mode for "the queue stopped feeding the stacked
kernel" (see ``docs/counters.md``).

Run under pytest-benchmark::

    pytest benchmarks/bench_lp_kernels.py --benchmark-only

or standalone (prints the table, optionally dumps JSON)::

    python benchmarks/bench_lp_kernels.py
    python benchmarks/bench_lp_kernels.py --batches 1,4,16,64 --json out.json
"""

from __future__ import annotations

import argparse
import json

import pytest

from repro.bench import (format_lp_kernel_table, run_lp_kernel_sweep,
                         run_lp_queue_probe)
from repro.lp.solver import MIN_STACK_GROUP

#: Shapes swept by the pytest entry point (CI smoke friendly).
SMOKE_SHAPES = ((3, 8), (4, 14), (6, 24))
SMOKE_BATCHES = (1, 2, 4, 8, 16, 64)


@pytest.mark.parametrize("shape", SMOKE_SHAPES)
def test_lp_kernel_sweep(benchmark, shape):
    def run():
        return run_lp_kernel_sweep(shapes=(shape,),
                                   batch_sizes=SMOKE_BATCHES)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(point.fallbacks == 0 for point in points)
    # Occupancy can only be <= 1 and the sweep must keep the kernel busy.
    assert all(0.0 < point.occupancy <= 1.0 for point in points)
    benchmark.extra_info["lp_kernels"] = [point.as_dict()
                                          for point in points]


def test_lp_queue_probe(benchmark):
    def run():
        return run_lp_queue_probe()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    # The queue must actually defer work at every probed point, and the
    # typical LP the stacked kernel sees must travel in a group at or
    # above the stacking crossover.
    assert all(point.queue_enqueued > 0 for point in report.points)
    assert report.median_stacked_group_size >= MIN_STACK_GROUP
    benchmark.extra_info["lp_queue"] = report.as_dict()


def _int_tuple(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}") from exc


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Stacked vs. per-LP simplex microbenchmark")
    parser.add_argument("--batches", type=_int_tuple,
                        default=SMOKE_BATCHES,
                        help="comma-separated batch sizes")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per point")
    parser.add_argument("--json", default=None,
                        help="write the point list to this JSON file")
    args = parser.parse_args()

    points = run_lp_kernel_sweep(shapes=SMOKE_SHAPES,
                                 batch_sizes=args.batches,
                                 repeats=args.repeats)
    print(format_lp_kernel_table(points))
    queue_report = run_lp_queue_probe()
    print(f"\ndeferred-queue smoke probe "
          f"(median stacked-group size "
          f"{queue_report.median_stacked_group_size:g}):")
    for point in queue_report.points:
        print(f"  {point.shape} t{point.num_tables}p{point.num_params}: "
              f"enqueued={point.queue_enqueued} "
              f"flushes size/demand/explicit={point.flush_size}"
              f"/{point.flush_demand}/{point.flush_explicit} "
              f"median={point.median_stacked_group_size:g}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"lp_kernels": [point.as_dict()
                                      for point in points],
                       "lp_queue": queue_report.as_dict()},
                      handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
