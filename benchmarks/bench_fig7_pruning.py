"""Figure 7: the pruning step on a two-table Cloud join.

Benchmarks the elementary pruning interaction the paper illustrates in
Figure 7 — comparing a single-node join plan against a parallel join plan
and reducing the parallel plan's relevance region to the high-selectivity
interval — plus the underlying `Dom` computation in isolation.

Run with::

    pytest benchmarks/bench_fig7_pruning.py --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import SweepPoint, queries_for_point
from repro.cloud import CloudCostModel
from repro.api import optimize_query
from repro.lp import LinearProgramSolver, LPStats
from repro.plans import (PARALLEL_HASH_JOIN, SINGLE_NODE_HASH_JOIN,
                         ScanPlan, combine)


@pytest.fixture(scope="module")
def two_table_setup():
    point = SweepPoint(num_tables=2, shape="chain", num_params=1,
                       resolution=2)
    query = queries_for_point(point, 1)[0]
    model = CloudCostModel(query, resolution=2)
    t0, t1 = query.tables
    scans = [ScanPlan(table=t, operator=model.scan_operators(t)[0])
             for t in (t0, t1)]
    single = combine(scans[0], scans[1], SINGLE_NODE_HASH_JOIN)
    parallel = combine(scans[0], scans[1], PARALLEL_HASH_JOIN)
    return query, model, single, parallel


def test_dominance_computation(benchmark, two_table_setup):
    """The `Dom` operation between the two Figure 7 plans."""
    __, model, single, parallel = two_table_setup
    c_single = model.plan_cost(single)
    c_parallel = model.plan_cost(parallel)
    solver = LinearProgramSolver(stats=LPStats())

    polys = benchmark(
        lambda: c_single.dominance_polytopes(c_parallel, solver))
    # The single-node plan dominates the parallel plan on a low-
    # selectivity region (it never dominates everywhere: the parallel
    # plan wins on time for large inputs).
    benchmark.extra_info["dominance_polytopes"] = len(polys)


def test_full_two_table_optimization(benchmark, two_table_setup):
    """Figure 7 end-to-end: both plans generated, RRs shaped correctly."""
    query, __, __, __ = two_table_setup
    result = benchmark.pedantic(
        lambda: optimize_query(query, "cloud", resolution=2),
        rounds=1, iterations=1)
    assert result.entries
    # Every surviving parallel-join plan must be irrelevant for at least
    # the lowest selectivities or relevant somewhere — record the split.
    xs = np.linspace(0.01, 0.99, 25)
    relevant_counts = {
        "parallel": 0,
        "single": 0,
    }
    for entry in result.entries:
        kind = ("parallel" if any(
            getattr(n.operator, "parallel", False)
            for n in entry.plan.nodes()) else "single")
        if any(entry.region.contains_point([x]) for x in xs):
            relevant_counts[kind] += 1
    benchmark.extra_info.update(relevant_counts)
