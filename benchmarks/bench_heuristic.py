"""Exhaustive MPQ vs. the greedy heuristic portfolio.

Section 3 of the paper contrasts exhaustive algorithms (formal
completeness guarantees) with randomized/heuristic ones (no guarantees).
This bench quantifies both sides of that trade on the same queries:
heuristic speed-up vs. how much of the exhaustive frontier it recovers.

Run with::

    pytest benchmarks/bench_heuristic.py --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GreedyJoinOrderer, heuristic_coverage
from repro.bench import SweepPoint, queries_for_point
from repro.cloud import CloudCostModel
from repro.core import PWLRRPA


@pytest.fixture(scope="module", params=[4, 5])
def setup(request):
    point = SweepPoint(num_tables=request.param, shape="chain",
                       num_params=1, resolution=2)
    query = queries_for_point(point, 1)[0]
    model = CloudCostModel(query, resolution=2)
    return query, model


def test_greedy_portfolio(benchmark, setup):
    query, model = setup
    orderer = GreedyJoinOrderer(model)
    result = benchmark(lambda: orderer.optimize(query))
    benchmark.extra_info.update({
        "tables": query.num_tables,
        "plans_kept": len(result.plans),
        "plans_created": result.plans_created,
    })


def test_exhaustive_with_coverage(benchmark, setup):
    query, model = setup
    optimizer = PWLRRPA()
    exhaustive = benchmark.pedantic(
        lambda: optimizer.optimize_with_model(query, model),
        rounds=1, iterations=1)
    greedy = GreedyJoinOrderer(model).optimize(query)
    points = [np.array([v]) for v in np.linspace(0.05, 0.95, 7)]
    tight = heuristic_coverage(greedy, exhaustive.entries, model, points,
                               tolerance=0.01)
    loose = heuristic_coverage(greedy, exhaustive.entries, model, points,
                               tolerance=0.25)
    benchmark.extra_info.update({
        "tables": query.num_tables,
        "exhaustive_plans": len(exhaustive.entries),
        "greedy_plans": len(greedy.plans),
        "greedy_coverage_within_1pct": round(tight, 4),
        "greedy_coverage_within_25pct": round(loose, 4),
    })
    # Greedy left-deep construction may miss every tight optimum (that is
    # the point of exhaustive search); coverage must only be well-formed
    # and monotone in the tolerance.
    assert 0.0 <= tight <= loose <= 1.0
